"""Live tracking: objects move through a mall while queries stream in.

The canonical dynamic indoor scenario ("where is the nearest security
cart *right now*?"): a fleet of tracked objects random-walks through
the venue's doors while kNN/range/distance queries keep arriving. The
engine applies each movement incrementally to the leaf-attached object
index (paper §3.4) and invalidates only its kNN/range caches — the
distance/path caches keep their hit rates across every update.

Run:  python examples/live_tracking.py
"""

import random

from repro import VIPTree
from repro.baselines import DijkstraOracle
from repro.datasets import build_mall, moving_objects, random_objects, random_point
from repro.engine import QueryEngine, replay


def main():
    space = build_mall("tiny", name="mall")
    stats = space.stats()
    print(f"{space.name}: {stats.num_rooms} rooms, {stats.num_doors} doors")

    tree = VIPTree.build(space)
    carts = random_objects(space, 25, seed=7, category="cart")
    engine = QueryEngine(tree, carts)

    # 1 update per query: every other event relocates a cart through a door
    stream = moving_objects(
        space, carts, 600, update_ratio=1.0, churn=0.1, seed=8, pool=24, k=3, d2d=tree.d2d
    )
    results, report = replay(engine, stream)
    print(f"\nreplayed: {report.summary()}")
    print(f"  {report.eps:,.0f} events/s total; {report.updates} live object updates")

    s = engine.stats()
    print(f"  updates={s.updates} invalidations={s.invalidations} "
          f"(batched update runs flush the kNN/range caches once)")
    print(f"  distance cache: {s.distance_hits} hits / {s.distance_misses} misses "
          f"(survives every update)")
    print(f"  knn cache:      {s.knn_hits} hits / {s.knn_misses} misses "
          f"(flushed on each invalidation)")

    # spot-check the final state against ground truth
    oracle = DijkstraOracle(space, tree.d2d)
    q = random_point(space, random.Random(9))
    nearest = engine.knn(q, 3)
    truth = oracle.knn(q, engine.objects, 3)
    assert [(n.object_id) for n in nearest] == [oid for _, oid in truth]
    print("\nnearest carts to a fresh visitor (matches Dijkstra oracle):")
    for n in nearest:
        cart = engine.objects[n.object_id]
        print(f"  {cart.label:10s} {n.distance:6.1f} m away")


if __name__ == "__main__":
    main()
