"""Quickstart: build a small venue, index it, run all four query types.

Run:  python examples/quickstart.py
"""

from repro import (
    IndoorPoint,
    IndoorSpaceBuilder,
    ObjectIndex,
    VIPTree,
    make_object_set,
)


def build_venue():
    """A one-floor office: a hallway with six rooms and two exits."""
    b = IndoorSpaceBuilder(name="quickstart-office")
    hallway = b.add_hallway(floor=0, label="main hallway")
    rooms = []
    for i in range(6):
        room = b.add_room(floor=0, label=f"office {i}")
        b.add_door(hallway, room, x=2.0 + i * 4.0, y=1.0)
        rooms.append(room)
    west = b.add_exterior_door(hallway, x=0.0, y=0.0, label="west exit")
    east = b.add_exterior_door(hallway, x=26.0, y=0.0, label="east exit")
    return b.build(), rooms, (west, east)


def main():
    space, rooms, exits = build_venue()
    print(f"venue: {space.name} — {space.num_partitions} partitions, "
          f"{space.num_doors} doors")

    # Build the paper's VIP-Tree (IPTree.build works identically).
    tree = VIPTree.build(space)
    stats = tree.stats()
    print(f"index: {tree.index_name} — {stats.num_leaves} leaves, "
          f"height {stats.height}, avg access doors {stats.avg_access_doors:.2f}")

    alice = IndoorPoint(rooms[0], 2.0, 3.0)   # in office 0
    bob = IndoorPoint(rooms[5], 22.0, 3.0)    # in office 5

    # 1. shortest distance
    d = tree.shortest_distance(alice, bob)
    print(f"\nshortest distance alice -> bob: {d:.2f} m")

    # 2. shortest path (door sequence)
    path = tree.shortest_path(alice, bob)
    doors = " -> ".join(space.doors[d].label for d in path.doors)
    print(f"shortest path ({path.distance:.2f} m): {doors}")

    # 3. k nearest neighbours over objects (coffee machines)
    machines = make_object_set(
        space,
        [IndoorPoint(rooms[1], 6.0, 3.0), IndoorPoint(rooms[4], 18.0, 3.0)],
        labels=["coffee-1", "coffee-2"],
        category="coffee",
    )
    index = ObjectIndex(tree, machines)
    nearest = tree.knn(index, alice, 1)[0]
    print(f"nearest coffee machine to alice: "
          f"{machines[nearest.object_id].label} at {nearest.distance:.2f} m")

    # 4. range query
    within = tree.range_query(index, alice, 15.0)
    print(f"coffee machines within 15 m of alice: "
          f"{[machines[n.object_id].label for n in within]}")

    # bonus: door-to-door queries work too (here: exit to exit)
    west, east = exits
    print(f"\nexit-to-exit distance: {tree.shortest_distance(west, east):.2f} m")


if __name__ == "__main__":
    main()
