"""Sharded cluster: venues partitioned across worker processes.

The multi-core shape of the serving stack: a `ClusterFrontend`
hash-partitions venue fingerprints across shard processes, each owning
a `VenueRouter` warm-started from the shared snapshot catalog and
speaking the wire protocol over a socket. Because shards are
processes, the CPU-bound index math runs truly in parallel — and a
crashed shard restarts from its snapshots, losing at most the updates
since its last flush (the durability window).

The demo registers three venues on a 2-shard cluster, replays a mixed
concurrent workload, proves the answers identical to a single-threaded
sequential replay, then crashes a shard mid-service and keeps serving.
It ends by driving the `python -m repro.serving` CLI end-to-end (TCP
front door + self-test client).

Run:  python examples/sharded_cluster.py
"""

import random
import tempfile
from pathlib import Path

from repro.datasets import (
    build_campus,
    build_mall,
    build_office,
    multi_venue_streams,
    random_objects,
    random_point,
)
from repro.exceptions import ServingError
from repro.serving import (
    ClusterFrontend,
    VenueRouter,
    concurrent_replay,
    sequential_replay,
)
from repro.serving.__main__ import main as serving_cli
from repro.serving.protocol import result_to_doc
from repro.storage import SnapshotCatalog


def main():
    venues = []
    for build, name, n_objects in (
        (build_mall, "riverside-mall", 20),
        (build_office, "hq-tower", 15),
        (build_campus, "north-campus", 15),
    ):
        space = build("tiny", name=name)
        venues.append((space, random_objects(space, n_objects, seed=11)))

    catalog_dir = Path(tempfile.mkdtemp()) / "catalog"
    streams = multi_venue_streams(
        venues, 120, update_ratio=0.25, churn=0.1, seed=23,
        mix={"knn": 0.6, "distance": 0.25, "range": 0.15},
    )

    with ClusterFrontend(catalog_dir, shards=2, flush_interval=10.0) as cluster:
        venue_ids = [cluster.add_venue(s, objects=o) for s, o in venues]
        for (space, _), vid in zip(venues, venue_ids):
            print(f"registered {space.name:15s} -> shard "
                  f"{cluster.shard_for(vid)} (venue id {vid[:12]})")

        # The whole mixed workload, every venue in flight, across
        # processes — element-wise identical to a sequential replay.
        keyed = dict(zip(venue_ids, streams))
        concurrent, report = concurrent_replay(cluster, keyed)
        print(f"\ncluster served: {report.summary()}")

        # The baseline gets its own catalog: the cluster's periodic
        # flusher may write post-update engine state back to
        # `catalog_dir`, and the comparison needs pristine objects.
        router = VenueRouter(
            SnapshotCatalog(catalog_dir.parent / "baseline"), capacity=4)
        for space, objects in venues:
            router.add_venue(space, objects=objects)
        sequential, _ = sequential_replay(router, keyed)
        identical = all(
            result_to_doc(a) == result_to_doc(b)
            for vid in venue_ids
            for a, b in zip(sequential[vid], concurrent[vid])
        )
        print(f"answers identical to sequential replay: {identical}")

        # Chaos: kill a shard mid-service, keep serving. The next
        # request respawns it, warm-started from the catalog snapshots.
        mall_space, _ = venues[0]
        mall_id = venue_ids[0]
        cluster.flush()
        try:
            cluster.request(mall_id, "crash").result()
        except ServingError as exc:
            print(f"\nshard crashed (injected): {str(exc)[:60]}...")
        rng = random.Random(7)
        nearest = cluster.request(
            mall_id, "knn", source=random_point(mall_space, rng), k=3
        ).result()
        pretty = ", ".join(f"#{n.object_id}@{n.distance:.1f}m" for n in nearest)
        print(f"after restart, {mall_space.name} nearest 3: {pretty}")
        stats = cluster.stats()
        print(f"cluster: {stats.alive}/{stats.shards} shards alive, "
              f"{stats.venues} venues {dict(stats.by_shard)}, "
              f"{stats.submitted} submitted, {stats.restarts} restart(s)")

    # The same stack via the CLI: TCP front door + self-test client.
    print("\n--- python -m repro.serving serve (TCP self-test) ---")
    rc = serving_cli([
        "serve", "--catalog", str(catalog_dir), "--venue", "MC",
        "--profile", "tiny", "--shards", "2", "--port", "0",
        "--events", "60", "--seed", "5",
    ])
    print(f"CLI self-test exit code: {rc}")


if __name__ == "__main__":
    main()
