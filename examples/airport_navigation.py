"""Airport navigation: shortest travel-time path to a boarding gate.

Another paper §1.1 scenario: "a passenger may want to find the shortest
path to the boarding gate in an airport". We model a two-pier terminal
with a security checkpoint, a train between piers (a fixed-traversal
connector, §2's travel-time edge weights) and boarding gates, then
route passengers by travel time.

Run:  python examples/airport_navigation.py
"""

from repro import (
    IndoorPoint,
    IndoorSpaceBuilder,
    ObjectIndex,
    PartitionKind,
    VIPTree,
    make_object_set,
)


def build_terminal():
    b = IndoorSpaceBuilder(name="airport")
    landside = b.add_hallway(floor=0, label="check-in hall")
    b.add_exterior_door(landside, x=0.0, y=0.0, label="terminal entrance")
    for i in range(6):
        desk = b.add_room(floor=0, label=f"check-in {i}")
        b.add_door(landside, desk, x=3.0 + i * 3.0, y=2.0)

    security = b.add_room(floor=0, label="security")
    b.add_door(landside, security, x=20.0, y=0.0)

    pier_a = b.add_hallway(floor=0, label="pier A")
    b.add_door(security, pier_a, x=24.0, y=0.0)
    gates_a = []
    for i in range(8):
        gate = b.add_room(floor=0, label=f"gate A{i + 1}")
        b.add_door(pier_a, gate, x=28.0 + i * 5.0, y=2.0)
        gates_a.append(gate)

    pier_b = b.add_hallway(floor=0, label="pier B")
    gates_b = []
    for i in range(8):
        gate = b.add_room(floor=0, label=f"gate B{i + 1}")
        b.add_door(pier_b, gate, x=128.0 + i * 5.0, y=2.0)
        gates_b.append(gate)

    # Inter-pier people mover: a fixed 30-unit traversal regardless of
    # geometric length (the paper's travel-time weights for lifts) —
    # faster than walking the connector corridor.
    train = b.add_partition(
        PartitionKind.LIFT, floor=0, label="pier train", fixed_traversal=30.0
    )
    b.add_door(train, pier_a, x=60.0, y=0.0)
    b.add_door(train, pier_b, x=126.0, y=0.0)
    # walkable corridor as the slow alternative
    walkway = b.add_hallway(floor=0, label="connector walkway")
    b.add_door(pier_a, walkway, x=62.0, y=4.0)
    b.add_door(walkway, pier_b, x=127.0, y=4.0)
    for i in range(5):
        shop = b.add_room(floor=0, label=f"duty-free {i}")
        b.add_door(walkway, shop, x=70.0 + i * 10.0, y=6.0)

    return b.build(), gates_a, gates_b


def main():
    space, gates_a, gates_b = build_terminal()
    tree = VIPTree.build(space)
    print(f"{space.name}: {space.num_partitions} partitions, "
          f"{space.num_doors} doors")

    passenger = IndoorPoint(gates_a[0], 29.0, 3.0)  # waiting at gate A1
    target = IndoorPoint(gates_b[7], 164.0, 3.0)    # rebooked to gate B8

    path = tree.shortest_path(passenger, target)
    print(f"\ngate A1 -> gate B8: {path.distance:.0f} m-equivalent "
          f"({len(path.doors)} doors)")
    used_train = any(
        space.partitions[p].label == "pier train"
        for d in path.doors
        for p in space.door_partitions[d]
    )
    print(f"route uses the pier train: {used_train}")

    # nearest duty-free from the connector
    shop_parts = [p for p in space.partitions if p.label.startswith("duty-free")]
    shops = make_object_set(
        space,
        [IndoorPoint(p.partition_id, 71.0 + i * 10.0, 7.0)
         for i, p in enumerate(shop_parts)],
        labels=[p.label for p in shop_parts],
        category="shop",
    )
    index = ObjectIndex(tree, shops)
    n = tree.knn(index, passenger, 1)[0]
    print(f"nearest duty-free to gate A1: {shops[n.object_id].label} "
          f"({n.distance:.0f} m)")


if __name__ == "__main__":
    main()
