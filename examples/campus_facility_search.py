"""Campus facility search: accessible washrooms within walking range.

The paper's §1.1: "a disabled person may issue a query to find
accessible toilets within 100 meters" and "a student may issue a query
to find the nearest photocopier in a university campus". We build a
Clayton-style campus, scatter washrooms and photocopiers, and answer
range + kNN queries — also demonstrating the category filter as the
paper's "high adaptability" hook (§1.3).

Run:  python examples/campus_facility_search.py
"""

import random
import time

from repro import ObjectIndex, VIPTree, make_object_set
from repro.baselines import DistAware
from repro.datasets import build_campus, random_point
from repro.model.objects import IndoorObject, ObjectSet


def facilities(space, rng):
    """Washrooms and photocopiers in random rooms."""
    objs = []
    for i in range(30):
        category = "washroom" if i % 2 == 0 else "photocopier"
        objs.append((random_point(space, rng), category))
    locations = [loc for loc, _ in objs]
    out = make_object_set(space, locations)
    # re-tag with categories
    return ObjectSet(
        [
            IndoorObject(o.object_id, o.location, f"{cat}-{o.object_id}", cat)
            for o, (_, cat) in zip(out, objs)
        ]
    )


def main():
    rng = random.Random(42)
    space = build_campus("small", name="campus")
    stats = space.stats()
    print(f"{space.name}: {stats.num_rooms} rooms, {stats.num_doors} doors")

    tree = VIPTree.build(space)
    everything = facilities(space, rng)
    washrooms = everything.by_category("washroom")
    copiers = everything.by_category("photocopier")

    wc_index = ObjectIndex(tree, washrooms)
    copier_index = ObjectIndex(tree, copiers)

    student = random_point(space, rng)
    print(f"\nstudent is in {space.partitions[student.partition_id].label!r}")

    within = tree.range_query(wc_index, student, 100.0)
    print(f"washrooms within 100 m: {len(within)}")
    for n in within[:5]:
        print(f"  {washrooms[n.object_id].label:14s} {n.distance:7.1f} m")

    nearest = tree.knn(copier_index, student, 3)
    print("nearest photocopiers:")
    for n in nearest:
        print(f"  {copiers[n.object_id].label:16s} {n.distance:7.1f} m")

    # VIP-Tree vs the DistAw graph expansion on the same workload
    distaw = DistAware(space, tree.d2d)
    distaw.attach_objects(washrooms)
    queries = [random_point(space, rng) for _ in range(30)]

    t0 = time.perf_counter()
    for q in queries:
        tree.knn(wc_index, q, 5)
    vip_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    for q in queries:
        distaw.knn(q, 5)
    aw_time = time.perf_counter() - t0
    print(f"\n5-NN over {len(queries)} queries: "
          f"VIP-Tree {vip_time * 1e3 / len(queries):.2f} ms/query, "
          f"DistAw {aw_time * 1e3 / len(queries):.2f} ms/query "
          f"({aw_time / max(vip_time, 1e-9):.1f}x)")


if __name__ == "__main__":
    main()
