"""Emergency evacuation: guide shoppers to their nearest exits.

The paper's motivating scenario (§1.1): "in an emergency, an indoor LBS
can guide people to the nearby exit doors". We build a Melbourne-Central
style mall, place shoppers at random locations and, for each, find the
nearest exits (kNN over exit-door objects) plus the full door-by-door
escape route.

Run:  python examples/emergency_evacuation.py
"""

import random

from repro import IndoorPoint, ObjectIndex, VIPTree, make_object_set
from repro.datasets import build_mall, random_point


def exit_objects(space):
    """Wrap every exterior door as an indoor object placed just inside
    its partition, so exits can be ranked with kNN."""
    locations = []
    labels = []
    for door_id in range(space.num_doors):
        if not space.is_exterior_door(door_id):
            continue
        pid = space.door_partitions[door_id][0]
        pos = space.doors[door_id].position
        locations.append(IndoorPoint(pid, pos.x, pos.y))
        labels.append(space.doors[door_id].label or f"exit-{door_id}")
    return make_object_set(space, locations, labels=labels, category="exit")


def main():
    space = build_mall("small", name="mall")
    tree = VIPTree.build(space)
    exits = exit_objects(space)
    index = ObjectIndex(tree, exits)
    print(f"{space.name}: {space.stats().num_rooms} shops over "
          f"{space.stats().num_floors} levels, {len(exits)} exits\n")

    rng = random.Random(2024)
    for shopper in range(5):
        q = random_point(space, rng)
        floor = space.partitions[q.partition_id].floor
        ranked = tree.knn(index, q, 2)
        print(f"shopper {shopper} in {space.partitions[q.partition_id].label!r} "
              f"(level {floor:g}):")
        for n in ranked:
            print(f"  exit {exits[n.object_id].label:10s} at {n.distance:7.1f} m")
        # full escape route to the best exit
        best = exits[ranked[0].object_id]
        path = tree.shortest_path(q, best.location)
        print(f"  escape route: {len(path.doors)} doors, "
              f"{path.distance:.1f} m\n")


if __name__ == "__main__":
    main()
