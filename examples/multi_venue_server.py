"""Multi-venue serving: one process answers for a mall, an office and
a campus at once.

The production shape the serving layer is built for: a snapshot catalog
holds one built index per venue, a `VenueRouter` keeps a bounded pool
of thread-safe engines warm-started from it, and a `ServingFrontend`
worker pool serves venue-tagged requests from many concurrent "users" —
queries overlapping with live object updates, each answer delivered
through a future.

Run:  python examples/multi_venue_server.py
"""

import random
import tempfile
from pathlib import Path

from repro.datasets import (
    build_campus,
    build_mall,
    build_office,
    multi_venue_streams,
    random_objects,
    random_point,
)
from repro.serving import ServingFrontend, VenueRouter, concurrent_replay
from repro.storage import SnapshotCatalog


def main():
    # Three venues, one service.
    venues = []
    for build, name, n_objects in (
        (build_mall, "riverside-mall", 20),
        (build_office, "hq-tower", 15),
        (build_campus, "north-campus", 15),
    ):
        space = build("tiny", name=name)
        venues.append((space, random_objects(space, n_objects, seed=11)))

    catalog_dir = Path(tempfile.mkdtemp()) / "catalog"
    router = VenueRouter(SnapshotCatalog(catalog_dir), capacity=4)
    venue_ids = [router.add_venue(space, objects=objects) for space, objects in venues]
    for (space, _), vid in zip(venues, venue_ids):
        print(f"registered {space.name:15s} -> venue id {vid[:12]}")

    # A read-heavy mixed workload per venue: users querying while
    # tracked objects move (1 update per 4 queries).
    streams = multi_venue_streams(
        venues, 150, update_ratio=0.25, churn=0.1, seed=23,
        mix={"knn": 0.6, "distance": 0.25, "range": 0.15},
    )

    with ServingFrontend(router, workers=4, queue_size=128) as frontend:
        # Ad-hoc requests: one user per venue, answers via futures.
        rng = random.Random(7)
        futures = [
            frontend.request(vid, "knn", source=random_point(space, rng), k=3)
            for (space, _), vid in zip(venues, venue_ids)
        ]
        for (space, _), future in zip(venues, futures):
            nearest = future.result()
            pretty = ", ".join(f"#{n.object_id}@{n.distance:.1f}m" for n in nearest)
            print(f"{space.name:15s} nearest 3: {pretty}")

        # The full concurrent workload: every venue in flight at once.
        _, report = concurrent_replay(frontend, dict(zip(venue_ids, streams)))
        print(f"\nserved: {report.summary()}")
        frontend.drain()
        fstats = frontend.stats()
        print(f"frontend: {fstats.submitted} submitted, {fstats.completed} ok, "
              f"{fstats.failed} failed, {fstats.rejected} rejected")

    rstats = router.stats()
    print(f"router:   {rstats.venues} venues, {rstats.pooled} pooled engines, "
          f"{rstats.requests} requests, {rstats.warm_starts} warm starts")
    written = router.flush()
    print(f"flushed:  {written} updated engine(s) written back to {catalog_dir.name}/")


if __name__ == "__main__":
    main()
