"""Multi-venue workload streams for the serving layer.

One serving process answers for many venues at once (the paper's
motivating deployments — airport + mall + campus behind one service).
:func:`multi_venue_streams` produces the matching workload: an
independent, deterministic mixed update+query stream per venue, shaped
like :func:`~repro.datasets.moving.moving_objects` output, ready for
:func:`repro.serving.replay.concurrent_replay` /
:func:`~repro.serving.replay.sequential_replay`.

Streams are independent across venues on purpose: venues share no
state in the serving layer, so the interesting concurrency (and the
equivalence proof of concurrent vs sequential replay) lives *within*
each venue's update barriers, while cross-venue parallelism is free.
"""

from __future__ import annotations

from ..model.indoor_space import IndoorSpace
from ..model.objects import ObjectSet
from .moving import moving_objects

#: offset between per-venue seeds — venues get disjoint, reproducible
#: random streams for any sane venue count
_SEED_STRIDE = 10_007


def multi_venue_streams(
    venues: list[tuple[IndoorSpace, ObjectSet]],
    count: int,
    *,
    update_ratio: float = 0.25,
    churn: float = 0.0,
    mix: dict[str, float] | None = None,
    seed: int = 83,
    pool: int | None = 32,
    k: int = 5,
    radius: float | None = None,
) -> list[list]:
    """One interleaved update+query stream per venue.

    Args:
        venues: ``(space, objects)`` pairs — the venue and the object
            population its stream starts from (read, never mutated; the
            stream assumes it is applied, in order, to exactly that
            set).
        count: events per venue (total work is ``len(venues) * count``).
        update_ratio: updates per query, as in
            :func:`~repro.datasets.moving.moving_objects` —
            ``0.25`` is the read-heavy serving shape, ``0`` queries
            only.
        churn / mix / pool / k / radius: forwarded per venue (see
            :func:`~repro.datasets.moving.moving_objects`).
        seed: master seed; venue ``i`` uses ``seed + i * 10007``, so
            streams are deterministic and pairwise independent.

    Returns:
        ``streams`` with ``streams[i]`` the event list for
        ``venues[i]`` — zip with router venue ids to build the
        ``{venue_id: stream}`` mapping the replay drivers take.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    streams: list[list] = []
    for i, (space, objects) in enumerate(venues):
        streams.append(
            moving_objects(
                space,
                objects,
                count,
                update_ratio=update_ratio,
                churn=churn,
                mix=mix,
                seed=seed + i * _SEED_STRIDE,
                pool=pool,
                k=k,
                radius=radius,
            )
        )
    return streams
