"""Venue statistics — regenerates the paper's Table 2."""

from __future__ import annotations

from ..model.d2d import average_out_degree, build_d2d_graph
from ..model.indoor_space import IndoorSpace
from .venues import VENUE_NAMES, load_venue

#: Table 2 of the paper, for side-by-side reporting.
PAPER_TABLE2 = {
    "MC": {"doors": 299, "rooms": 297, "edges": 8_466},
    "MC-2": {"doors": 600, "rooms": 597, "edges": 16_933},
    "Men": {"doors": 1_368, "rooms": 1_306, "edges": 56_035},
    "Men-2": {"doors": 2_738, "rooms": 2_613, "edges": 112_114},
    "CL": {"doors": 41_392, "rooms": 41_100, "edges": 6_700_272},
    "CL-2": {"doors": 83_138, "rooms": 82_540, "edges": 13_400_884},
}


def venue_row(space: IndoorSpace) -> dict:
    """Table 2 row for one venue (measured)."""
    stats = space.stats()
    d2d = build_d2d_graph(space)
    return {
        "name": stats.name,
        "doors": stats.num_doors,
        "rooms": stats.num_rooms,
        "edges": stats.num_d2d_edges,
        "floors": stats.num_floors,
        "avg_out_degree": round(average_out_degree(d2d), 1),
        "max_partition_degree": stats.max_partition_degree,
    }


def table2(profile: str = "small") -> list[dict]:
    """Measured Table 2 over all six venues at the given profile, with
    the paper's numbers attached for comparison."""
    rows = []
    for name in VENUE_NAMES:
        row = venue_row(load_venue(name, profile))
        paper = PAPER_TABLE2[name]
        row["paper_doors"] = paper["doors"]
        row["paper_rooms"] = paper["rooms"]
        row["paper_edges"] = paper["edges"]
        rows.append(row)
    return rows
