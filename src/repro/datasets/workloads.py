"""Query and object workload generators (paper §4.1).

* 10,000 random source/target pairs for distance/path queries (scaled
  down with the venue profile),
* distance-bucketed pairs Q1..Q5 over [0, d_max] for Fig 10(b),
* random object sets (the paper uses washrooms; synthetic sets of
  10/50/100/500 objects for Fig 11(b)),
* weighted mixed-query streams (kNN/distance/range/path) for the
  :mod:`repro.engine` throughput driver.

Everything is deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..model.d2d import build_d2d_graph
from ..model.entities import IndoorPoint, PartitionKind
from ..model.geometry import Rect
from ..model.indoor_space import IndoorSpace
from ..model.objects import ObjectSet, make_object_set
from ..graph.adjacency import Graph
from ..graph.dijkstra import dijkstra, pseudo_diameter


def _samplable_partitions(space: IndoorSpace) -> list[int]:
    """Partitions where query points / objects may be placed: single-floor
    rooms and hallways (not stairs, lifts or outdoor walkways)."""
    return [
        p.partition_id
        for p in space.partitions
        if p.floor is not None
        and p.kind
        in (PartitionKind.ROOM, PartitionKind.HALLWAY)
    ]


def random_point(space: IndoorSpace, rng: random.Random, partitions: list[int] | None = None) -> IndoorPoint:
    """A uniform random indoor point (uniform over partitions, then over
    the partition's footprint, falling back to its doors' bounding box)."""
    if partitions is None:
        partitions = _samplable_partitions(space)
    pid = rng.choice(partitions)
    part = space.partitions[pid]
    if isinstance(part.footprint, Rect):
        x, y = part.footprint.sample(rng)
        return IndoorPoint(pid, x, y)
    xs = [space.doors[d].position.x for d in part.door_ids]
    ys = [space.doors[d].position.y for d in part.door_ids]
    return IndoorPoint(
        pid,
        min(xs) + rng.random() * max(1e-9, max(xs) - min(xs)),
        min(ys) + rng.random() * max(1e-9, max(ys) - min(ys)),
    )


def random_pairs(
    space: IndoorSpace, count: int, seed: int = 99
) -> list[tuple[IndoorPoint, IndoorPoint]]:
    """Random source/target pairs for shortest distance/path queries."""
    rng = random.Random(seed)
    partitions = _samplable_partitions(space)
    return [
        (random_point(space, rng, partitions), random_point(space, rng, partitions))
        for _ in range(count)
    ]


def random_objects(
    space: IndoorSpace, count: int, seed: int = 17, category: str = "washroom"
) -> ObjectSet:
    """A random object set (distinct partitions where possible)."""
    rng = random.Random(seed)
    partitions = _samplable_partitions(space)
    rng.shuffle(partitions)
    chosen = partitions[:count]
    while len(chosen) < count:  # more objects than partitions: reuse
        chosen.append(rng.choice(partitions))
    locations = []
    for pid in chosen:
        pt = random_point(space, rng, [pid])
        locations.append(pt)
    return make_object_set(
        space,
        locations,
        labels=[f"{category}-{i}" for i in range(count)],
        category=category,
    )


def distance_bucketed_pairs(
    space: IndoorSpace,
    per_bucket: int,
    buckets: int = 5,
    seed: int = 5,
    d2d: Graph | None = None,
    max_attempts_factor: int = 400,
) -> list[list[tuple[IndoorPoint, IndoorPoint]]]:
    """Fig 10(b) workload: pairs grouped by distance into Q1..Q5.

    [0, d_max] is split into ``buckets`` equal intervals (d_max estimated
    with a double-sweep pseudo-diameter); random pairs are drawn and
    allocated to their bucket until each bucket holds ``per_bucket``
    pairs (or attempts are exhausted — extreme buckets can be thin).
    """
    if d2d is None:
        d2d = build_d2d_graph(space)
    rng = random.Random(seed)
    partitions = _samplable_partitions(space)
    dmax = pseudo_diameter(d2d) * 1.05  # slack for point offsets
    width = dmax / buckets
    out: list[list[tuple[IndoorPoint, IndoorPoint]]] = [[] for _ in range(buckets)]
    attempts = max_attempts_factor * per_bucket * buckets
    while attempts > 0 and any(len(b) < per_bucket for b in out):
        attempts -= 1
        s = random_point(space, rng, partitions)
        t = random_point(space, rng, partitions)
        src = {
            du: space.point_to_door_distance(s, du)
            for du in space.partitions[s.partition_id].door_ids
        }
        tgt = {
            dv: space.point_to_door_distance(t, dv)
            for dv in space.partitions[t.partition_id].door_ids
        }
        dist, _ = dijkstra(d2d, src, targets=set(tgt))
        d = min(dist.get(dv, float("inf")) + off for dv, off in tgt.items())
        if s.partition_id == t.partition_id:
            d = min(d, space.direct_point_distance(s, t))
        idx = min(buckets - 1, int(d / width)) if width > 0 else 0
        if len(out[idx]) < per_bucket:
            out[idx].append((s, t))
    return out


# ----------------------------------------------------------------------
# Mixed workloads (engine throughput driver)
# ----------------------------------------------------------------------

#: default query mix: the kNN-heavy shape of a deployed venue service
DEFAULT_MIX = {"knn": 0.7, "distance": 0.2, "range": 0.1}

MIX_KINDS = ("distance", "path", "knn", "range")


@dataclass(slots=True)
class MixedQuery:
    """One query of a mixed workload stream.

    ``kind`` selects which fields matter: ``distance``/``path`` use
    ``source`` and ``target``; ``knn`` uses ``source`` and ``k``;
    ``range`` uses ``source`` and ``radius``.
    """

    kind: str
    source: IndoorPoint
    target: IndoorPoint | None = None
    k: int = 0
    radius: float = 0.0


def mixed_queries(
    space: IndoorSpace,
    count: int,
    mix: dict[str, float] | None = None,
    seed: int = 29,
    *,
    pool: int | None = 32,
    k: int = 5,
    radius: float | None = None,
    d2d: Graph | None = None,
) -> list[MixedQuery]:
    """A weighted stream of mixed queries (e.g. 70% kNN / 20% distance /
    10% range) for throughput measurements.

    Args:
        space: the venue to query.
        count: stream length.
        mix: kind -> weight (normalized; kinds from :data:`MIX_KINDS`).
            Defaults to :data:`DEFAULT_MIX`.
        seed: deterministic stream seed.
        pool: number of distinct endpoint locations queries draw from —
            real deployments hit popular locations repeatedly, which is
            what makes result/endpoint caches effective. ``None``
            samples a fresh point per endpoint (no reuse).
        k: the k of every kNN query.
        radius: the radius of every range query; defaults to 20% of the
            venue's pseudo-diameter.
        d2d: optional prebuilt D2D graph (only needed for the default
            radius estimate).
    """
    if mix is None:
        mix = DEFAULT_MIX
    unknown = set(mix) - set(MIX_KINDS)
    if unknown:
        raise ValueError(f"unknown workload kinds {sorted(unknown)}; expected {MIX_KINDS}")
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("mix weights must sum to a positive value")

    rng = random.Random(seed)
    partitions = _samplable_partitions(space)
    if radius is None and "range" in mix and mix["range"] > 0:
        if d2d is None:
            d2d = build_d2d_graph(space)
        radius = 0.2 * pseudo_diameter(d2d)
    if radius is None:
        radius = 0.0

    if pool is not None:
        points = [random_point(space, rng, partitions) for _ in range(max(1, pool))]
        pick = lambda: rng.choice(points)  # noqa: E731
    else:
        pick = lambda: random_point(space, rng, partitions)  # noqa: E731

    kinds = sorted(mix)  # deterministic order for rng.choices
    weights = [mix[kd] for kd in kinds]
    out: list[MixedQuery] = []
    for kind in rng.choices(kinds, weights=weights, k=count):
        if kind in ("distance", "path"):
            out.append(MixedQuery(kind, pick(), target=pick()))
        elif kind == "knn":
            out.append(MixedQuery(kind, pick(), k=k))
        else:
            out.append(MixedQuery(kind, pick(), radius=radius))
    return out
