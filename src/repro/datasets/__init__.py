"""Synthetic venue generators, profiles, replication and workloads."""

from .campus import build_campus
from .mall import build_mall
from .moving import moving_objects
from .multi_venue import multi_venue_streams
from .office import build_office
from .profiles import (
    CAMPUS_PROFILES,
    MALL_PROFILES,
    OFFICE_PROFILES,
    PROFILES,
    CampusProfile,
    MallProfile,
    OfficeProfile,
)
from .replicate import replicate_space
from .stats import PAPER_TABLE2, table2, venue_row
from .venues import VENUE_NAMES, load_venue
from .workloads import (
    DEFAULT_MIX,
    MixedQuery,
    distance_bucketed_pairs,
    mixed_queries,
    random_objects,
    random_pairs,
    random_point,
)

__all__ = [
    "CAMPUS_PROFILES",
    "CampusProfile",
    "DEFAULT_MIX",
    "MALL_PROFILES",
    "MallProfile",
    "MixedQuery",
    "OFFICE_PROFILES",
    "OfficeProfile",
    "PAPER_TABLE2",
    "PROFILES",
    "VENUE_NAMES",
    "build_campus",
    "build_mall",
    "build_office",
    "distance_bucketed_pairs",
    "load_venue",
    "mixed_queries",
    "moving_objects",
    "multi_venue_streams",
    "random_objects",
    "random_pairs",
    "random_point",
    "replicate_space",
    "table2",
    "venue_row",
]
