"""Size profiles for the synthetic venue generators.

The paper evaluates on three real venues (Melbourne Central, the Menzies
building and the Clayton campus) plus replicated variants (Table 2). The
floor plans are not redistributable, so the generators in this package
synthesize venues with the same *topology class* and tunable counts
(see DESIGN.md §5, substitution 1). Three profiles are provided:

* ``tiny``  — seconds-fast venues for unit tests,
* ``small`` — default benchmark scale for the pure-Python runtime,
* ``paper`` — approximates the Table 2 door/room/edge counts.
"""

from __future__ import annotations

from dataclasses import dataclass

PROFILES = ("tiny", "small", "paper")


@dataclass(frozen=True, slots=True)
class MallProfile:
    """Melbourne-Central-like shopping mall."""

    levels: int
    hallways_per_level: int
    shops_per_hallway: int
    exits: int


@dataclass(frozen=True, slots=True)
class OfficeProfile:
    """Menzies-like office tower."""

    levels: int
    corridors_per_level: int
    rooms_per_corridor: int
    exits: int


@dataclass(frozen=True, slots=True)
class CampusProfile:
    """Clayton-like multi-building campus."""

    buildings: int
    min_levels: int
    max_levels: int
    min_rooms_per_corridor: int
    max_rooms_per_corridor: int


MALL_PROFILES: dict[str, MallProfile] = {
    "tiny": MallProfile(levels=2, hallways_per_level=2, shops_per_hallway=4, exits=2),
    "small": MallProfile(levels=7, hallways_per_level=2, shops_per_hallway=8, exits=2),
    # Table 2: 297 rooms / 299 doors / 8,466 edges over 7 levels.
    "paper": MallProfile(levels=7, hallways_per_level=2, shops_per_hallway=20, exits=2),
}

OFFICE_PROFILES: dict[str, OfficeProfile] = {
    "tiny": OfficeProfile(levels=3, corridors_per_level=1, rooms_per_corridor=6, exits=1),
    "small": OfficeProfile(levels=14, corridors_per_level=2, rooms_per_corridor=10, exits=2),
    # Table 2: 1,306 rooms / 1,368 doors / 56,035 edges over 14 levels.
    "paper": OfficeProfile(levels=14, corridors_per_level=2, rooms_per_corridor=45, exits=2),
}

CAMPUS_PROFILES: dict[str, CampusProfile] = {
    "tiny": CampusProfile(
        buildings=3, min_levels=1, max_levels=2,
        min_rooms_per_corridor=4, max_rooms_per_corridor=6,
    ),
    "small": CampusProfile(
        buildings=8, min_levels=2, max_levels=4,
        min_rooms_per_corridor=12, max_rooms_per_corridor=20,
    ),
    # Table 2: 71 buildings, 41,100 rooms, 6.7M edges — long corridors
    # with ~100-180 rooms dominate the clique edge count.
    "paper": CampusProfile(
        buildings=71, min_levels=2, max_levels=6,
        min_rooms_per_corridor=110, max_rooms_per_corridor=180,
    ),
}


def validate_profile(profile: str) -> str:
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; expected one of {PROFILES}")
    return profile
