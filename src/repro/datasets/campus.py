"""Clayton-campus-like multi-building generator.

Builds a campus of office-tower-style buildings whose ground-floor
corridors open onto shared outdoor walkway partitions; the walkways add
the door-to-door edges between entry/exit doors of different buildings
exactly as the paper describes for the CL dataset (§4.1). Long corridors
with many doors reproduce the very high out-degree (up to 400) that
motivates the indexes.
"""

from __future__ import annotations

import random

from ..model.builder import IndoorSpaceBuilder
from ..model.geometry import Rect
from ..model.indoor_space import IndoorSpace
from .profiles import CAMPUS_PROFILES, CampusProfile, validate_profile

ROOM_WIDTH = 3.5
ROOM_DEPTH = 5.0
HALL_WIDTH = 2.5
BUILDING_GAP = 30.0
#: buildings per outdoor walkway segment (keeps the outdoor cliques from
#: dominating the edge count, like a real path network)
BUILDINGS_PER_WALKWAY = 12


def build_campus(
    profile: str | CampusProfile = "small",
    seed: int = 23,
    name: str = "CL",
    levels_multiplier: int = 1,
) -> IndoorSpace:
    """Generate a campus venue.

    Args:
        profile: a profile name or explicit :class:`CampusProfile`.
        seed: randomizes per-building size within the profile bounds.
        name: venue name.
        levels_multiplier: multiplies each building's level count — used
            to derive CL-2 (the paper replicates every building, which is
            topologically a building of twice the height joined by
            stairs).
    """
    if isinstance(profile, str):
        profile = CAMPUS_PROFILES[validate_profile(profile)]
    rng = random.Random(seed)
    b = IndoorSpaceBuilder(name=name)

    num_walkways = max(1, (profile.buildings + BUILDINGS_PER_WALKWAY - 1) // BUILDINGS_PER_WALKWAY)
    walkways = [b.add_outdoor(label=f"walkway-{i}") for i in range(num_walkways)]

    for bid in range(profile.buildings):
        x_base = bid * BUILDING_GAP
        levels = rng.randint(profile.min_levels, profile.max_levels) * levels_multiplier
        rooms_per = rng.randint(
            profile.min_rooms_per_corridor, profile.max_rooms_per_corridor
        )
        corridor_len = rooms_per / 2 * ROOM_WIDTH + ROOM_WIDTH

        corridors = []
        for level in range(levels):
            corridor = b.add_hallway(
                floor=level,
                label=f"B{bid}-L{level}",
                footprint=Rect(x_base, 0.0, x_base + corridor_len, HALL_WIDTH),
            )
            corridors.append(corridor)
            for i in range(rooms_per):
                side = 1 if i % 2 == 0 else -1
                rx = x_base + (i // 2) * ROOM_WIDTH + ROOM_WIDTH / 2
                ry = HALL_WIDTH if side > 0 else 0.0
                room = b.add_room(
                    floor=level,
                    label=f"B{bid}-L{level}-r{i}",
                    footprint=Rect(
                        rx - ROOM_WIDTH / 2,
                        ry if side > 0 else ry - ROOM_DEPTH,
                        rx + ROOM_WIDTH / 2,
                        ry + ROOM_DEPTH if side > 0 else ry,
                    ),
                )
                b.add_door(
                    corridor, room, x=rx + rng.uniform(-0.8, 0.8), y=ry, floor=level
                )
        for level in range(levels - 1):
            b.add_staircase(
                corridors[level],
                corridors[level + 1],
                x=x_base + 0.5,
                y=HALL_WIDTH / 2,
                floor_lower=level,
                floor_upper=level + 1,
            )
            if rooms_per > 20:
                b.add_staircase(
                    corridors[level],
                    corridors[level + 1],
                    x=x_base + corridor_len - 0.5,
                    y=HALL_WIDTH / 2,
                    floor_lower=level,
                    floor_upper=level + 1,
                )

        # Building entrances: ground corridor opens onto its walkway.
        walkway = walkways[bid // BUILDINGS_PER_WALKWAY]
        b.add_door(
            corridors[0], walkway, x=x_base + corridor_len / 2, y=-0.5, floor=0,
            label=f"B{bid}-entrance",
        )
        if rooms_per > 30:
            b.add_door(
                corridors[0], walkway, x=x_base + corridor_len - 1.0, y=-0.5, floor=0,
                label=f"B{bid}-entrance-2",
            )

    # Chain walkway segments so the campus is connected, and give the
    # first walkway a gate to the outside world.
    for i in range(num_walkways - 1):
        jx = (i + 1) * BUILDINGS_PER_WALKWAY * BUILDING_GAP - BUILDING_GAP / 2
        b.add_door(walkways[i], walkways[i + 1], x=jx, y=-5.0, floor=0)
    b.add_exterior_door(walkways[0], x=-5.0, y=-5.0, floor=0, label="campus-gate")
    return b.build()
