"""Melbourne-Central-like shopping mall generator.

Each level is a pair of connected hallway segments lined with single-door
shops (plus a few double-door anchor shops); escalators connect
consecutive levels; exterior doors sit on the ground level. The layout
reproduces the topology the paper's MC dataset exhibits: moderate-size
hallway cliques, 7 levels, shops as no-through partitions.
"""

from __future__ import annotations

import random

from ..model.builder import IndoorSpaceBuilder
from ..model.entities import PartitionKind
from ..model.geometry import Rect
from ..model.indoor_space import IndoorSpace
from .profiles import MALL_PROFILES, MallProfile, validate_profile

SHOP_DEPTH = 6.0
SHOP_WIDTH = 4.0
HALL_WIDTH = 4.0


def build_mall(
    profile: str | MallProfile = "small",
    seed: int = 7,
    name: str = "MC",
) -> IndoorSpace:
    """Generate a mall venue.

    Args:
        profile: a profile name (``tiny``/``small``/``paper``) or an
            explicit :class:`MallProfile`.
        seed: jitter seed (door placement along shopfronts).
        name: venue name for stats/benchmarks.
    """
    if isinstance(profile, str):
        profile = MALL_PROFILES[validate_profile(profile)]
    rng = random.Random(seed)
    b = IndoorSpaceBuilder(name=name)

    hall_len = profile.shops_per_hallway / 2 * SHOP_WIDTH + SHOP_WIDTH
    level_halls: list[list[int]] = []
    for level in range(profile.levels):
        halls = []
        for h in range(profile.hallways_per_level):
            x0 = h * (hall_len + 2.0)
            hall = b.add_hallway(
                floor=level,
                label=f"L{level}-hall{h}",
                footprint=Rect(x0, 0.0, x0 + hall_len, HALL_WIDTH),
            )
            halls.append(hall)
            # Shops on both sides of the hallway.
            for i in range(profile.shops_per_hallway):
                side = 1 if i % 2 == 0 else -1
                sx = x0 + (i // 2) * SHOP_WIDTH + SHOP_WIDTH / 2
                sy = HALL_WIDTH if side > 0 else 0.0
                shop = b.add_room(
                    floor=level,
                    label=f"L{level}-h{h}-shop{i}",
                    footprint=Rect(
                        sx - SHOP_WIDTH / 2,
                        sy if side > 0 else sy - SHOP_DEPTH,
                        sx + SHOP_WIDTH / 2,
                        sy + SHOP_DEPTH if side > 0 else sy,
                    ),
                )
                b.add_door(
                    hall, shop, x=sx + rng.uniform(-1.0, 1.0), y=sy, floor=level
                )
                # Every sixth shop is an anchor with a second door.
                if i % 6 == 5:
                    b.add_door(
                        hall, shop, x=sx + rng.uniform(-1.5, 1.5), y=sy, floor=level
                    )
        # Join consecutive hallway segments on the level.
        for h in range(len(halls) - 1):
            jx = (h + 1) * (hall_len + 2.0) - 1.0
            b.add_door(halls[h], halls[h + 1], x=jx, y=HALL_WIDTH / 2, floor=level)
        level_halls.append(halls)

    # Escalators between consecutive levels (one per hallway pair).
    for level in range(profile.levels - 1):
        for h in range(profile.hallways_per_level):
            ex = h * (hall_len + 2.0) + hall_len / 2
            esc = b.add_partition(
                PartitionKind.ESCALATOR,
                floor=None,
                label=f"esc-L{level}-h{h}",
            )
            b.add_door(esc, level_halls[level][h], x=ex, y=HALL_WIDTH / 2, floor=level)
            b.add_door(
                esc, level_halls[level + 1][h], x=ex, y=HALL_WIDTH / 2, floor=level + 1
            )

    for e in range(profile.exits):
        b.add_exterior_door(
            level_halls[0][e % profile.hallways_per_level],
            x=2.0 + 3.0 * e,
            y=0.0,
            floor=0,
            label=f"exit-{e}",
        )
    return b.build()
