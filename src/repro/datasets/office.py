"""Menzies-like office tower generator.

Each level is a set of corridor segments (hallway partitions) lined with
offices; a stairwell at each end and a lift shaft in the middle connect
the levels; exterior doors on the ground floor. Matches the topology of
the paper's Men dataset: 14 levels, corridor cliques of a few dozen
doors, offices as no-through or two-door partitions.
"""

from __future__ import annotations

import random

from ..model.builder import IndoorSpaceBuilder
from ..model.geometry import Rect
from ..model.indoor_space import IndoorSpace
from .profiles import OFFICE_PROFILES, OfficeProfile, validate_profile

ROOM_WIDTH = 3.5
ROOM_DEPTH = 5.0
HALL_WIDTH = 2.5


def build_office(
    profile: str | OfficeProfile = "small",
    seed: int = 11,
    name: str = "Men",
) -> IndoorSpace:
    """Generate an office tower venue."""
    if isinstance(profile, str):
        profile = OFFICE_PROFILES[validate_profile(profile)]
    rng = random.Random(seed)
    b = IndoorSpaceBuilder(name=name)

    corridor_len = profile.rooms_per_corridor / 2 * ROOM_WIDTH + ROOM_WIDTH
    level_corridors: list[list[int]] = []
    for level in range(profile.levels):
        corridors = []
        for c in range(profile.corridors_per_level):
            x0 = c * (corridor_len + 2.0)
            corridor = b.add_hallway(
                floor=level,
                label=f"L{level}-corr{c}",
                footprint=Rect(x0, 0.0, x0 + corridor_len, HALL_WIDTH),
            )
            corridors.append(corridor)
            prev_room = None
            for i in range(profile.rooms_per_corridor):
                side = 1 if i % 2 == 0 else -1
                rx = x0 + (i // 2) * ROOM_WIDTH + ROOM_WIDTH / 2
                ry = HALL_WIDTH if side > 0 else 0.0
                room = b.add_room(
                    floor=level,
                    label=f"L{level}-c{c}-room{i}",
                    footprint=Rect(
                        rx - ROOM_WIDTH / 2,
                        ry if side > 0 else ry - ROOM_DEPTH,
                        rx + ROOM_WIDTH / 2,
                        ry + ROOM_DEPTH if side > 0 else ry,
                    ),
                )
                b.add_door(
                    corridor, room, x=rx + rng.uniform(-0.8, 0.8), y=ry, floor=level
                )
                # Occasional interconnecting door between neighbouring
                # offices on the same side (shared labs / suites).
                if prev_room is not None and i % 7 == 3 and side > 0:
                    b.add_door(
                        prev_room, room, x=rx - ROOM_WIDTH / 2, y=ry + 1.0, floor=level
                    )
                prev_room = room if side > 0 else prev_room
        for c in range(len(corridors) - 1):
            jx = (c + 1) * (corridor_len + 2.0) - 1.0
            b.add_door(corridors[c], corridors[c + 1], x=jx, y=HALL_WIDTH / 2, floor=level)
        level_corridors.append(corridors)

    # Stairwells at both ends of the first corridor, per level pair.
    for level in range(profile.levels - 1):
        b.add_staircase(
            level_corridors[level][0],
            level_corridors[level + 1][0],
            x=0.5,
            y=HALL_WIDTH / 2,
            floor_lower=level,
            floor_upper=level + 1,
        )
        last = profile.corridors_per_level - 1
        b.add_staircase(
            level_corridors[level][last],
            level_corridors[level + 1][last],
            x=last * (corridor_len + 2.0) + corridor_len - 0.5,
            y=HALL_WIDTH / 2,
            floor_lower=level,
            floor_upper=level + 1,
        )

    # Lift shaft through all levels at the middle of corridor 0.
    if profile.levels > 1:
        b.add_lift(
            [corridors[0] for corridors in level_corridors],
            x=corridor_len / 2,
            y=HALL_WIDTH / 2,
            floors=list(range(profile.levels)),
        )

    for e in range(profile.exits):
        b.add_exterior_door(
            level_corridors[0][e % profile.corridors_per_level],
            x=1.0 + 2.5 * e,
            y=0.0,
            floor=0,
            label=f"exit-{e}",
        )
    return b.build()
