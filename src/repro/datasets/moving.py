"""Moving-object workloads (the canonical dynamic indoor scenario).

"An Experimental Analysis of Indoor Spatial Queries" evaluates indoor
indexes under exactly this regime: objects (people, carts, exhibits)
walk through the venue while queries stream in. :func:`moving_objects`
generates such a workload — a single interleaved event stream of

* :class:`~repro.model.objects.UpdateOp` events: objects doing **random
  walks through doors** (each move crosses one shared door into an
  adjacent room/hallway partition), plus optional insert/delete churn,
* :class:`~repro.datasets.workloads.MixedQuery` events: the same
  weighted kNN/distance/range mixes :func:`mixed_queries` produces,

at a configurable update:query ratio. Replay the stream with
:func:`repro.engine.replay`, which applies updates through the engine's
``update``/``batch_update`` endpoints in stream order.

The generator never mutates the object set it is given — it simulates
the walk locally so the produced stream, applied in order to that same
object set, is deterministic (ids assigned by inserts included).
"""

from __future__ import annotations

import random

from ..model.d2d import build_d2d_graph
from ..model.entities import PartitionKind
from ..model.indoor_space import IndoorSpace
from ..model.objects import ObjectSet, UpdateOp
from ..graph.adjacency import Graph
from ..graph.dijkstra import pseudo_diameter
from .workloads import DEFAULT_MIX, MIX_KINDS, MixedQuery, _samplable_partitions, random_point


def _walk_step(space: IndoorSpace, rng: random.Random, pid: int, walkable: set[int]) -> int:
    """One random-walk step: cross a uniformly chosen door of ``pid``
    into an adjacent walkable partition (staying put when the chosen
    door leads outside or into a non-walkable partition)."""
    door = rng.choice(space.partitions[pid].door_ids)
    owners = space.partitions_of_door(door)
    others = [p for p in owners if p != pid and p in walkable]
    return others[0] if others else pid


def moving_objects(
    space: IndoorSpace,
    objects: ObjectSet,
    count: int,
    *,
    update_ratio: float = 1.0,
    churn: float = 0.0,
    mix: dict[str, float] | None = None,
    seed: int = 41,
    pool: int | None = 32,
    k: int = 5,
    radius: float | None = None,
    d2d: Graph | None = None,
) -> list:
    """An interleaved stream of object updates and queries.

    Args:
        space: the venue.
        objects: the initial object set (read, never mutated). The
            stream assumes it is applied, in order, to exactly this
            set — insert ops rely on its id assignment.
        count: total events (updates + queries).
        update_ratio: updates per query — ``1.0`` is a 1:1 mix,
            ``0.25`` one update per four queries, ``4.0`` four updates
            per query. Must be >= 0 (0 = queries only).
        churn: probability that an update is an insert or delete
            (50/50) instead of a random-walk move. ``0.0`` keeps the
            population fixed — pure movement.
        mix: query-kind weights for the query events (defaults to
            :data:`~repro.datasets.workloads.DEFAULT_MIX`).
        seed: deterministic stream seed.
        pool: distinct query endpoints (hot locations), as in
            :func:`mixed_queries`; ``None`` samples fresh points.
        k / radius / d2d: as in :func:`mixed_queries` (``radius``
            defaults to 20% of the venue's pseudo-diameter).

    Returns:
        ``list[MixedQuery | UpdateOp]`` of length ``count``.
    """
    if update_ratio < 0:
        raise ValueError(f"update_ratio must be >= 0, got {update_ratio}")
    if not 0.0 <= churn <= 1.0:
        raise ValueError(f"churn must be in [0, 1], got {churn}")
    if mix is None:
        mix = DEFAULT_MIX
    unknown = set(mix) - set(MIX_KINDS)
    if unknown:
        raise ValueError(f"unknown workload kinds {sorted(unknown)}; expected {MIX_KINDS}")

    rng = random.Random(seed)
    partitions = _samplable_partitions(space)
    walkable = set(partitions)
    if radius is None and mix.get("range", 0) > 0:
        if d2d is None:
            d2d = build_d2d_graph(space)
        radius = 0.2 * pseudo_diameter(d2d)
    if radius is None:
        radius = 0.0

    if pool is not None:
        points = [random_point(space, rng, partitions) for _ in range(max(1, pool))]
        pick = lambda: rng.choice(points)  # noqa: E731
    else:
        pick = lambda: random_point(space, rng, partitions)  # noqa: E731

    kinds = sorted(mix)
    weights = [mix[kd] for kd in kinds]

    # Local simulation of the walk: current partition per live id plus
    # the next id the receiving set will assign.
    positions = {o.object_id: o.location.partition_id for o in objects}
    next_id = objects.capacity

    out: list = []
    if update_ratio == float("inf"):
        update_weight = 1.0  # updates only (benchmark mode)
    elif update_ratio > 0:
        update_weight = update_ratio / (1.0 + update_ratio)
    else:
        update_weight = 0.0
    for _ in range(count):
        if positions and rng.random() < update_weight:
            roll = rng.random()
            if roll < churn / 2.0:
                pid = rng.choice(partitions)
                out.append(UpdateOp("insert", location=random_point(space, rng, [pid]),
                                    label=f"walker-{next_id}"))
                positions[next_id] = pid
                next_id += 1
            elif roll < churn and len(positions) > 1:
                oid = rng.choice(sorted(positions))
                del positions[oid]
                out.append(UpdateOp("delete", object_id=oid))
            else:
                oid = rng.choice(sorted(positions))
                pid = _walk_step(space, rng, positions[oid], walkable)
                positions[oid] = pid
                out.append(UpdateOp("move", object_id=oid,
                                    location=random_point(space, rng, [pid])))
        else:
            kind = rng.choices(kinds, weights=weights, k=1)[0]
            if kind in ("distance", "path"):
                out.append(MixedQuery(kind, pick(), target=pick()))
            elif kind == "knn":
                out.append(MixedQuery(kind, pick(), k=k))
            else:
                out.append(MixedQuery(kind, pick(), radius=radius))
    return out
