"""Named venue registry: the six venues of Table 2.

``load_venue(name, profile)`` produces MC, MC-2, Men, Men-2, CL and CL-2
at one of three size profiles. MC-2 and Men-2 are true replications
(a copy stacked on top, joined by stairs — exactly the paper's
construction); CL-2 doubles each building's height, which is the same
topology the paper obtains by replicating every building.
"""

from __future__ import annotations

from ..model.indoor_space import IndoorSpace
from .campus import build_campus
from .mall import build_mall
from .office import build_office
from .profiles import validate_profile
from .replicate import replicate_space

VENUE_NAMES = ("MC", "MC-2", "Men", "Men-2", "CL", "CL-2")


def load_venue(name: str, profile: str = "small", seed: int | None = None) -> IndoorSpace:
    """Build one of the paper's venues.

    Args:
        name: one of ``MC``, ``MC-2``, ``Men``, ``Men-2``, ``CL``, ``CL-2``.
        profile: size profile (``tiny``/``small``/``paper``).
        seed: optional generator seed override.

    Raises:
        ValueError: on unknown venue or profile names.
    """
    validate_profile(profile)
    if name == "MC":
        return build_mall(profile, seed=7 if seed is None else seed, name="MC")
    if name == "MC-2":
        base = build_mall(profile, seed=7 if seed is None else seed, name="MC")
        return replicate_space(base, times=2, name="MC-2")
    if name == "Men":
        return build_office(profile, seed=11 if seed is None else seed, name="Men")
    if name == "Men-2":
        base = build_office(profile, seed=11 if seed is None else seed, name="Men")
        return replicate_space(base, times=2, name="Men-2")
    if name == "CL":
        return build_campus(profile, seed=23 if seed is None else seed, name="CL")
    if name == "CL-2":
        return build_campus(
            profile,
            seed=23 if seed is None else seed,
            name="CL-2",
            levels_multiplier=2,
        )
    raise ValueError(f"unknown venue {name!r}; expected one of {VENUE_NAMES}")
