"""Vertical venue replication (Table 2's MC-2 / Men-2 / CL-2).

The paper extends each real venue "by replication": a replica is placed
on top of the original and connected with stairs. :func:`replicate_space`
implements exactly that for any venue — partitions and doors are cloned
with a floor offset and the copies are joined by staircases at the
hallways of the seam floors.
"""

from __future__ import annotations

from ..exceptions import VenueError
from ..model.entities import DEFAULT_DELTA, Door, Partition, PartitionCategory, PartitionKind
from ..model.geometry import Point, Rect
from ..model.indoor_space import IndoorSpace


def replicate_space(
    space: IndoorSpace,
    times: int = 2,
    connectors_per_join: int = 2,
    name: str | None = None,
) -> IndoorSpace:
    """Stack ``times`` copies of a venue, joined by staircases.

    Partitions and doors are cloned per copy with their floors shifted.
    Exterior doors are cloned as-is, which preserves per-copy door counts
    and matches how Table 2's counts double between X and X-2.

    Args:
        space: the venue to replicate.
        times: total number of stacked copies (2 = the paper's "X-2").
        connectors_per_join: staircases added between consecutive copies.
        name: name of the resulting venue (default ``{space.name}-{times}``).
    """
    if times < 1:
        raise VenueError(f"times must be >= 1, got {times}")
    floors = [p.floor for p in space.partitions if p.floor is not None]
    if not floors:
        raise VenueError("cannot replicate a venue with no floored partitions")
    floor_span = max(floors) - min(floors) + 1.0
    top_floor = max(floors)
    bottom_floor = min(floors)

    partitions: list[Partition] = []
    doors: list[Door] = []
    for copy in range(times):
        df = copy * floor_span
        pid_off = copy * space.num_partitions
        did_off = copy * space.num_doors
        for door in space.doors:
            doors.append(
                Door(
                    door_id=door.door_id + did_off,
                    position=Point(
                        door.position.x, door.position.y, door.position.floor + df
                    ),
                    label=f"{door.label}#c{copy}" if copy else door.label,
                )
            )
        for part in space.partitions:
            fp = part.footprint if isinstance(part.footprint, Rect) else None
            partitions.append(
                Partition(
                    partition_id=part.partition_id + pid_off,
                    kind=part.kind,
                    floor=(part.floor + df) if part.floor is not None else None,
                    door_ids=[d + did_off for d in part.door_ids],
                    footprint=fp,
                    fixed_traversal=part.fixed_traversal,
                    label=f"{part.label}#c{copy}" if copy else part.label,
                )
            )

    # Seam staircases: join hallways on the top floor of copy i with the
    # matching hallways on the bottom floor of copy i+1.
    top_halls = [
        p.partition_id
        for p in space.partitions
        if p.floor == top_floor
        and p.category(DEFAULT_DELTA) is PartitionCategory.HALLWAY
        and p.kind is not PartitionKind.OUTDOOR
    ]
    bottom_halls = [
        p.partition_id
        for p in space.partitions
        if p.floor == bottom_floor
        and p.category(DEFAULT_DELTA) is PartitionCategory.HALLWAY
        and p.kind is not PartitionKind.OUTDOOR
    ]
    if not top_halls or not bottom_halls:
        raise VenueError("replication needs hallways on the seam floors")
    joins = list(zip(sorted(top_halls), sorted(bottom_halls)))[:connectors_per_join]

    for copy in range(times - 1):
        df_low = copy * floor_span
        df_high = (copy + 1) * floor_span
        pid_low = copy * space.num_partitions
        pid_high = (copy + 1) * space.num_partitions
        for upper_pid, lower_pid in joins:
            upper = upper_pid + pid_low
            lower = lower_pid + pid_high
            anchor = space.doors[space.partitions[upper_pid].door_ids[0]].position
            stair_pid = len(partitions)
            partitions.append(
                Partition(
                    partition_id=stair_pid,
                    kind=PartitionKind.STAIRCASE,
                    floor=None,
                    door_ids=[],
                    label=f"seam-stairs-c{copy}-{upper_pid}",
                )
            )
            for pid, floor in ((upper, top_floor + df_low), (lower, bottom_floor + df_high)):
                did = len(doors)
                doors.append(
                    Door(door_id=did, position=Point(anchor.x, anchor.y, floor))
                )
                partitions[stair_pid].door_ids.append(did)
                partitions[pid].door_ids.append(did)

    return IndoorSpace(
        partitions=partitions,
        doors=doors,
        floor_height=space.floor_height,
        name=name or f"{space.name}-{times}",
    )
