"""Reusable test helpers: fixture venues, point samplers, and the
cluster fault-injection harness.

Shared by the test suite (``tests/conftest.py``) and importable from
anywhere on ``sys.path`` — unlike a ``conftest.py``, whose module name
collides between the ``tests/`` and ``benchmarks/`` suites.

The fault-injection side (:class:`ClusterFaultHarness`,
:func:`tear_oplog_tail`, :func:`corrupt_oplog_tail`) packages the
chaos moves the replication suite performs — killing primaries
mid-update-stream, partitioning replicas, damaging log tails — so any
test (or benchmark) can stage a failure in one line and then assert
recovery against sequential replay. Serving imports are lazy: loading
this module costs nothing for tests that only need a fixture venue.
"""

from __future__ import annotations

import contextlib
import random
import signal
import sys
import threading
import time
import traceback
from pathlib import Path

from .model.builder import IndoorSpaceBuilder
from .model.entities import IndoorPoint
from .model.indoor_space import IndoorSpace


def make_fig1_like_space() -> IndoorSpace:
    """A venue shaped like the paper's Fig 1: four hallway regions in a
    row, rooms attached, exterior doors at the extremes."""
    b = IndoorSpaceBuilder(name="fig1")
    halls = []
    rooms: list[list[int]] = []
    for h in range(4):
        x0 = h * 20.0
        hall = b.add_hallway(floor=0, label=f"H{h}")
        halls.append(hall)
        rr = []
        for i in range(5):
            room = b.add_room(floor=0, label=f"H{h}-r{i}")
            rr.append(room)
            b.add_door(hall, room, x=x0 + 2.0 + i * 3.0, y=1.0)
        rooms.append(rr)
        # one room pair interconnected (creates a 2-door room)
        b.add_door(rr[0], rr[1], x=x0 + 3.5, y=2.5)
    for h in range(3):
        b.add_door(halls[h], halls[h + 1], x=(h + 1) * 20.0 - 1.0, y=0.0)
    b.add_exterior_door(halls[0], x=0.0, y=0.0, label="west-exit")
    b.add_exterior_door(halls[3], x=79.0, y=0.0, label="east-exit")
    space = b.build()
    space.fixture_rooms = rooms  # handy handles for tests
    space.fixture_halls = halls
    return space


def make_multifloor_space() -> IndoorSpace:
    """Three floors with stairs and a lift; rooms on each floor."""
    b = IndoorSpaceBuilder(name="tower")
    halls, rooms = [], []
    for f in range(3):
        hall = b.add_hallway(floor=f, label=f"F{f}")
        halls.append(hall)
        rr = [b.add_room(floor=f, label=f"F{f}-r{i}") for i in range(6)]
        rooms.append(rr)
        for i, r in enumerate(rr):
            b.add_door(hall, r, x=2.0 + i * 3.0, y=1.0, floor=f)
    b.add_exterior_door(halls[0], x=0.0, y=0.0, floor=0)
    for f in range(2):
        b.add_staircase(halls[f], halls[f + 1], x=20.0, y=0.0, floor_lower=f, floor_upper=f + 1)
    b.add_lift(halls, x=10.0, y=0.0, floors=[0.0, 1.0, 2.0])
    space = b.build()
    space.fixture_rooms = rooms
    space.fixture_halls = halls
    return space


def sample_points(space: IndoorSpace, count: int, seed: int = 5) -> list[IndoorPoint]:
    """Random points in random room/hallway partitions of a fixture."""
    rng = random.Random(seed)
    pids = [
        p.partition_id
        for p in space.partitions
        if p.floor is not None and p.fixed_traversal is None
    ]
    points = []
    for _ in range(count):
        pid = rng.choice(pids)
        doors = space.partitions[pid].door_ids
        xs = [space.doors[d].position.x for d in doors]
        ys = [space.doors[d].position.y for d in doors]
        points.append(
            IndoorPoint(
                pid,
                min(xs) + rng.random() * (max(xs) - min(xs) + 1.0),
                min(ys) + rng.random() * (max(ys) - min(ys) + 1.0),
            )
        )
    return points


# ----------------------------------------------------------------------
# Wedge detection for network-touching tests
# ----------------------------------------------------------------------
def all_thread_stacks() -> str:
    """Every live thread's current stack, formatted — the diagnostic a
    wedged test needs most (which lock/socket/future everyone is
    parked on)."""
    names = {t.ident: t.name for t in threading.enumerate()}
    chunks = []
    for ident, frame in sys._current_frames().items():
        chunks.append(f"--- thread {names.get(ident, ident)!r} ---")
        chunks.append("".join(traceback.format_stack(frame)).rstrip())
    return "\n".join(chunks)


@contextlib.contextmanager
def deadline_guard(seconds: float = 120.0):
    """Fail fast — with a full all-thread stack dump — if the guarded
    block runs past ``seconds``.

    Network-touching tests (cluster, replication, async front door)
    hang, when they hang, inside an uninterruptible wait: a
    ``future.result()`` whose completing thread died, a socket read
    against a wedged event loop. Pytest's own timeout then comes from
    the CI harness killing the whole process, which reports *nothing*
    about which wait wedged. This guard arms a real ``SIGALRM`` — it
    interrupts the main thread mid-wait, so the raised ``TimeoutError``
    carries every thread's stack at the moment of the wedge.

    SIGALRM only exists on POSIX and only fires in the main thread; on
    other platforms/threads the guard degrades to a no-op rather than
    pretending. Nesting restores the previous timer on exit.
    """
    if (not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"deadline_guard: test still running after {seconds:.0f}s — "
            f"wedged event loop or socket wait?\n{all_thread_stacks()}"
        )

    previous_handler = signal.signal(signal.SIGALRM, on_alarm)
    previous_timer = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, *(
            previous_timer if previous_timer[0] > 0.0 else (0.0,)
        ))
        signal.signal(signal.SIGALRM, previous_handler)


# ----------------------------------------------------------------------
# Cluster fault injection
# ----------------------------------------------------------------------
def wait_until(predicate, timeout: float = 30.0, interval: float = 0.01) -> bool:
    """Poll ``predicate`` until it is true (returns ``True``, so it can
    sit inside an ``assert``); raise on timeout."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError(f"condition not reached within {timeout}s")
        time.sleep(interval)
    return True


class ClusterFaultHarness:
    """Stage failures against a :class:`~repro.serving.ClusterFrontend`.

    One-line chaos moves for tests and benchmarks::

        harness = ClusterFaultHarness(cluster)
        dead = harness.kill_primary(vid)        # SIGKILL-style, no flush
        harness.partition_replica(vid)          # connection drop
        harness.crash_after_updates(shard, 3)   # dies on the 4th update

    Every kill waits until the parent observes the death, so the next
    submitted request deterministically exercises the failover path
    instead of racing the reaper.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    # -- placement ------------------------------------------------------
    def primary_of(self, venue_id: str) -> int:
        return self.cluster.placement(venue_id)[0]

    def replicas_of(self, venue_id: str) -> list[int]:
        return self.cluster.placement(venue_id)[1:]

    # -- faults ---------------------------------------------------------
    def _inject_fatal(self, shard: int, kind: str) -> int:
        handle = self.cluster._shard(shard)
        try:
            self.cluster.inject_fault(shard, kind).result(timeout=30.0)
        except Exception:  # noqa: BLE001 - dying is the point
            pass
        wait_until(lambda: not handle.alive)
        return shard

    def kill(self, shard: int) -> int:
        """Crash one shard without flushing; blocks until it is dead."""
        return self._inject_fatal(shard, "crash")

    def partition(self, shard: int) -> int:
        """Drop one shard's connection (clean EOF, no flush); blocks
        until the parent has marked it dead."""
        return self._inject_fatal(shard, "drop_connection")

    def kill_primary(self, venue_id: str) -> int:
        """Crash the venue's current primary; returns its shard id."""
        return self.kill(self.primary_of(venue_id))

    def kill_replica(self, venue_id: str) -> int:
        """Crash the venue's first replica; returns its shard id."""
        replicas = self.replicas_of(venue_id)
        if not replicas:
            raise ValueError(f"venue {venue_id[:12]!r} has no replicas")
        return self.kill(replicas[0])

    def partition_replica(self, venue_id: str) -> int:
        """Partition the venue's first replica; returns its shard id."""
        replicas = self.replicas_of(venue_id)
        if not replicas:
            raise ValueError(f"venue {venue_id[:12]!r} has no replicas")
        return self.partition(replicas[0])

    def crash_after_updates(self, shard: int, updates: int) -> None:
        """Arm ``shard`` to die on its ``updates + 1``-th update request
        — *before* applying or acknowledging it. Because the fatal op
        is never acked, retrying it after failover is exactly-once."""
        self.cluster.inject_fault(
            shard, "crash_after_n_ops", payload={"updates": int(updates)}
        ).result(timeout=30.0)

    def slow_requests(self, shard: int, seconds: float, count: int = 1) -> int:
        """Arm ``shard``'s router to sleep ``seconds`` inside its next
        ``count`` timed requests — an artificial slow query, injected
        inside the layer the slow-query log measures, so tests can
        deterministically trip a latency threshold. Returns ``count``
        as acknowledged by the worker."""
        from .serving.protocol import Request

        return self.cluster._shard(shard).call(
            Request(venue="", kind="inject_latency",
                    payload={"seconds": float(seconds), "count": int(count)}),
            timeout=30.0,
        )

    # -- recovery-safe submission --------------------------------------
    def apply_update(self, venue_id: str, op, *, attempts: int = 8):
        """Submit one update, retrying across a primary death.

        Only safe when a failed attempt is known not to have been
        applied (the :meth:`crash_after_updates` fault guarantees this;
        an arbitrary mid-apply kill does not — a blind retry there
        could double-apply). Returns the update's result.
        """
        from .exceptions import ServingError
        from .serving.protocol import Request

        last: Exception | None = None
        for _ in range(attempts):
            try:
                return self.cluster.submit(
                    Request(venue=venue_id, kind="update", op=op)
                ).result(timeout=60.0)
            except ServingError as exc:
                last = exc  # dead shard observed: failover, then retry
                time.sleep(0.05)
        raise last

    def read(self, venue_id: str, kind: str, *, attempts: int = 8, **fields):
        """Submit one read, retrying across shard deaths (reads are
        idempotent, so blind retries are always safe)."""
        from .exceptions import ServingError
        from .serving.protocol import Request

        last: Exception | None = None
        for _ in range(attempts):
            try:
                return self.cluster.submit(
                    Request(venue=venue_id, kind=kind, **fields)
                ).result(timeout=60.0)
            except ServingError as exc:
                last = exc
                time.sleep(0.05)
        raise last


# ----------------------------------------------------------------------
# Operation-log tampering (crash/corruption simulation)
# ----------------------------------------------------------------------
def venue_oplog_path(catalog_root, space: IndoorSpace,
                     kind: str = "VIP-Tree") -> Path:
    """Where the venue's operation log lives under ``catalog_root``."""
    from .storage.catalog import SnapshotCatalog
    from .storage.oplog import oplog_path

    return oplog_path(SnapshotCatalog(catalog_root).path_for(space, kind))


def tear_oplog_tail(path: str | Path) -> None:
    """Simulate a crash mid-append: a record header promising more
    bytes than follow. The torn record was never fsynced to completion,
    hence never acknowledged — recovery must serve exactly the valid
    prefix and the next writer must repair the tail."""
    with open(path, "ab") as fh:
        fh.write(b"\x00\x00\x40\x00\xde\xad\xbe\xef torn")


def corrupt_oplog_tail(path: str | Path) -> int:
    """Flip one byte inside the last valid record's payload (bit rot /
    partial sector write). Returns the version of the record destroyed
    — recovery must stop at the record before it."""
    from .storage.oplog import scan_oplog

    path = Path(path)
    scan = scan_oplog(path)
    if not scan.records:
        raise ValueError(f"{path}: no valid records to corrupt")
    blob = bytearray(path.read_bytes())
    blob[scan.valid_bytes - 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    return scan.records[-1].version
