"""Reusable test helpers: handcrafted fixture venues and point samplers.

Shared by the test suite (``tests/conftest.py``) and importable from
anywhere on ``sys.path`` — unlike a ``conftest.py``, whose module name
collides between the ``tests/`` and ``benchmarks/`` suites.
"""

from __future__ import annotations

import random

from .model.builder import IndoorSpaceBuilder
from .model.entities import IndoorPoint
from .model.indoor_space import IndoorSpace


def make_fig1_like_space() -> IndoorSpace:
    """A venue shaped like the paper's Fig 1: four hallway regions in a
    row, rooms attached, exterior doors at the extremes."""
    b = IndoorSpaceBuilder(name="fig1")
    halls = []
    rooms: list[list[int]] = []
    for h in range(4):
        x0 = h * 20.0
        hall = b.add_hallway(floor=0, label=f"H{h}")
        halls.append(hall)
        rr = []
        for i in range(5):
            room = b.add_room(floor=0, label=f"H{h}-r{i}")
            rr.append(room)
            b.add_door(hall, room, x=x0 + 2.0 + i * 3.0, y=1.0)
        rooms.append(rr)
        # one room pair interconnected (creates a 2-door room)
        b.add_door(rr[0], rr[1], x=x0 + 3.5, y=2.5)
    for h in range(3):
        b.add_door(halls[h], halls[h + 1], x=(h + 1) * 20.0 - 1.0, y=0.0)
    b.add_exterior_door(halls[0], x=0.0, y=0.0, label="west-exit")
    b.add_exterior_door(halls[3], x=79.0, y=0.0, label="east-exit")
    space = b.build()
    space.fixture_rooms = rooms  # handy handles for tests
    space.fixture_halls = halls
    return space


def make_multifloor_space() -> IndoorSpace:
    """Three floors with stairs and a lift; rooms on each floor."""
    b = IndoorSpaceBuilder(name="tower")
    halls, rooms = [], []
    for f in range(3):
        hall = b.add_hallway(floor=f, label=f"F{f}")
        halls.append(hall)
        rr = [b.add_room(floor=f, label=f"F{f}-r{i}") for i in range(6)]
        rooms.append(rr)
        for i, r in enumerate(rr):
            b.add_door(hall, r, x=2.0 + i * 3.0, y=1.0, floor=f)
    b.add_exterior_door(halls[0], x=0.0, y=0.0, floor=0)
    for f in range(2):
        b.add_staircase(halls[f], halls[f + 1], x=20.0, y=0.0, floor_lower=f, floor_upper=f + 1)
    b.add_lift(halls, x=10.0, y=0.0, floors=[0.0, 1.0, 2.0])
    space = b.build()
    space.fixture_rooms = rooms
    space.fixture_halls = halls
    return space


def sample_points(space: IndoorSpace, count: int, seed: int = 5) -> list[IndoorPoint]:
    """Random points in random room/hallway partitions of a fixture."""
    rng = random.Random(seed)
    pids = [
        p.partition_id
        for p in space.partitions
        if p.floor is not None and p.fixed_traversal is None
    ]
    points = []
    for _ in range(count):
        pid = rng.choice(pids)
        doors = space.partitions[pid].door_ids
        xs = [space.doors[d].position.x for d in doors]
        ys = [space.doors[d].position.y for d in doors]
        points.append(
            IndoorPoint(
                pid,
                min(xs) + rng.random() * (max(xs) - min(xs) + 1.0),
                min(ys) + rng.random() * (max(ys) - min(ys) + 1.0),
            )
        )
    return points
