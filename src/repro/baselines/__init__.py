"""Baseline indexes the paper compares against, plus a Dijkstra oracle."""

from .base import SpatialIndex, candidate_doors, direct_distance, endpoint_offsets
from .distaware import DistAware, DistAwPlusPlus
from .distmx import DistanceMatrix, DistMxObjects
from .gtree import GTree
from .oracle import DijkstraOracle
from .road import Road

__all__ = [
    "DijkstraOracle",
    "DistAwPlusPlus",
    "DistAware",
    "DistMxObjects",
    "DistanceMatrix",
    "GTree",
    "Road",
    "SpatialIndex",
    "candidate_doors",
    "direct_distance",
    "endpoint_offsets",
]
