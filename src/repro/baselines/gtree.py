"""G-tree baseline [Zhong et al., CIKM 2013 / TKDE 2015].

The state-of-the-art road-network index the paper compares against: the
D2D graph is recursively partitioned (METIS in the original; our
:mod:`repro.graph.partitioner` stand-in here) into a balanced tree whose
nodes keep border-to-border distance matrices, and queries assemble
distances bottom-up through the lowest common ancestor.

As in the original system, non-leaf matrices are computed within each
node's subgraph; on non-convex decompositions this yields upper bounds
(exact on road-network-like and on our structured indoor venues — see
DESIGN.md §5). Same-leaf queries fall back to a bounded Dijkstra on the
full graph, mirroring how the paper adapts the index to indoor spaces.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from ..core.table import DistanceTable
from ..graph.adjacency import Graph
from ..graph.dijkstra import dijkstra
from ..graph.partitioner import partition_k
from ..model.d2d import build_d2d_graph
from ..model.indoor_space import IndoorSpace
from ..model.objects import ObjectSet
from .base import direct_distance, endpoint_offsets

INF = float("inf")

DEFAULT_FANOUT = 4
DEFAULT_LEAF_SIZE = 32


@dataclass(slots=True)
class GTreeNode:
    nid: int
    parent: int | None = None
    children: list[int] = field(default_factory=list)
    vertices: list[int] = field(default_factory=list)  # leaves only
    borders: list[int] = field(default_factory=list)
    table: DistanceTable | None = None
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children


class GTree:
    """Hierarchical border-matrix index over the D2D graph."""

    index_name = "G-Tree"

    def __init__(
        self,
        space: IndoorSpace,
        d2d: Graph | None = None,
        fanout: int = DEFAULT_FANOUT,
        max_leaf_size: int = DEFAULT_LEAF_SIZE,
    ) -> None:
        self.space = space
        self.graph = d2d if d2d is not None else build_d2d_graph(space)
        self.fanout = fanout
        self.max_leaf_size = max_leaf_size
        start = time.perf_counter()
        self.nodes: list[GTreeNode] = []
        self.leaf_of_vertex: list[int] = [0] * self.graph.num_vertices
        self.root_id = self._build_hierarchy()
        self._compute_tables()
        self._chains = self._build_chains()
        self.build_seconds = time.perf_counter() - start
        self._objects: ObjectSet | None = None
        self._leaf_objects: dict[int, list[int]] = {}
        self._access_lists: dict[int, dict[int, list[tuple[float, int]]]] = {}
        self._node_counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_hierarchy(self) -> int:
        all_vertices = list(range(self.graph.num_vertices))
        root = GTreeNode(nid=0, vertices=all_vertices)
        self.nodes.append(root)
        stack = [0]
        while stack:
            nid = stack.pop()
            node = self.nodes[nid]
            verts = node.vertices
            if len(verts) <= self.max_leaf_size:
                for v in verts:
                    self.leaf_of_vertex[v] = nid
                continue
            parts = partition_k(self.graph, verts, self.fanout)
            parts = [p for p in parts if p]
            if len(parts) <= 1:
                for v in verts:
                    self.leaf_of_vertex[v] = nid
                continue
            node.vertices = []
            for part in parts:
                cid = len(self.nodes)
                child = GTreeNode(
                    nid=cid, parent=nid, vertices=part, depth=node.depth + 1
                )
                self.nodes.append(child)
                node.children.append(cid)
                stack.append(cid)
        return 0

    def _build_chains(self) -> dict[int, list[int]]:
        """Leaf -> root ancestor chain per leaf node (shared by the
        constructor and snapshot restore)."""
        chains: dict[int, list[int]] = {}
        for node in self.nodes:
            if node.is_leaf:
                chain = [node.nid]
                cur = node.parent
                while cur is not None:
                    chain.append(cur)
                    cur = self.nodes[cur].parent
                chains[node.nid] = chain
        return chains

    def _node_vertex_sets(self) -> dict[int, set[int]]:
        """Vertex set per node, composed bottom-up."""
        sets: dict[int, set[int]] = {}
        for node in sorted(self.nodes, key=lambda n: -n.depth):
            if node.is_leaf:
                sets[node.nid] = set(node.vertices)
            else:
                merged: set[int] = set()
                for cid in node.children:
                    merged |= sets[cid]
                sets[node.nid] = merged
        return sets

    def _compute_tables(self) -> None:
        vertex_sets = self._node_vertex_sets()
        # Borders: vertices with an edge leaving the node's vertex set.
        for node in self.nodes:
            vs = vertex_sets[node.nid]
            borders = [
                v
                for v in sorted(vs)
                if any(u not in vs for u, _ in self.graph.neighbors(v))
            ]
            node.borders = borders

        for node in sorted(self.nodes, key=lambda n: -n.depth):
            if node.is_leaf:
                rows = sorted(node.vertices)
                table = DistanceTable(rows, node.borders)
                sub, mapping = self.graph.subgraph(rows)
                inverse = {i: v for v, i in mapping.items()}
                for b in node.borders:
                    dist, _ = dijkstra(sub, mapping[b])
                    for i, d in dist.items():
                        table.set_entry(inverse[i], b, d)
                node.table = table
            else:
                matrix_doors: set[int] = set()
                for cid in node.children:
                    matrix_doors.update(self.nodes[cid].borders)
                matrix_doors = sorted(matrix_doors)
                assembly = Graph(self.graph.num_vertices)
                child_of: dict[int, int] = {}
                for cid in node.children:
                    for v in vertex_sets[cid]:
                        child_of[v] = cid
                for cid in node.children:
                    child = self.nodes[cid]
                    bs = child.borders
                    for i in range(len(bs)):
                        for j in range(i + 1, len(bs)):
                            w = child.table.distance(bs[i], bs[j])
                            if w < INF:
                                assembly.add_edge(bs[i], bs[j], w)
                    # original edges crossing between children
                    for b in bs:
                        for v, w in self.graph.neighbors(b):
                            other = child_of.get(v)
                            if other is not None and other != cid:
                                assembly.add_edge(b, v, w)
                table = DistanceTable(matrix_doors, matrix_doors)
                target_set = set(matrix_doors)
                for x in matrix_doors:
                    dist, _ = dijkstra(assembly, x, targets=set(target_set))
                    for y in matrix_doors:
                        table.set_entry(x, y, dist.get(y, INF))
                node.table = table

    # ------------------------------------------------------------------
    # Distance assembly
    # ------------------------------------------------------------------
    def _climb(self, door: int, stop_node: int) -> dict[int, dict[int, float]]:
        """Distances from a door to the borders of each chain node up to
        (and including) ``stop_node``."""
        leaf_id = self.leaf_of_vertex[door]
        chain = self._chains[leaf_id]
        leaf = self.nodes[leaf_id]
        cur = {b: leaf.table.distance(door, b) for b in leaf.borders}
        out = {leaf_id: cur}
        if leaf_id == stop_node:
            return out
        prev = leaf_id
        for nid in chain[1:]:
            node = self.nodes[nid]
            table = node.table
            prev_borders = self.nodes[prev].borders
            nxt = {}
            for b in node.borders:
                best = INF
                for pb in prev_borders:
                    base = out[prev].get(pb, INF)
                    if base >= best:
                        continue
                    d = base + table.distance(pb, b)
                    if d < best:
                        best = d
                nxt[b] = best
            out[nid] = nxt
            prev = nid
            if nid == stop_node:
                break
        return out

    def door_distance(self, door_a: int, door_b: int) -> float:
        """Assembly-based door-to-door distance (paper's adapted G-tree)."""
        if door_a == door_b:
            return 0.0
        leaf_a = self.leaf_of_vertex[door_a]
        leaf_b = self.leaf_of_vertex[door_b]
        if leaf_a == leaf_b:
            dist, _ = dijkstra(self.graph, door_a, targets={door_b})
            return dist.get(door_b, INF)
        chain_a = self._chains[leaf_a]
        chain_b = self._chains[leaf_b]
        pos_a = {nid: i for i, nid in enumerate(chain_a)}
        lca = next(nid for nid in chain_b if nid in pos_a)
        ja = pos_a[lca]
        jb = chain_b.index(lca)
        ns = chain_a[ja - 1]
        nt = chain_b[jb - 1]
        da = self._climb(door_a, ns)[ns]
        db = self._climb(door_b, nt)[nt]
        table = self.nodes[lca].table
        best = INF
        for b1, d1 in da.items():
            if d1 >= best:
                continue
            for b2, d2 in db.items():
                d = d1 + table.distance(b1, b2) + d2
                if d < best:
                    best = d
        return best

    def shortest_distance(self, source, target) -> float:
        s_off, _ = endpoint_offsets(self.space, source)
        t_off, _ = endpoint_offsets(self.space, target)
        best = direct_distance(self.space, source, target)
        for di, osi in s_off.items():
            for dj, otj in t_off.items():
                d = osi + self.door_distance(di, dj) + otj
                if d < best:
                    best = d
        return best

    def shortest_path(self, source, target) -> tuple[float, list[int]]:
        """Distance and door sequence (recovered by a guided Dijkstra; the
        original unfolds matrices, which has the same output)."""
        s_off, _ = endpoint_offsets(self.space, source)
        t_off, _ = endpoint_offsets(self.space, target)
        dist, parent = dijkstra(self.graph, dict(s_off), targets=set(t_off))
        best = direct_distance(self.space, source, target)
        best_door = None
        for dv, off in t_off.items():
            d = dist.get(dv, INF) + off
            if d < best:
                best = d
                best_door = dv
        if best_door is None:
            return best, []
        doors = [best_door]
        cur = best_door
        while parent.get(cur, cur) != cur:
            cur = parent[cur]
            doors.append(cur)
        doors.reverse()
        return best, doors

    # ------------------------------------------------------------------
    # Object queries
    # ------------------------------------------------------------------
    def attach_objects(self, objects: ObjectSet) -> None:
        objects.validate(self.space)
        self._objects = objects
        self._leaf_objects = {}
        self._access_lists = {}
        self._node_counts = {}
        space = self.space
        for obj in objects:
            pid = obj.location.partition_id
            leaves = {self.leaf_of_vertex[dv] for dv in space.partitions[pid].door_ids}
            for leaf_id in leaves:
                self._leaf_objects.setdefault(leaf_id, []).append(obj.object_id)
                seen = set()
                nid = leaf_id
                while nid is not None and nid not in seen:
                    seen.add(nid)
                    self._node_counts[nid] = self._node_counts.get(nid, 0) + 1
                    nid = self.nodes[nid].parent
        for leaf_id, oids in self._leaf_objects.items():
            node = self.nodes[leaf_id]
            leaf_vertices = set(node.vertices)
            per_border: dict[int, list[tuple[float, int]]] = {b: [] for b in node.borders}
            for oid in oids:
                obj = objects[oid]
                pid = obj.location.partition_id
                doors = [
                    dv
                    for dv in space.partitions[pid].door_ids
                    if dv in leaf_vertices
                ]
                for b in node.borders:
                    best = min(
                        (
                            node.table.distance(dv, b)
                            + space.point_to_door_distance(obj.location, dv)
                            for dv in doors
                        ),
                        default=INF,
                    )
                    if best < INF:
                        per_border[b].append((best, oid))
            for b in per_border:
                per_border[b].sort()
            self._access_lists[leaf_id] = per_border

    def knn(self, query, k: int) -> list[tuple[float, int]]:
        """Best-first kNN over the G-tree (assembly-based mindists)."""
        if self._objects is None:
            raise RuntimeError("attach_objects() must be called before kNN/range")
        return self._object_search(query, k=k, radius=None)

    def range_query(self, query, radius: float) -> list[tuple[float, int]]:
        if self._objects is None:
            raise RuntimeError("attach_objects() must be called before kNN/range")
        return self._object_search(query, k=None, radius=radius)

    def _object_search(self, query, k: int | None, radius: float | None):
        space = self.space
        offsets, qpid = endpoint_offsets(space, query)
        # Seed: climb from every source door, merging per node.
        node_dists: dict[int, dict[int, float]] = {}
        source_leaves = set()
        for di, off in offsets.items():
            climbs = self._climb(di, self.root_id)
            source_leaves.add(self.leaf_of_vertex[di])
            for nid, dists in climbs.items():
                tgt = node_dists.setdefault(nid, {})
                for b, d in dists.items():
                    v = off + d
                    if v < tgt.get(b, INF):
                        tgt[b] = v

        best_obj: dict[int, float] = {}

        def bound() -> float:
            if radius is not None:
                return radius
            if k is None or len(best_obj) < k:
                return INF
            return sorted(best_obj.values())[k - 1]

        heap: list[tuple[float, int]] = []
        if self._node_counts.get(self.root_id, 0) > 0:
            heapq.heappush(heap, (0.0, self.root_id))
        while heap:
            mind, nid = heapq.heappop(heap)
            if mind > bound():
                break
            node = self.nodes[nid]
            if node.is_leaf:
                self._scan_leaf(nid, node_dists, offsets, query, qpid, best_obj, bound())
            else:
                for cid in node.children:
                    if self._node_counts.get(cid, 0) == 0:
                        continue
                    cdists = node_dists.get(cid)
                    if cdists is None:
                        source = dict(node_dists.get(nid, {}))
                        for gcid in node.children:
                            if gcid in node_dists:
                                for b, d in node_dists[gcid].items():
                                    if d < source.get(b, INF):
                                        source[b] = d
                        table = node.table
                        cdists = {}
                        for b in self.nodes[cid].borders:
                            best = INF
                            for sb, sd in source.items():
                                if sd >= best:
                                    continue
                                d = sd + table.distance(sb, b)
                                if d < best:
                                    best = d
                            cdists[b] = best
                        node_dists[cid] = cdists
                    child_min = 0.0 if self._contains_source(cid, source_leaves) else min(
                        cdists.values(), default=INF
                    )
                    if child_min <= bound():
                        heapq.heappush(heap, (child_min, cid))
        ranked = sorted((d, oid) for oid, d in best_obj.items())
        if radius is not None:
            return [(d, oid) for d, oid in ranked if d <= radius]
        return ranked[: k or 0]

    def _contains_source(self, nid: int, source_leaves: set[int]) -> bool:
        for leaf in source_leaves:
            if nid in self._chains[leaf]:
                return True
        return False

    def _scan_leaf(self, leaf_id, node_dists, offsets, query, qpid, best_obj, bound) -> None:
        space = self.space
        node = self.nodes[leaf_id]
        oids = self._leaf_objects.get(leaf_id, [])
        leaf_vertices = set(node.vertices)
        local_doors = [d for d in offsets if d in leaf_vertices]
        if local_doors:
            # leaf contains a source door: exact global expansion
            targets: set[int] = set()
            parts = {self._objects[oid].location.partition_id for oid in oids}
            for pid in parts:
                targets.update(space.partitions[pid].door_ids)
            dist, _ = dijkstra(self.graph, dict(offsets), targets=targets)
            for oid in oids:
                obj = self._objects[oid]
                pid = obj.location.partition_id
                best = min(
                    dist.get(dv, INF) + space.point_to_door_distance(obj.location, dv)
                    for dv in space.partitions[pid].door_ids
                )
                if qpid is not None and pid == qpid:
                    best = min(best, space.direct_point_distance(query, obj.location))
                if best < best_obj.get(oid, INF):
                    best_obj[oid] = best
            return
        dq = node_dists.get(leaf_id, {})
        for b, base in dq.items():
            for dobj, oid in self._access_lists[leaf_id].get(b, []):
                total = base + dobj
                if total > bound:
                    break
                if total < best_obj.get(oid, INF):
                    best_obj[oid] = total

    # ------------------------------------------------------------------
    # Serialized state (snapshots, :mod:`repro.storage`)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe serialized state: hierarchy, border tables, vertex
        maps and the D2D graph. Attached objects are not serialized —
        the snapshot layer stores the :class:`ObjectSet` separately and
        re-attaches it on load (:meth:`attach_objects` is cheap next to
        the border-matrix Dijkstras captured here)."""
        return {
            "fanout": self.fanout,
            "max_leaf_size": self.max_leaf_size,
            "build_seconds": self.build_seconds,
            "root": self.root_id,
            "leaf_of_vertex": list(self.leaf_of_vertex),
            "nodes": [
                {
                    "parent": n.parent,
                    "children": list(n.children),
                    "vertices": list(n.vertices),
                    "borders": list(n.borders),
                    "depth": n.depth,
                    "table": n.table.to_state() if n.table is not None else None,
                }
                for n in self.nodes
            ],
            "d2d": self.graph.to_state(),
        }

    @classmethod
    def from_state(cls, space: IndoorSpace, state: dict) -> "GTree":
        tree = object.__new__(cls)
        tree.space = space
        tree.graph = Graph.from_state(state["d2d"])
        tree.fanout = state["fanout"]
        tree.max_leaf_size = state["max_leaf_size"]
        tree.build_seconds = state.get("build_seconds", 0.0)
        tree.root_id = state["root"]
        tree.leaf_of_vertex = list(state["leaf_of_vertex"])
        tree.nodes = [
            GTreeNode(
                nid=i,
                parent=ns["parent"],
                children=list(ns["children"]),
                vertices=list(ns["vertices"]),
                borders=list(ns["borders"]),
                depth=ns["depth"],
                table=(
                    DistanceTable.from_state(ns["table"])
                    if ns["table"] is not None
                    else None
                ),
            )
            for i, ns in enumerate(state["nodes"])
        ]
        tree._chains = tree._build_chains()
        tree._objects = None
        tree._leaf_objects = {}
        tree._access_lists = {}
        tree._node_counts = {}
        return tree

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        total = 0
        for node in self.nodes:
            if node.table is not None:
                total += node.table.memory_bytes()
            total += 16 * (len(node.borders) + len(node.children) + len(node.vertices))
        return total

    def stats(self) -> dict:
        leaves = [n for n in self.nodes if n.is_leaf]
        return {
            "nodes": len(self.nodes),
            "leaves": len(leaves),
            "avg_borders": sum(len(n.borders) for n in self.nodes) / len(self.nodes),
            "max_borders": max(len(n.borders) for n in self.nodes),
        }
