"""Plain-Dijkstra reference implementation.

Unoptimized but obviously correct: every query runs a fresh Dijkstra on
the D2D graph with virtual sources. The test suite uses it as ground
truth for all indexes; it is not a paper competitor.
"""

from __future__ import annotations

from ..graph.adjacency import Graph
from ..graph.dijkstra import dijkstra
from ..model.d2d import build_d2d_graph
from ..model.indoor_space import IndoorSpace
from ..model.objects import ObjectSet
from .base import direct_distance, endpoint_offsets

INF = float("inf")


class DijkstraOracle:
    """Ground-truth distances, paths, kNN and range by exhaustive search."""

    index_name = "Dijkstra"

    def __init__(self, space: IndoorSpace, d2d: Graph | None = None) -> None:
        self.space = space
        self.d2d = d2d if d2d is not None else build_d2d_graph(space)

    # ------------------------------------------------------------------
    def shortest_distance(self, source, target) -> float:
        src, _ = endpoint_offsets(self.space, source)
        tgt, _ = endpoint_offsets(self.space, target)
        best = direct_distance(self.space, source, target)
        dist, _ = dijkstra(self.d2d, dict(src), targets=set(tgt))
        for dv, off in tgt.items():
            d = dist.get(dv, INF) + off
            if d < best:
                best = d
        return best

    def shortest_path_doors(self, source, target) -> tuple[float, list[int]]:
        """Distance plus the door sequence of one shortest path."""
        src, _ = endpoint_offsets(self.space, source)
        tgt, _ = endpoint_offsets(self.space, target)
        direct = direct_distance(self.space, source, target)
        dist, parent = dijkstra(self.d2d, dict(src), targets=set(tgt))
        best = direct
        best_door = None
        for dv, off in tgt.items():
            d = dist.get(dv, INF) + off
            if d < best:
                best = d
                best_door = dv
        if best_door is None:
            return best, []
        doors = [best_door]
        cur = best_door
        while parent.get(cur, cur) != cur:
            cur = parent[cur]
            doors.append(cur)
        doors.reverse()
        return best, doors

    # ------------------------------------------------------------------
    def object_distances(self, query, objects: ObjectSet) -> dict[int, float]:
        """Exact distance from the query to every live object, keyed by
        object id (ids can be sparse after deletions)."""
        space = self.space
        src, qpid = endpoint_offsets(space, query)
        targets: set[int] = set()
        for obj in objects:
            targets.update(space.partitions[obj.location.partition_id].door_ids)
        dist, _ = dijkstra(self.d2d, dict(src), targets=targets)
        out: dict[int, float] = {}
        for obj in objects:
            pid = obj.location.partition_id
            best = min(
                dist.get(dv, INF) + space.point_to_door_distance(obj.location, dv)
                for dv in space.partitions[pid].door_ids
            )
            if qpid is not None and pid == qpid:
                best = min(best, space.direct_point_distance(query, obj.location))
            out[obj.object_id] = best
        return out

    def knn(self, query, objects: ObjectSet, k: int) -> list[tuple[float, int]]:
        dists = self.object_distances(query, objects)
        ranked = sorted((d, oid) for oid, d in dists.items())
        return ranked[:k]

    def range_query(self, query, objects: ObjectSet, radius: float) -> list[tuple[float, int]]:
        dists = self.object_distances(query, objects)
        return sorted((d, oid) for oid, d in dists.items() if d <= radius)

    def memory_bytes(self) -> int:
        return self.d2d.memory_bytes()

    # ------------------------------------------------------------------
    # Serialized state (snapshots, :mod:`repro.storage`)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        return {"d2d": self.d2d.to_state()}

    @classmethod
    def from_state(cls, space: IndoorSpace, state: dict) -> "DijkstraOracle":
        return cls(space, Graph.from_state(state["d2d"]))
