"""DistAw — the distance-aware model [Lu, Cao, Jensen, ICDE 2012].

The paper's state-of-the-art indoor competitor: queries run Dijkstra-like
expansions over the extended (door-level) connectivity graph. Shortest
distance/path expand from the source's doors until the target's doors
settle; kNN/range expand until enough object vertices settle, using a
D2D graph augmented with one virtual vertex per object.

``DistAwPlusPlus`` is the paper's ``DistAw++`` variant that additionally
exploits a :class:`~repro.baselines.distmx.DistanceMatrix` for kNN and
range queries (at O(D²) extra space).
"""

from __future__ import annotations

import heapq

from ..graph.adjacency import Graph
from ..graph.dijkstra import dijkstra
from ..model.d2d import build_d2d_graph
from ..model.indoor_space import IndoorSpace
from ..model.objects import ObjectSet
from .base import direct_distance, endpoint_offsets
from .distmx import DistanceMatrix, DistMxObjects

INF = float("inf")


class DistAware:
    """Graph-expansion baseline over the D2D graph."""

    index_name = "DistAw"

    def __init__(self, space: IndoorSpace, d2d: Graph | None = None) -> None:
        self.space = space
        self.d2d = d2d if d2d is not None else build_d2d_graph(space)
        self._objects: ObjectSet | None = None
        self._augmented: Graph | None = None
        self._object_vertex: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Shortest distance / path
    # ------------------------------------------------------------------
    def shortest_distance(self, source, target) -> float:
        src, _ = endpoint_offsets(self.space, source)
        tgt, _ = endpoint_offsets(self.space, target)
        best = direct_distance(self.space, source, target)
        dist, _ = dijkstra(self.d2d, dict(src), targets=set(tgt))
        for dv, off in tgt.items():
            d = dist.get(dv, INF) + off
            if d < best:
                best = d
        return best

    def shortest_path(self, source, target) -> tuple[float, list[int]]:
        src, _ = endpoint_offsets(self.space, source)
        tgt, _ = endpoint_offsets(self.space, target)
        direct = direct_distance(self.space, source, target)
        dist, parent = dijkstra(self.d2d, dict(src), targets=set(tgt))
        best = direct
        best_door = None
        for dv, off in tgt.items():
            d = dist.get(dv, INF) + off
            if d < best:
                best = d
                best_door = dv
        if best_door is None:
            return best, []
        doors = [best_door]
        cur = best_door
        while parent.get(cur, cur) != cur:
            cur = parent[cur]
            doors.append(cur)
        doors.reverse()
        return best, doors

    # ------------------------------------------------------------------
    # Object queries: augmented-graph expansion
    # ------------------------------------------------------------------
    def attach_objects(self, objects: ObjectSet) -> None:
        """Build the object-augmented D2D graph.

        Each object becomes a virtual vertex connected to the doors of
        its partition; a kNN is then "expand until k object vertices
        settle", which is exactly the distance-aware model's expansion.
        """
        objects.validate(self.space)
        self._objects = objects
        num_doors = self.space.num_doors
        # capacity, not len: ids can be sparse after deletions and the
        # virtual vertex id space must cover every live id
        g = Graph(num_doors + objects.capacity)
        for u in range(num_doors):
            for v, w in self.d2d.neighbors(u):
                if u < v:
                    g.add_edge(u, v, w)
        self._object_vertex = {}
        for obj in objects:
            vid = num_doors + obj.object_id
            self._object_vertex[obj.object_id] = vid
            pid = obj.location.partition_id
            for dv in self.space.partitions[pid].door_ids:
                g.add_edge(
                    vid, dv, self.space.point_to_door_distance(obj.location, dv)
                )
        self._augmented = g

    def _expand_objects(self, query, stop_k: int | None, cutoff: float | None):
        """Expand from the query until ``stop_k`` objects settle (or the
        ``cutoff`` radius is exhausted). Yields (distance, object_id)."""
        if self._augmented is None or self._objects is None:
            raise RuntimeError("attach_objects() must be called before kNN/range")
        offsets, qpid = endpoint_offsets(self.space, query)
        num_doors = self.space.num_doors

        dist: dict[int, float] = {}
        best: dict[int, float] = {}
        pq: list[tuple[float, int]] = []
        for s, off in offsets.items():
            best[s] = off
            heapq.heappush(pq, (off, s))
        # Same-partition objects can be reached directly without doors.
        direct_hits: dict[int, float] = {}
        if qpid is not None:
            for obj in self._objects:
                if obj.location.partition_id == qpid:
                    direct_hits[self._object_vertex[obj.object_id]] = (
                        self.space.direct_point_distance(query, obj.location)
                    )
        for vid, d in direct_hits.items():
            if d < best.get(vid, INF):
                best[vid] = d
                heapq.heappush(pq, (d, vid))

        found = 0
        while pq:
            d, u = heapq.heappop(pq)
            if u in dist:
                continue
            if cutoff is not None and d > cutoff:
                break
            dist[u] = d
            if u >= num_doors:
                yield d, u - num_doors
                found += 1
                if stop_k is not None and found >= stop_k:
                    break
                continue  # object vertices are sinks
            for v, w in self._augmented.neighbors(u):
                if v in dist:
                    continue
                nd = d + w
                if nd < best.get(v, INF):
                    best[v] = nd
                    heapq.heappush(pq, (nd, v))

    def knn(self, query, k: int) -> list[tuple[float, int]]:
        return list(self._expand_objects(query, stop_k=k, cutoff=None))

    def range_query(self, query, radius: float) -> list[tuple[float, int]]:
        return list(self._expand_objects(query, stop_k=None, cutoff=radius))

    def memory_bytes(self) -> int:
        total = self.d2d.memory_bytes()
        if self._augmented is not None:
            total += self._augmented.memory_bytes() - self.d2d.memory_bytes()
        return total

    # ------------------------------------------------------------------
    # Serialized state (snapshots, :mod:`repro.storage`)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """DistAw precomputes nothing beyond the D2D graph; the
        object-augmented graph is rebuilt by :meth:`attach_objects`."""
        return {"d2d": self.d2d.to_state()}

    @classmethod
    def from_state(cls, space: IndoorSpace, state: dict) -> "DistAware":
        return cls(space, Graph.from_state(state["d2d"]))


class DistAwPlusPlus(DistAware):
    """DistAw with a distance matrix for object queries (paper's DistAw++)."""

    index_name = "DistAw++"

    def __init__(
        self,
        space: IndoorSpace,
        d2d: Graph | None = None,
        matrix: DistanceMatrix | None = None,
    ) -> None:
        super().__init__(space, d2d)
        self.matrix = matrix if matrix is not None else DistanceMatrix(space, self.d2d)
        self._mx_objects: DistMxObjects | None = None

    @property
    def build_seconds(self) -> float:
        """Construction cost — carried by the nested distance matrix."""
        return self.matrix.build_seconds

    @build_seconds.setter
    def build_seconds(self, value: float) -> None:
        self.matrix.build_seconds = value

    def attach_objects(self, objects: ObjectSet) -> None:
        super().attach_objects(objects)
        self._mx_objects = DistMxObjects(self.matrix, objects)

    def knn(self, query, k: int) -> list[tuple[float, int]]:
        if self._mx_objects is None:
            raise RuntimeError("attach_objects() must be called before kNN/range")
        return self._mx_objects.knn(query, k)

    def range_query(self, query, radius: float) -> list[tuple[float, int]]:
        if self._mx_objects is None:
            raise RuntimeError("attach_objects() must be called before kNN/range")
        return self._mx_objects.range_query(query, radius)

    def memory_bytes(self) -> int:
        return super().memory_bytes() + self.matrix.memory_bytes()

    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        matrix_state = self.matrix.to_state()
        # The live object shares one D2D graph with its matrix — drop
        # the nested copy and restore the shared instance on load.
        matrix_state.pop("d2d", None)
        state = {"d2d": self.d2d.to_state(), "matrix": matrix_state}
        # The nested matrix's wall-clock build time is run metadata:
        # hoist it to the top level (where the snapshot layer moves it
        # into the unhashed header) so the hashed payload stays
        # byte-reproducible across runs.
        build_seconds = matrix_state.pop("build_seconds", None)
        if build_seconds is not None:
            state["build_seconds"] = build_seconds
        return state

    @classmethod
    def from_state(cls, space: IndoorSpace, state: dict) -> "DistAwPlusPlus":
        d2d = Graph.from_state(state["d2d"])
        index = cls(
            space,
            d2d,
            matrix=DistanceMatrix.from_state(space, state["matrix"], d2d=d2d),
        )
        index.matrix.build_seconds = state.get("build_seconds", 0.0)
        return index
