"""Shared plumbing for the baseline indexes.

All baselines answer the same four queries as the trees (shortest
distance, shortest path, kNN, range) over the same endpoint types
(:class:`IndoorPoint` or door id). This module normalizes endpoints into
virtual-source door offsets and defines the informal interface the
benchmark harness relies on.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..exceptions import QueryError
from ..model.entities import IndoorPoint, PartitionCategory
from ..model.indoor_space import IndoorSpace


def endpoint_offsets(space: IndoorSpace, raw) -> tuple[dict[int, float], int | None]:
    """Normalize a query endpoint into ``(door offsets, partition id)``.

    * a door id becomes ``{door: 0.0}`` with its first partition,
    * an :class:`IndoorPoint` becomes the point-to-door distances of its
      partition's doors.
    """
    if isinstance(raw, IndoorPoint):
        space.validate_point(raw)
        offsets = {
            du: space.point_to_door_distance(raw, du)
            for du in space.partitions[raw.partition_id].door_ids
        }
        return offsets, raw.partition_id
    if isinstance(raw, int):
        if not 0 <= raw < space.num_doors:
            raise QueryError(f"unknown door {raw}")
        return {raw: 0.0}, None
    raise QueryError(
        f"query endpoints must be IndoorPoint or door id, got {type(raw).__name__}"
    )


def direct_distance(space: IndoorSpace, a, b) -> float:
    """Direct intra-partition distance when both endpoints are points of
    the same partition, else +inf."""
    if (
        isinstance(a, IndoorPoint)
        and isinstance(b, IndoorPoint)
        and a.partition_id == b.partition_id
    ):
        return space.direct_point_distance(a, b)
    return float("inf")


def candidate_doors(
    space: IndoorSpace,
    partition_id: int | None,
    doors: list[int],
    other_partition: int | None,
) -> list[int]:
    """The paper's DistMx optimization (§4.3.1): drop doors that lead to
    no-through partitions.

    A door whose other side is a no-through partition can never be on a
    shortest path — unless that partition is the other endpoint's. The
    door set is never reduced to empty (a no-through source partition
    keeps its single door).
    """
    if partition_id is None:
        return doors
    out = []
    for d in doors:
        owners = space.door_partitions[d]
        if len(owners) == 2:
            other = owners[0] if owners[1] == partition_id else owners[1]
            if (
                other != other_partition
                and space.category(other) is PartitionCategory.NO_THROUGH
            ):
                continue
        out.append(d)
    return out or doors


@runtime_checkable
class SpatialIndex(Protocol):
    """Informal interface every index in the library provides."""

    index_name: str

    def shortest_distance(self, source, target) -> float: ...

    def memory_bytes(self) -> int: ...
