"""ROAD baseline [Lee, Lee, Zheng, Tian, TKDE 2012].

ROAD organizes the graph as a hierarchy of *Rnets* (regions) with
pre-computed *shortcuts* between each Rnet's border vertices. A query is
a Dijkstra expansion on the route overlay: whenever the frontier reaches
a border of the largest Rnet that contains neither endpoint (nor, for
object queries, any object — the association directory), the Rnet's
interior is bypassed through its shortcuts.

Shortcut values are exact within-Rnet distances, and bypassed interiors
can always be re-entered through other borders, so distances are exact;
what the hierarchy buys is fewer expanded vertices.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from ..graph.adjacency import Graph
from ..graph.dijkstra import dijkstra
from ..graph.partitioner import bisect
from ..model.d2d import build_d2d_graph
from ..model.indoor_space import IndoorSpace
from ..model.objects import ObjectSet
from .base import direct_distance, endpoint_offsets

INF = float("inf")

DEFAULT_LEVELS = 3


@dataclass(slots=True)
class Rnet:
    rid: int
    level: int
    parent: int | None
    children: list[int] = field(default_factory=list)
    vertices: set[int] = field(default_factory=set)
    borders: list[int] = field(default_factory=list)
    #: border -> [(other border, within-Rnet distance)]
    shortcuts: dict[int, list[tuple[int, float]]] = field(default_factory=dict)


class Road:
    """Route overlay + association directory over the D2D graph."""

    index_name = "ROAD"

    def __init__(
        self,
        space: IndoorSpace,
        d2d: Graph | None = None,
        levels: int = DEFAULT_LEVELS,
    ) -> None:
        self.space = space
        self.graph = d2d if d2d is not None else build_d2d_graph(space)
        self.levels = levels
        start = time.perf_counter()
        self.rnets: list[Rnet] = []
        #: vertex -> Rnet chain from coarsest (level 1) to finest
        self.chain_of_vertex: list[list[int]] = [
            [] for _ in range(self.graph.num_vertices)
        ]
        self._build()
        self.build_seconds = time.perf_counter() - start
        self._objects: ObjectSet | None = None
        self._object_vertex: dict[int, int] = {}
        self._augmented: Graph | None = None
        self._rnet_object_counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _build(self) -> None:
        frontier = [(None, list(range(self.graph.num_vertices)), 1)]
        while frontier:
            parent, vertices, level = frontier.pop()
            if level > self.levels or len(vertices) <= 4:
                continue
            part_a, part_b = bisect(self.graph, vertices)
            for part in (part_a, part_b):
                if not part:
                    continue
                rid = len(self.rnets)
                rnet = Rnet(rid=rid, level=level, parent=parent, vertices=set(part))
                self.rnets.append(rnet)
                if parent is not None:
                    self.rnets[parent].children.append(rid)
                for v in part:
                    self.chain_of_vertex[v].append(rid)
                frontier.append((rid, part, level + 1))

        # Borders and shortcuts per Rnet.
        for rnet in self.rnets:
            vs = rnet.vertices
            rnet.borders = [
                v
                for v in sorted(vs)
                if any(u not in vs for u, _ in self.graph.neighbors(v))
            ]
            sub, mapping = self.graph.subgraph(sorted(vs))
            inverse = {i: v for v, i in mapping.items()}
            border_set = set(rnet.borders)
            for b in rnet.borders:
                dist, _ = dijkstra(sub, mapping[b])
                edges = []
                for i, d in dist.items():
                    v = inverse[i]
                    if v != b and v in border_set:
                        edges.append((v, d))
                rnet.shortcuts[b] = edges

    # ------------------------------------------------------------------
    def _bypassable_rnet(self, vertex: int, blocked: set[int]) -> Rnet | None:
        """The largest (coarsest) Rnet having ``vertex`` as border and
        containing no blocked vertex."""
        for rid in self.chain_of_vertex[vertex]:
            rnet = self.rnets[rid]
            if rnet.vertices & blocked:
                continue
            if vertex in rnet.shortcuts:
                return rnet
        return None

    def _expand(
        self,
        sources: dict[int, float],
        blocked: set[int],
        targets: set[int] | None,
        cutoff: float | None = None,
        extra_edges: dict[int, list[tuple[int, float]]] | None = None,
    ) -> tuple[dict[int, float], dict[int, int]]:
        """Route-overlay Dijkstra. ``blocked`` vertices pin their Rnets
        open (endpoints / objects); ``extra_edges`` adds object vertices."""
        dist: dict[int, float] = {}
        parent: dict[int, int] = {}
        best: dict[int, float] = {}
        pq: list[tuple[float, int, int]] = []
        for s, off in sources.items():
            if off < best.get(s, INF):
                best[s] = off
                heapq.heappush(pq, (off, s, s))
        remaining = set(targets) if targets is not None else None
        num_vertices = self.graph.num_vertices
        while pq:
            d, u, via = heapq.heappop(pq)
            if u in dist:
                continue
            if cutoff is not None and d > cutoff:
                break
            dist[u] = d
            parent[u] = via
            if remaining is not None:
                remaining.discard(u)
                if not remaining:
                    break
            edges: list[tuple[int, float]] = []
            if u < num_vertices:
                rnet = self._bypassable_rnet(u, blocked)
                if rnet is not None:
                    edges.extend(rnet.shortcuts[u])
                    for v, w in self.graph.neighbors(u):
                        if v not in rnet.vertices:
                            edges.append((v, w))
                else:
                    edges.extend(self.graph.neighbors(u))
                if extra_edges is not None:
                    edges.extend(extra_edges.get(u, ()))
            for v, w in edges:
                if v in dist:
                    continue
                nd = d + w
                if nd < best.get(v, INF):
                    best[v] = nd
                    heapq.heappush(pq, (nd, v, u))
        return dist, parent

    # ------------------------------------------------------------------
    def shortest_distance(self, source, target) -> float:
        s_off, _ = endpoint_offsets(self.space, source)
        t_off, _ = endpoint_offsets(self.space, target)
        blocked = set(s_off) | set(t_off)
        dist, _ = self._expand(dict(s_off), blocked, targets=set(t_off))
        best = direct_distance(self.space, source, target)
        for dv, off in t_off.items():
            d = dist.get(dv, INF) + off
            if d < best:
                best = d
        return best

    def shortest_path(self, source, target) -> tuple[float, list[int]]:
        """Distance and border-level door sequence (shortcut hops are not
        unfolded; the distance is exact)."""
        s_off, _ = endpoint_offsets(self.space, source)
        t_off, _ = endpoint_offsets(self.space, target)
        blocked = set(s_off) | set(t_off)
        dist, parent = self._expand(dict(s_off), blocked, targets=set(t_off))
        best = direct_distance(self.space, source, target)
        best_door = None
        for dv, off in t_off.items():
            d = dist.get(dv, INF) + off
            if d < best:
                best = d
                best_door = dv
        if best_door is None:
            return best, []
        doors = [best_door]
        cur = best_door
        while parent.get(cur, cur) != cur:
            cur = parent[cur]
            doors.append(cur)
        doors.reverse()
        return best, doors

    # ------------------------------------------------------------------
    def attach_objects(self, objects: ObjectSet) -> None:
        """Populate the association directory: per-Rnet object presence
        plus virtual object vertices for the expansion."""
        objects.validate(self.space)
        self._objects = objects
        self._object_edges: dict[int, list[tuple[int, float]]] = {}
        self._object_doors: set[int] = set()
        num_doors = self.space.num_doors
        self._object_vertex = {}
        for obj in objects:
            vid = num_doors + obj.object_id
            self._object_vertex[obj.object_id] = vid
            pid = obj.location.partition_id
            for dv in self.space.partitions[pid].door_ids:
                self._object_edges.setdefault(dv, []).append(
                    (vid, self.space.point_to_door_distance(obj.location, dv))
                )
                self._object_doors.add(dv)

    def _object_expand(self, query, stop_k: int | None, cutoff: float | None):
        if self._objects is None:
            raise RuntimeError("attach_objects() must be called before kNN/range")
        offsets, qpid = endpoint_offsets(self.space, query)
        blocked = set(offsets) | self._object_doors
        num_doors = self.space.num_doors

        dist: dict[int, float] = {}
        best: dict[int, float] = {}
        pq: list[tuple[float, int]] = []
        for s, off in offsets.items():
            best[s] = off
            heapq.heappush(pq, (off, s))
        if qpid is not None:
            for obj in self._objects:
                if obj.location.partition_id == qpid:
                    vid = self._object_vertex[obj.object_id]
                    d = self.space.direct_point_distance(query, obj.location)
                    if d < best.get(vid, INF):
                        best[vid] = d
                        heapq.heappush(pq, (d, vid))
        found = 0
        results = []
        while pq:
            d, u = heapq.heappop(pq)
            if u in dist:
                continue
            if cutoff is not None and d > cutoff:
                break
            dist[u] = d
            if u >= num_doors:
                results.append((d, u - num_doors))
                found += 1
                if stop_k is not None and found >= stop_k:
                    break
                continue
            rnet = self._bypassable_rnet(u, blocked)
            if rnet is not None:
                edges = list(rnet.shortcuts[u])
                edges.extend(
                    (v, w) for v, w in self.graph.neighbors(u) if v not in rnet.vertices
                )
            else:
                edges = list(self.graph.neighbors(u))
            edges.extend(self._object_edges.get(u, ()))
            for v, w in edges:
                if v in dist:
                    continue
                nd = d + w
                if nd < best.get(v, INF):
                    best[v] = nd
                    heapq.heappush(pq, (nd, v))
        return results

    def knn(self, query, k: int) -> list[tuple[float, int]]:
        return self._object_expand(query, stop_k=k, cutoff=None)

    def range_query(self, query, radius: float) -> list[tuple[float, int]]:
        return self._object_expand(query, stop_k=None, cutoff=radius)

    # ------------------------------------------------------------------
    # Serialized state (snapshots, :mod:`repro.storage`)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe serialized state: the Rnet hierarchy with its
        shortcut lists, the vertex chains and the D2D graph. The
        association directory (attached objects) is rebuilt by the
        snapshot layer via :meth:`attach_objects`."""
        return {
            "levels": self.levels,
            "build_seconds": self.build_seconds,
            "rnets": [
                {
                    "level": r.level,
                    "parent": r.parent,
                    "children": list(r.children),
                    "vertices": sorted(r.vertices),
                    "borders": list(r.borders),
                    "shortcuts": [
                        [b, [[v, d] for v, d in edges]]
                        for b, edges in sorted(r.shortcuts.items())
                    ],
                }
                for r in self.rnets
            ],
            "chain_of_vertex": [list(c) for c in self.chain_of_vertex],
            "d2d": self.graph.to_state(),
        }

    @classmethod
    def from_state(cls, space: IndoorSpace, state: dict) -> "Road":
        road = object.__new__(cls)
        road.space = space
        road.graph = Graph.from_state(state["d2d"])
        road.levels = state["levels"]
        road.build_seconds = state.get("build_seconds", 0.0)
        road.rnets = [
            Rnet(
                rid=i,
                level=rs["level"],
                parent=rs["parent"],
                children=list(rs["children"]),
                vertices=set(rs["vertices"]),
                borders=list(rs["borders"]),
                shortcuts={
                    b: [(v, d) for v, d in edges] for b, edges in rs["shortcuts"]
                },
            )
            for i, rs in enumerate(state["rnets"])
        ]
        road.chain_of_vertex = [list(c) for c in state["chain_of_vertex"]]
        road._objects = None
        road._object_vertex = {}
        road._augmented = None
        road._rnet_object_counts = {}
        return road

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        total = 0
        for rnet in self.rnets:
            total += 16 * len(rnet.vertices)
            total += sum(24 * len(v) for v in rnet.shortcuts.values())
        return total

    def stats(self) -> dict:
        return {
            "rnets": len(self.rnets),
            "levels": self.levels,
            "total_shortcuts": sum(
                len(v) for r in self.rnets for v in r.shortcuts.values()
            ),
        }
