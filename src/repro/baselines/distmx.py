"""DistMx — the distance matrix baseline (paper §1.2.2, §4).

The distance matrix materializes the shortest distance between **all
pairs of doors** (plus a first-hop matrix for path recovery). Queries
are near-optimal — O(ρ²) lookups — but construction requires one full
Dijkstra per door and storage is O(D²), which is what made it impossible
to build beyond Men-2 in the paper (14 hours for 2,738 doors).

``optimized=True`` applies the paper's §4.3.1 improvement: doors leading
to no-through partitions are skipped when enumerating candidate door
pairs (``DistMx`` vs ``DistMx--`` in Fig 9(a)).
"""

from __future__ import annotations

import time

import numpy as np

from ..graph.adjacency import Graph
from ..graph.dijkstra import dijkstra_first_hops
from ..model.d2d import build_d2d_graph
from ..model.entities import IndoorPoint, PartitionCategory
from ..model.indoor_space import IndoorSpace
from ..model.objects import ObjectSet
from .base import candidate_doors, direct_distance, endpoint_offsets

INF = float("inf")


class DistanceMatrix:
    """All-pairs door distance matrix with first-hop path recovery."""

    index_name = "DistMx"

    def __init__(self, space: IndoorSpace, d2d: Graph | None = None) -> None:
        self.space = space
        self.d2d = d2d if d2d is not None else build_d2d_graph(space)
        start = time.perf_counter()
        n = space.num_doors
        self.dist = np.full((n, n), np.inf, dtype=np.float64)
        self.first_hop = np.full((n, n), -1, dtype=np.int32)
        for d in range(n):
            dist, hops = dijkstra_first_hops(self.d2d, d)
            row_d = self.dist[d]
            row_h = self.first_hop[d]
            for v, dv in dist.items():
                row_d[v] = dv
            for v, h in hops.items():
                row_h[v] = h
            self.dist[d, d] = 0.0
        self.build_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    def door_distance(self, door_a: int, door_b: int) -> float:
        """O(1) door-to-door distance."""
        return float(self.dist[door_a, door_b])

    def door_path(self, door_a: int, door_b: int) -> list[int]:
        """Door sequence of a shortest path via first-hop chaining."""
        path = [door_a]
        cur = door_a
        while cur != door_b:
            cur = int(self.first_hop[cur, door_b])
            if cur < 0:
                raise AssertionError(f"no path recorded {door_a} -> {door_b}")
            path.append(cur)
        return path

    # ------------------------------------------------------------------
    def _candidates(self, raw, other_partition: int | None, optimized: bool):
        offsets, pid = endpoint_offsets(self.space, raw)
        doors = candidate_doors(
            self.space, pid, list(offsets), other_partition
        ) if optimized else list(offsets)
        return offsets, doors, pid

    def distance_query(self, source, target, optimized: bool = True) -> tuple[float, int]:
        """Shortest distance plus the number of door pairs enumerated
        (the Fig 9(a) metric). ``optimized=False`` is the paper's
        ``DistMx--``."""
        s_off, s_pid = endpoint_offsets(self.space, source)
        t_off, t_pid = endpoint_offsets(self.space, target)
        s_doors = (
            candidate_doors(self.space, s_pid, list(s_off), t_pid)
            if optimized
            else list(s_off)
        )
        t_doors = (
            candidate_doors(self.space, t_pid, list(t_off), s_pid)
            if optimized
            else list(t_off)
        )
        best = direct_distance(self.space, source, target)
        for di in s_doors:
            base = s_off[di]
            row = self.dist[di]
            for dj in t_doors:
                d = base + row[dj] + t_off[dj]
                if d < best:
                    best = d
        return best, len(s_doors) * len(t_doors)

    def shortest_distance(self, source, target) -> float:
        return self.distance_query(source, target, optimized=True)[0]

    def shortest_path(self, source, target, optimized: bool = True) -> tuple[float, list[int]]:
        """Distance plus full door sequence."""
        s_off, s_pid = endpoint_offsets(self.space, source)
        t_off, t_pid = endpoint_offsets(self.space, target)
        s_doors = (
            candidate_doors(self.space, s_pid, list(s_off), t_pid)
            if optimized
            else list(s_off)
        )
        t_doors = (
            candidate_doors(self.space, t_pid, list(t_off), s_pid)
            if optimized
            else list(t_off)
        )
        best = direct_distance(self.space, source, target)
        pair = None
        for di in s_doors:
            base = s_off[di]
            row = self.dist[di]
            for dj in t_doors:
                d = base + row[dj] + t_off[dj]
                if d < best:
                    best = d
                    pair = (di, dj)
        if pair is None:
            return best, []
        return best, self.door_path(*pair)

    def memory_bytes(self) -> int:
        return int(self.dist.nbytes + self.first_hop.nbytes)

    # ------------------------------------------------------------------
    # Serialized state (snapshots, :mod:`repro.storage`)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe serialized state: both matrices plus the D2D graph.

        This is the index whose construction the paper could not finish
        beyond Men-2 (one Dijkstra per door, 14 hours) — persisting it
        is the whole point of the snapshot subsystem. The O(D²) arrays
        are base64-packed little-endian (row-major), bit-exact and
        byte-deterministic.
        """
        from ..model.packing import pack_raw

        return {
            "build_seconds": self.build_seconds,
            "n": self.space.num_doors,
            "dist": pack_raw(np.ascontiguousarray(self.dist, dtype="<f8").tobytes()),
            "first_hop": pack_raw(
                np.ascontiguousarray(self.first_hop, dtype="<i4").tobytes()
            ),
            "d2d": self.d2d.to_state(),
        }

    @classmethod
    def from_state(
        cls, space: IndoorSpace, state: dict, d2d: Graph | None = None
    ) -> "DistanceMatrix":
        """Restore without running a single Dijkstra.

        ``d2d`` lets a wrapping index (DistAw++) share its
        already-restored graph instead of decoding a second copy.
        """
        from ..model.packing import unpack_raw

        n = state["n"]
        mx = object.__new__(cls)
        mx.space = space
        mx.d2d = d2d if d2d is not None else Graph.from_state(state["d2d"])
        # asarray: no copy when the packed little-endian layout already
        # is the native one — which keeps mmap-loaded matrices zero-copy
        # views of the snapshot's binary section (read-only is fine,
        # queries never write into them)
        mx.dist = np.asarray(
            np.frombuffer(unpack_raw(state["dist"]), dtype="<f8").reshape(n, n),
            dtype=np.float64,
        )
        mx.first_hop = np.asarray(
            np.frombuffer(unpack_raw(state["first_hop"]), dtype="<i4").reshape(n, n),
            dtype=np.int32,
        )
        mx.build_seconds = state.get("build_seconds", 0.0)
        return mx


class DistMxObjects:
    """Object querying on top of DistMx (used by DistAw++, §4).

    Computes dist(q, o) for every object via matrix lookups with the
    no-through optimization, then ranks — exactly how the paper uses the
    matrix for kNN/range ("DistAw++ ... exploits DistMx").
    """

    def __init__(self, matrix: DistanceMatrix, objects: ObjectSet) -> None:
        objects.validate(matrix.space)
        self.matrix = matrix
        self.objects = objects
        space = matrix.space
        #: partitions that contain at least one object — their doors must
        #: never be pruned from the query side, even when no-through.
        self.object_partitions = objects.partitions()
        #: per object: (door, exit offset) pairs — objects live in small
        #: partitions, so no pruning is applied on the object side.
        self._obj_doors: list[list[tuple[int, float]]] = [
            [
                (dv, space.point_to_door_distance(obj.location, dv))
                for dv in space.partitions[obj.location.partition_id].door_ids
            ]
            for obj in objects
        ]

    def _query_doors(self, offsets: dict[int, float], qpid: int | None) -> list[int]:
        """No-through pruning that keeps doors into object partitions."""
        if qpid is None:
            return list(offsets)
        space = self.matrix.space
        out = []
        for d in offsets:
            owners = space.door_partitions[d]
            if len(owners) == 2:
                other = owners[0] if owners[1] == qpid else owners[1]
                if (
                    other not in self.object_partitions
                    and space.category(other) is PartitionCategory.NO_THROUGH
                ):
                    continue
            out.append(d)
        return out or list(offsets)

    def object_distances(self, query) -> dict[int, float]:
        """dist(q, o) per live object id (ids can be sparse)."""
        space = self.matrix.space
        offsets, qpid = endpoint_offsets(space, query)
        q_doors = self._query_doors(offsets, qpid)
        dist = self.matrix.dist
        out: dict[int, float] = {}
        for obj, exits in zip(self.objects, self._obj_doors):
            pid = obj.location.partition_id
            best = INF
            for di in q_doors:
                base = offsets[di]
                row = dist[di]
                for dv, off in exits:
                    d = base + row[dv] + off
                    if d < best:
                        best = d
            if (
                qpid is not None
                and pid == qpid
                and isinstance(query, IndoorPoint)
            ):
                best = min(best, space.direct_point_distance(query, obj.location))
            out[obj.object_id] = best
        return out

    def knn(self, query, k: int) -> list[tuple[float, int]]:
        dists = self.object_distances(query)
        return sorted((d, oid) for oid, d in dists.items())[:k]

    def range_query(self, query, radius: float) -> list[tuple[float, int]]:
        dists = self.object_distances(query)
        return sorted((d, oid) for oid, d in dists.items() if d <= radius)
