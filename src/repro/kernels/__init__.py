"""Array-at-a-time kernels for the hot query math.

The query algorithms in :mod:`repro.core` are written as pure-python
loops — the reference implementation the paper's pseudo-code maps onto
line by line. Inside a serving shard those loops are the bottleneck:
every Lemma 8/9 child expansion is a ρ² dict-lookup double loop, every
access-list scan walks python tuples, and every climb rebuilds the same
per-door dicts. This package provides numpy implementations of exactly
those inner loops:

* :meth:`NumpyKernels.child_distances` — one
  ``min(source[:, None] + table, axis=0)`` per child instead of the
  ρ² loop;
* :meth:`NumpyKernels.leaf_objects` — per-door sorted ``(distance,
  object_id)`` arrays combined, cut against the pruning bound and
  deduplicated in bulk;
* :meth:`NumpyKernels.knn_full` / :meth:`NumpyKernels.range_full` — the
  eager whole-query path: the Lemma 8/9 recursion for *every* tree node
  replayed as a handful of level-batched gather/add/segmented-min ops
  over a flat slot vector, one global access-list scan, and a
  vectorized ``(distance, object_id)`` selection. Per-query cost is a
  few dozen numpy calls regardless of how many nodes the best-first
  reference would expand — this is where the single-thread speedup
  comes from, since fixture trees have ρ ≈ 5 and per-node calls cannot
  amortize numpy dispatch overhead.

Hooks are discovered with ``getattr``, so a backend provides exactly
the set that pays off: the numpy backend deliberately does *not* hook
the per-endpoint climbs or the Algorithm 3 LCA combine (python dict
loops win at fixture ρ; distance queries run the reference path on
every backend).

Every kernel is **bit-identical** to the python reference (asserted by
``tests/test_kernels.py``): the vectorized expressions perform the same
IEEE-754 additions in the same association order, ``min`` over a fixed
candidate set is evaluation-order independent, and min/argmin
tie-breaking matches the reference's first-strict-improvement scans.

Selection is per-engine: ``QueryEngine(kernels="numpy"|"python"|"auto")``
(default ``"auto"`` — numpy when importable). The python paths stay
available unconditionally and remain the oracle-checked reference.
"""

from __future__ import annotations

from ..exceptions import QueryError

try:  # numpy is an optional dependency of this package only
    from .numpy_backend import NumpyKernels

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only without numpy
    NumpyKernels = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = ["HAVE_NUMPY", "NumpyKernels", "resolve_kernels"]


def resolve_kernels(spec="auto"):
    """Resolve a kernels spec to a backend instance (or ``None``).

    ``None``/"auto" → :class:`NumpyKernels` when numpy is importable,
    else the python reference; ``"python"`` → the python reference
    (returns ``None``); ``"numpy"`` → :class:`NumpyKernels` or raise; a
    backend instance passes through unchanged.
    """
    if spec is None or spec == "auto":
        return NumpyKernels() if HAVE_NUMPY else None
    if spec == "python":
        return None
    if spec == "numpy":
        if not HAVE_NUMPY:
            raise QueryError("kernels='numpy' requested but numpy is not importable")
        return NumpyKernels()
    if isinstance(spec, str):
        raise QueryError(f"unknown kernels spec {spec!r} (expected 'auto', 'numpy' or 'python')")
    return spec
