"""Numpy implementations of the hot query kernels.

Bit-identity with the python reference is a hard requirement here, not a
nicety — the equivalence suite compares answers with ``==``, never with
a tolerance. The rules that make it hold:

* additions keep the reference's association order (e.g. the Lemma 8/9
  combine is ``source[:, None] + table`` — one add per entry, exactly
  the reference's ``dd + table.distance(d, a)``);
* ``min``/``argmin`` return the first occurrence of the minimum, which
  matches the reference's first-strict-improvement scans because rows
  are laid out in the same iteration order;
* access-list cuts compare the *totals* array (``base + dists``) against
  the entry bound in one vector op, replicating ``break on total >
  bound`` including ties kept at the bound (each door's segment is
  sorted, so the mask count equals the reference's per-door cuts);
* the whole-query eager path (:meth:`NumpyKernels.knn_full` /
  :meth:`NumpyKernels.range_full`) evaluates the Lemma 8/9 recursion for
  *every* tree node level by level with ``np.minimum.reduceat`` over a
  flat slot vector, then scans all access lists in one gather + add +
  per-object min. Each candidate value is still a single ``a + b`` add
  in the reference's operand order, and ``min`` over a fixed set is
  evaluation-order independent, so the distances — and therefore the
  ``(distance, object_id)``-lexicographic result sets — are bit-identical
  to the best-first reference even though the traversal order differs.
  (The query leaf's Dijkstra branch is the reference code, reused.)

Instances cache derived array forms (index arrays per tree node, packed
access lists per object-index version, materialized VIP climb matrices,
per-leaf eager propagation programs) keyed by identity + version, so
they are safe to share across queries of one engine; updates bump
``ObjectIndex.version`` under the engine's write lock, and readers
re-derive on the next query.
"""

from __future__ import annotations

import numpy as np

from ..core.results import Neighbor

INF = float("inf")
_INTP = np.intp


class NumpyKernels:
    """Array-at-a-time backend selected via ``kernels=`` (see
    :func:`repro.kernels.resolve_kernels`)."""

    name = "numpy"

    def __init__(self) -> None:
        # access-list arrays: (leaf_id, door) -> (dist_f64, oid_i64),
        # valid for one (ObjectIndex identity, version) pair
        self._al_cache: dict = {}
        self._al_index = None
        self._al_version = -1
        # child_distances index arrays: (parent, source_node, child) ->
        # (row_idx, col_idx)
        self._cd_cache: dict = {}
        self._cd_tree = None
        # eager whole-query state: flat (node, access door) slot table,
        # BFS node levels, per-query-leaf propagation programs, and the
        # global access-list entry arrays (per object-index version)
        self._eg_tree = None
        self._eg_slots: dict = {}
        self._eg_doors: dict = {}
        self._eg_nslots = 0
        self._eg_levels: list = []
        self._eg_prog: dict = {}
        self._eg_ent_index = None
        self._eg_ent_version = -1
        self._eg_ent = None
        # leaf segments over the slot vector: (leaf_ids_i64,
        # flat_slot_idx, reduceat_starts) — the vectorized bound-ball
        # closure (leaf mindist mask) reads these
        self._eg_leaf_seg = None

    # ------------------------------------------------------------------
    # Lemmas 8/9: child expansion
    # ------------------------------------------------------------------
    def child_distances(self, search, parent_id: int, child_id: int) -> dict[int, float]:
        """``min(source[:, None] + table, axis=0)`` over the parent's
        matrix; returns the same ``{access door: distance}`` dict as the
        reference."""
        tree = search.tree
        pos = search.chain_pos.get(parent_id)
        if pos is not None and pos > 0:
            source_nid = search.chain[pos - 1]
        else:
            source_nid = parent_id
        source = search.node_dists[source_nid]
        table = tree.nodes[parent_id].table
        child_ad = tree.nodes[child_id].access_doors
        if not source or not child_ad:
            return {a: INF for a in child_ad}

        if self._cd_tree is not tree:
            self._cd_cache.clear()
            self._cd_tree = tree
        key = (parent_id, source_nid, child_id)
        sub = self._cd_cache.get(key)
        if sub is None:
            # Gather the (source doors x child access doors) submatrix
            # once — the tree is static across queries, so every later
            # call is just one broadcasted add + min over it.
            ri = table.row_index
            ci = table.col_index
            rows = np.fromiter((ri[d] for d in source), dtype=_INTP, count=len(source))
            cols = np.fromiter((ci[a] for a in child_ad), dtype=_INTP, count=len(child_ad))
            sub = np.ascontiguousarray(table.dist_matrix[np.ix_(rows, cols)])
            self._cd_cache[key] = sub
        src = np.fromiter(source.values(), dtype=np.float64, count=len(source))
        best = (src[:, None] + sub).min(axis=0)
        return dict(zip(child_ad, best.tolist()))

    # ------------------------------------------------------------------
    # kNN/range leaf combination
    # ------------------------------------------------------------------
    def _leaf_arrays(self, index, leaf_id: int, dq: dict[int, float]):
        """Concatenated per-leaf access arrays: every door's sorted list
        laid out back to back, plus each entry's position of its door in
        ``dq``'s (static) iteration order — derived once per
        (object-index version, leaf)."""
        version = index.version
        if self._al_index is not index or self._al_version != version:
            self._al_cache.clear()
            self._al_index = index
            self._al_version = version
        arrs = self._al_cache.get(leaf_id)
        if arrs is None:
            lists = index.access_lists[leaf_id]
            doors = tuple(dq)
            entries = [(e, pos) for pos, a in enumerate(doors) for e in lists[a]]
            n = len(entries)
            dists = np.fromiter((e[0][0] for e in entries), dtype=np.float64, count=n)
            oids = np.fromiter((e[0][1] for e in entries), dtype=np.int64, count=n)
            door_pos = np.fromiter((e[1] for e in entries), dtype=_INTP, count=n)
            arrs = (doors, dists, oids, door_pos)
            self._al_cache[leaf_id] = arrs
        return arrs

    def leaf_objects(self, search, leaf_id: int, dq: dict[int, float], bound, stats):
        """Vectorized access-list combine for one non-query leaf.

        Cuts the entries at the entry bound in one vector comparison
        (each door's segment is sorted, so the per-entry mask count
        equals the reference's per-door ``searchsorted`` cuts), keeps
        the minimum total per object id, and yields ``(distance,
        object_id)`` in ascending ``(distance, object_id)`` order — the
        same stream the reference's k-way merge produces, so the
        caller's live bound prunes identically.
        """
        doors, dists, oids, door_pos = self._leaf_arrays(search.index, leaf_id, dq)
        if not dists.size:
            return
        b0 = bound()
        bases = np.fromiter((dq[a] for a in doors), dtype=np.float64, count=len(doors))
        totals = bases[door_pos] + dists
        mask = totals <= b0
        scanned = int(np.count_nonzero(mask))
        stats.list_entries_scanned += scanned
        if not scanned:
            return
        totals = totals[mask]
        kept = oids[mask]
        # group by object id, keep the minimum total per object
        order = np.lexsort((totals, kept))
        so = kept[order]
        st = totals[order]
        keep = np.empty(len(so), dtype=bool)
        keep[0] = True
        np.not_equal(so[1:], so[:-1], out=keep[1:])
        uo = so[keep]
        ut = st[keep]
        asc = np.argsort(ut, kind="stable")  # stable: ties stay oid-ascending
        for d, oid in zip(ut[asc].tolist(), uo[asc].tolist()):
            if d > bound():
                break
            yield d, int(oid)

    # ------------------------------------------------------------------
    # Eager whole-query kNN / range (Algorithm 5, array-at-a-time)
    # ------------------------------------------------------------------
    def _eager_tree_state(self, tree) -> None:
        """Assign every (node, access door) a slot in one flat vector and
        record the BFS node levels — static per tree."""
        if self._eg_tree is tree:
            return
        slots: dict[int, int] = {}
        doors: dict[int, tuple] = {}
        levels: list[list[int]] = []
        base = 0
        frontier = [tree.root_id]
        while frontier:
            levels.append(frontier)
            nxt: list[int] = []
            for nid in frontier:
                node = tree.nodes[nid]
                ad = tuple(node.access_doors)
                doors[nid] = ad
                slots[nid] = base
                base += len(ad)
                if not node.is_leaf:
                    nxt.extend(node.children)
            frontier = nxt
        leaf_l: list[int] = []
        lstarts: list[int] = []
        lslots: list[int] = []
        for nid, ad in doors.items():
            if tree.nodes[nid].is_leaf and ad:
                lstarts.append(len(lslots))
                leaf_l.append(nid)
                lslots.extend(range(slots[nid], slots[nid] + len(ad)))
        self._eg_leaf_seg = (
            np.asarray(leaf_l, dtype=np.int64),
            np.asarray(lslots, dtype=_INTP),
            np.asarray(lstarts, dtype=_INTP),
        )
        self._eg_slots = slots
        self._eg_doors = doors
        self._eg_nslots = base
        self._eg_levels = levels
        self._eg_prog = {}
        self._eg_ent_index = None
        self._eg_ent = None
        self._eg_tree = tree

    def _eager_program(self, tree, leaf_q: int):
        """Level-batched propagation program for one query leaf.

        The Lemma 8/9 recursion — ``dists(child)[a] = min over source
        doors d of dists(source)[d] + T_parent[d, a]`` with the source
        being the parent's chain child (Lemma 8) or the parent itself
        (Lemma 9) — depends on the query only through the leaf chain, so
        the gathered table values and index arrays are built once per
        (tree, query leaf) and each query replays them as one gather +
        add + segmented min per level.
        """
        prog = self._eg_prog.get(leaf_q)
        if prog is not None:
            return prog
        chain = tree.chain_of_leaf(leaf_q)
        chain_pos = {nid: i for i, nid in enumerate(chain)}
        slots = self._eg_slots
        doors = self._eg_doors
        chain_fill = []
        for nid in chain:
            ad = doors[nid]
            if ad:
                sl = np.arange(slots[nid], slots[nid] + len(ad), dtype=_INTP)
                chain_fill.append((nid, ad, sl))
        level_ops = []
        for parents in self._eg_levels:
            src_idx: list[int] = []
            tvals: list[float] = []
            seg: list[int] = []
            dst: list[int] = []
            for pid in parents:
                node = tree.nodes[pid]
                if node.is_leaf:
                    continue
                pos = chain_pos.get(pid)
                src_nid = chain[pos - 1] if pos is not None and pos > 0 else pid
                sdoors = doors[src_nid]
                if not sdoors:
                    continue  # empty source: children stay at INF
                sbase = slots[src_nid]
                table = node.table
                matrix = table.dist_matrix
                rows = [table.row_index[d] for d in sdoors]
                col_index = table.col_index
                for cid in node.children:
                    if cid in chain_pos:
                        continue  # chain values come from the climb
                    cad = doors[cid]
                    cbase = slots[cid]
                    for j, a in enumerate(cad):
                        seg.append(len(src_idx))
                        dst.append(cbase + j)
                        col = col_index[a]
                        for si, r in enumerate(rows):
                            src_idx.append(sbase + si)
                            tvals.append(float(matrix[r, col]))
            if seg:
                level_ops.append(
                    (
                        np.asarray(src_idx, dtype=_INTP),
                        np.asarray(tvals, dtype=np.float64),
                        np.asarray(seg, dtype=_INTP),
                        np.asarray(dst, dtype=_INTP),
                    )
                )
        prog = (chain_fill, level_ops)
        self._eg_prog[leaf_q] = prog
        return prog

    def _eager_entries(self, index):
        """Global access-list arrays, grouped by object id — derived once
        per object-index version."""
        if self._eg_ent_index is not index or self._eg_ent_version != index.version:
            slots = self._eg_slots
            doors = self._eg_doors
            oid_l: list[int] = []
            dist_l: list[float] = []
            slot_l: list[int] = []
            leaf_l: list[int] = []
            for leaf_id, per_door in index.access_lists.items():
                base = slots[leaf_id]
                for j, a in enumerate(doors[leaf_id]):
                    for dd, oid in per_door[a]:
                        oid_l.append(oid)
                        dist_l.append(dd)
                        slot_l.append(base + j)
                        leaf_l.append(leaf_id)
            n = len(oid_l)
            oids = np.asarray(oid_l, dtype=np.int64)
            if n:
                order = np.argsort(oids, kind="stable")
                oids = oids[order]
                e_dist = np.asarray(dist_l, dtype=np.float64)[order]
                e_slot = np.asarray(slot_l, dtype=_INTP)[order]
                leaf_arr = np.asarray(leaf_l, dtype=np.int64)[order]
                newgrp = np.empty(n, dtype=bool)
                newgrp[0] = True
                np.not_equal(oids[1:], oids[:-1], out=newgrp[1:])
                starts = np.flatnonzero(newgrp).astype(_INTP)
                uniq = oids[starts]
                leaf_pos = {
                    int(lid): np.flatnonzero(leaf_arr == lid).astype(_INTP)
                    for lid in set(leaf_l)
                }
            else:
                e_dist = np.empty(0, dtype=np.float64)
                e_slot = starts = np.empty(0, dtype=_INTP)
                uniq = np.empty(0, dtype=np.int64)
                leaf_pos = {}
            oid_pos = {int(o): i for i, o in enumerate(uniq.tolist())}
            self._eg_ent = (uniq, e_dist, e_slot, starts, leaf_pos, oid_pos)
            self._eg_ent_index = index
            self._eg_ent_version = index.version
        return self._eg_ent

    def _eager_distances(self, search):
        """Exact distance to every object as ``(distances, object_ids,
        slot_vals)`` arrays; the query leaf goes through the reference
        Dijkstra branch, everything else through the propagation
        program. ``slot_vals`` is the propagated per-(node, door)
        distance vector — the leaf-ball closure reads it."""
        tree = search.tree
        index = search.index
        self._eager_tree_state(tree)
        uniq, e_dist, e_slot, starts, leaf_pos, oid_pos = self._eager_entries(index)
        chain_fill, level_ops = self._eager_program(tree, search.leaf_q)
        stats = search.stats

        vals = np.full(self._eg_nslots, INF)
        node_dists = search.node_dists
        for nid, ad, sl in chain_fill:
            dct = node_dists.get(nid)
            if dct:
                vals[sl] = [dct[a] for a in ad]
        for src_idx, tvals, seg, dst in level_ops:
            vals[dst] = np.minimum.reduceat(vals[src_idx] + tvals, seg)
        stats.nodes_visited += len(self._eg_slots)

        if uniq.size:
            totals = vals[e_slot] + e_dist
            qpos = leaf_pos.get(search.leaf_q)
            if qpos is not None and qpos.size:
                # the query leaf's objects are handled exactly below
                totals[qpos] = INF
            dists = np.minimum.reduceat(totals, starts)
            stats.list_entries_scanned += int(totals.size)
        else:
            dists = np.empty(0, dtype=np.float64)

        extra_d: list[float] = []
        extra_o: list[int] = []
        if index.objects_in_leaf(search.leaf_q):
            for dd, oid in search.leaf_object_distances(search.leaf_q, INF):
                pos = oid_pos.get(oid)
                if pos is None:
                    extra_d.append(dd)
                    extra_o.append(oid)
                else:
                    dists[pos] = dd
        if extra_d:
            dists = np.concatenate([dists, np.asarray(extra_d, dtype=np.float64)])
            oids = np.concatenate([uniq, np.asarray(extra_o, dtype=np.int64)])
        else:
            oids = uniq
        return dists, oids, vals

    def _eager_leaf_ball(self, search, vals, bound: float) -> frozenset:
        """Vectorized bound-ball leaf closure: leaves whose minimum
        access-door distance in the propagated slot vector is
        ``<= bound``, plus the query leaf (mindist 0 by containment).

        Same contract as :func:`repro.core.query_knn.contributing_leaves`
        and deliberately independent of the access-list *candidate* mask:
        a leaf that is empty today but inside the ball must still tag the
        cached answer, because an insert there could change it.
        """
        leaf_ids, slot_idx, starts = self._eg_leaf_seg
        leaves = {search.leaf_q}
        if leaf_ids.size:
            mind = np.minimum.reduceat(vals[slot_idx], starts)
            leaves.update(
                int(lid) for lid in leaf_ids[mind <= bound].tolist()
            )
        return frozenset(leaves)

    def knn_full(self, search, k: int):
        """Whole-query kNN: the k lexicographically smallest
        ``(distance, object_id)`` pairs over the eager distance arrays —
        the same result set Algorithm 5's best-first traversal keeps.

        Stats are reported in aggregate (all nodes propagated, all list
        entries combined); ``heap_pops`` stays 0 on this path.
        """
        dists, oids, vals = self._eager_distances(search)
        order = np.lexsort((oids, dists))[:k] if dists.size else np.empty(0, _INTP)
        if search.collect_leaves:
            # Fewer than k results: the effective kth-distance bound is
            # infinite, so the answer depends on every leaf (None tag).
            search.stats.result_leaves = (
                self._eager_leaf_ball(search, vals, float(dists[order[-1]]))
                if order.size >= k
                else None
            )
        return [
            Neighbor(object_id=int(oids[i]), distance=float(dists[i]))
            for i in order.tolist()
        ]

    def range_full(self, search, radius: float):
        """Whole-query range: every object with distance <= radius,
        sorted by ``(distance, object_id)`` like the reference."""
        dists, oids, vals = self._eager_distances(search)
        if search.collect_leaves:
            # The radius bound holds even for an empty answer: an insert
            # inside the ball could make the next answer non-empty.
            search.stats.result_leaves = self._eager_leaf_ball(
                search, vals, radius
            )
        if not dists.size:
            return []
        sel = np.flatnonzero(dists <= radius)
        if not sel.size:
            return []
        sub_d = dists[sel]
        sub_o = oids[sel]
        order = np.lexsort((sub_o, sub_d))
        return [
            Neighbor(object_id=int(sub_o[i]), distance=float(sub_d[i]))
            for i in order.tolist()
        ]
