"""Embedding indoor objects into the tree (paper §3.4, "Indexing Indoor
Objects").

For each object the index records the leaf node containing its
partition; for each access door of a leaf it keeps the list of leaf
objects sorted by distance from that door; and every tree node knows how
many objects live in its subtree (branch-and-bound pruning skips empty
nodes, Algorithm 5 line 10).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..model.objects import ObjectSet

if TYPE_CHECKING:  # pragma: no cover
    from .tree import IPTree

INF = float("inf")


class ObjectIndex:
    """Objects embedded into an IP-Tree / VIP-Tree."""

    def __init__(self, tree: "IPTree", objects: ObjectSet) -> None:
        objects.validate(tree.space)
        self.tree = tree
        self.objects = objects
        #: leaf node id -> object ids located in that leaf
        self.leaf_objects: dict[int, list[int]] = {}
        #: leaf node id -> {access door -> [(distance, object id)] sorted}
        self.access_lists: dict[int, dict[int, list[tuple[float, int]]]] = {}
        #: node id -> number of objects in the subtree
        self.node_counts: dict[int, int] = {}
        self._build()

    def _build(self) -> None:
        tree = self.tree
        space = tree.space
        for obj in self.objects:
            pid = obj.location.partition_id
            leaf_id = tree.leaf_node_of_partition[pid]
            self.leaf_objects.setdefault(leaf_id, []).append(obj.object_id)
            for nid in tree.chain_of_leaf(leaf_id):
                self.node_counts[nid] = self.node_counts.get(nid, 0) + 1

        for leaf_id, oids in self.leaf_objects.items():
            node = tree.nodes[leaf_id]
            table = node.table
            per_door: dict[int, list[tuple[float, int]]] = {
                a: [] for a in node.access_doors
            }
            for oid in oids:
                obj = self.objects[oid]
                pid = obj.location.partition_id
                part_doors = space.partitions[pid].door_ids
                for a in node.access_doors:
                    # exact dist(a, o): leave the object's partition through
                    # any of its doors (matrix distances are globally exact)
                    best = INF
                    for dv in part_doors:
                        d = table.distance(dv, a) + space.point_to_door_distance(
                            obj.location, dv
                        )
                        if d < best:
                            best = d
                    per_door[a].append((best, oid))
            for a in per_door:
                per_door[a].sort()
            self.access_lists[leaf_id] = per_door

    # ------------------------------------------------------------------
    def count(self, node_id: int) -> int:
        """Objects in the subtree of ``node_id`` (0 when empty)."""
        return self.node_counts.get(node_id, 0)

    def objects_in_leaf(self, leaf_id: int) -> list[int]:
        return self.leaf_objects.get(leaf_id, [])

    def memory_bytes(self) -> int:
        total = 16 * sum(len(v) for v in self.leaf_objects.values())
        for per_door in self.access_lists.values():
            total += 24 * sum(len(lst) for lst in per_door.values())
        total += 16 * len(self.node_counts)
        return total

    def __len__(self) -> int:
        return len(self.objects)
