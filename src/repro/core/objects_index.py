"""Embedding indoor objects into the tree (paper §3.4, "Indexing Indoor
Objects").

For each object the index records the leaf node containing its
partition; for each access door of a leaf it keeps the list of leaf
objects sorted by distance from that door; and every tree node knows how
many objects live in its subtree (branch-and-bound pruning skips empty
nodes, Algorithm 5 line 10).

The index is **incrementally maintainable** — the paper attaches objects
to leaves precisely so that insertion, deletion and movement are cheap
(§3.4: "the objects can be easily inserted/deleted"). :meth:`insert`,
:meth:`delete` and :meth:`move` update the leaf lists, the per-door
sorted access lists (via bisect) and the subtree counts (bubbling the
±1 delta up the leaf's ancestor chain) in place, in O(ρ · |leaf
objects| + height) per update instead of an O(|O|) rebuild. All three
mutate the underlying :class:`ObjectSet` too, so index and set never
diverge; after any update sequence the index is structurally identical
to one freshly built from the same set (asserted by the test suite).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import TYPE_CHECKING

from ..exceptions import QueryError
from ..model.entities import IndoorPoint
from ..model.objects import ObjectSet, UpdateOp, apply_update

if TYPE_CHECKING:  # pragma: no cover
    from .tree import IPTree

INF = float("inf")


class ObjectIndex:
    """Objects embedded into an IP-Tree / VIP-Tree.

    Mutate through :meth:`insert` / :meth:`delete` / :meth:`move` (or
    :meth:`apply` with an :class:`~repro.model.objects.UpdateOp`); the
    :attr:`version` property mirrors the object set's version counter so
    engines can invalidate object-dependent caches.
    """

    def __init__(self, tree: "IPTree", objects: ObjectSet) -> None:
        objects.validate(tree.space)
        self.tree = tree
        self.objects = objects
        #: leaf node id -> object ids located in that leaf
        self.leaf_objects: dict[int, list[int]] = {}
        #: leaf node id -> {access door -> [(distance, object id)] sorted}
        self.access_lists: dict[int, dict[int, list[tuple[float, int]]]] = {}
        #: node id -> number of objects in the subtree (absent == 0)
        self.node_counts: dict[int, int] = {}
        #: object id -> (leaf id, {access door -> exact distance}); lets
        #: deletion locate its access-list entries with a bisect instead
        #: of a scan
        self._entries: dict[int, tuple[int, dict[int, float]]] = {}
        #: update operations applied since construction (monotone)
        self.updates = 0
        for obj in objects:
            self._register(obj)

    @property
    def version(self) -> int:
        """The underlying object set's version counter."""
        return self.objects.version

    # ------------------------------------------------------------------
    # Construction / incremental maintenance
    # ------------------------------------------------------------------
    def _door_distances(self, obj, leaf_id: int) -> dict[int, float]:
        """Exact dist(a, o) for every access door ``a`` of the leaf: leave
        the object's partition through any of its doors (matrix distances
        are globally exact)."""
        tree = self.tree
        space = tree.space
        node = tree.nodes[leaf_id]
        table = node.table
        part_doors = space.partitions[obj.location.partition_id].door_ids
        offsets = [
            (dv, space.point_to_door_distance(obj.location, dv)) for dv in part_doors
        ]
        out: dict[int, float] = {}
        for a in node.access_doors:
            best = INF
            for dv, off in offsets:
                d = table.distance(dv, a) + off
                if d < best:
                    best = d
            out[a] = best
        return out

    def _register(self, obj, *, bubble_counts: bool = True) -> None:
        tree = self.tree
        leaf_id = tree.leaf_node_of_partition[obj.location.partition_id]
        dists = self._door_distances(obj, leaf_id)
        self.leaf_objects.setdefault(leaf_id, []).append(obj.object_id)
        per_door = self.access_lists.get(leaf_id)
        if per_door is None:
            per_door = {a: [] for a in tree.nodes[leaf_id].access_doors}
            self.access_lists[leaf_id] = per_door
        for a, d in dists.items():
            insort(per_door[a], (d, obj.object_id))
        self._entries[obj.object_id] = (leaf_id, dists)
        if bubble_counts:
            for nid in tree.chain_of_leaf(leaf_id):
                self.node_counts[nid] = self.node_counts.get(nid, 0) + 1

    def _unregister(self, object_id: int, *, bubble_counts: bool = True) -> int:
        leaf_id, dists = self._entries.pop(object_id)
        self.leaf_objects[leaf_id].remove(object_id)
        per_door = self.access_lists[leaf_id]
        for a, d in dists.items():
            lst = per_door[a]
            i = bisect_left(lst, (d, object_id))
            assert i < len(lst) and lst[i] == (d, object_id)
            lst.pop(i)
        if not self.leaf_objects[leaf_id]:
            del self.leaf_objects[leaf_id]
            del self.access_lists[leaf_id]
        if bubble_counts:
            for nid in self.tree.chain_of_leaf(leaf_id):
                remaining = self.node_counts[nid] - 1
                if remaining:
                    self.node_counts[nid] = remaining
                else:
                    del self.node_counts[nid]
        return leaf_id

    def insert(self, location: IndoorPoint, label: str = "", category: str = "") -> int:
        """Add a new object to the set and the index; returns its id."""
        self.tree.space.validate_point(location)
        oid = self.objects.insert(location, label, category)
        self._register(self.objects[oid])
        self.updates += 1
        return oid

    def delete(self, object_id: int) -> None:
        """Remove an object from the set and the index."""
        if object_id not in self._entries:
            raise QueryError(f"object {object_id} is not in the index")
        self._unregister(object_id)
        self.objects.delete(object_id)
        self.updates += 1

    def move(self, object_id: int, location: IndoorPoint) -> None:
        """Relocate an object, re-embedding it in its (possibly new) leaf.

        Subtree counts are only touched when the object changes leaf —
        a same-leaf move just replaces its access-list entries.
        """
        if object_id not in self._entries:
            raise QueryError(f"object {object_id} is not in the index")
        self.tree.space.validate_point(location)
        new_leaf = self.tree.leaf_node_of_partition[location.partition_id]
        same_leaf = self._entries[object_id][0] == new_leaf
        self._unregister(object_id, bubble_counts=not same_leaf)
        self.objects.move(object_id, location)
        self._register(self.objects[object_id], bubble_counts=not same_leaf)
        self.updates += 1

    def apply(self, op: UpdateOp):
        """Apply one :class:`UpdateOp` (see :func:`apply_update`)."""
        return apply_update(self, op)

    # ------------------------------------------------------------------
    # Serialized state (snapshots, :mod:`repro.storage`)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe serialized state of the embedding.

        Covers the leaf object lists, the per-door sorted access lists,
        the subtree counts, the per-object entry map and the ``updates``
        counter — everything needed to restore the index without
        re-embedding a single object. Int-keyed maps are emitted as
        sorted pair lists (JSON objects would stringify the keys).
        """
        return {
            "updates": self.updates,
            "leaf_objects": [
                [leaf, list(oids)] for leaf, oids in sorted(self.leaf_objects.items())
            ],
            "access_lists": [
                [
                    leaf,
                    [
                        [door, [[d, oid] for d, oid in lst]]
                        for door, lst in sorted(per_door.items())
                    ],
                ]
                for leaf, per_door in sorted(self.access_lists.items())
            ],
            "node_counts": [list(kv) for kv in sorted(self.node_counts.items())],
            "entries": [
                [oid, leaf, [[door, d] for door, d in sorted(dists.items())]]
                for oid, (leaf, dists) in sorted(self._entries.items())
            ],
        }

    @classmethod
    def from_state(
        cls, tree: "IPTree", objects: ObjectSet, state: dict
    ) -> "ObjectIndex":
        """Restore an index from :meth:`to_state` output with zero
        re-embedding. ``tree`` and ``objects`` must be the instances the
        state was serialized against (the snapshot layer restores all
        three together)."""
        objects.validate(tree.space)
        index = object.__new__(cls)
        index.tree = tree
        index.objects = objects
        index.updates = state["updates"]
        index.leaf_objects = {leaf: list(oids) for leaf, oids in state["leaf_objects"]}
        index.access_lists = {
            leaf: {door: [(d, oid) for d, oid in lst] for door, lst in per_door}
            for leaf, per_door in state["access_lists"]
        }
        index.node_counts = {nid: count for nid, count in state["node_counts"]}
        index._entries = {
            oid: (leaf, {door: d for door, d in dists})
            for oid, leaf, dists in state["entries"]
        }
        return index

    # ------------------------------------------------------------------
    def count(self, node_id: int) -> int:
        """Objects in the subtree of ``node_id`` (0 when empty)."""
        return self.node_counts.get(node_id, 0)

    def objects_in_leaf(self, leaf_id: int) -> list[int]:
        return self.leaf_objects.get(leaf_id, [])

    def leaf_of_object(self, object_id: int) -> int:
        """The leaf node currently containing an object."""
        if object_id not in self._entries:
            raise QueryError(f"object {object_id} is not in the index")
        return self._entries[object_id][0]

    def memory_bytes(self) -> int:
        total = 16 * sum(len(v) for v in self.leaf_objects.values())
        for per_door in self.access_lists.values():
            total += 24 * sum(len(lst) for lst in per_door.values())
        total += 16 * len(self.node_counts)
        total += 24 * sum(len(d) for _, d in self._entries.values())
        return total

    def __len__(self) -> int:
        return len(self.objects)
