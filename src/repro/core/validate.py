"""Index verification utilities.

``verify_tree`` audits a built IP-Tree / VIP-Tree against its venue:
structural invariants (paper §2.1), matrix exactness on a sample of
entries, superior-door soundness and VIP materialization consistency.
Downstream users can run it after loading venues from untrusted sources
or after modifying construction parameters; the test suite uses it as a
one-call integration check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.dijkstra import dijkstra
from ..model.entities import PartitionCategory
from .tree import IPTree
from .viptree import VIPTree


@dataclass(slots=True)
class VerificationReport:
    """Outcome of :func:`verify_tree`."""

    ok: bool = True
    errors: list[str] = field(default_factory=list)
    checks_run: int = 0

    def fail(self, message: str) -> None:
        self.ok = False
        self.errors.append(message)

    def note(self) -> None:
        self.checks_run += 1


def _verify_structure(tree: IPTree, report: VerificationReport) -> None:
    space = tree.space
    seen: list[int] = []
    for node in tree.nodes:
        report.note()
        for cid in node.children:
            if tree.nodes[cid].parent != node.nid:
                report.fail(f"node {cid} parent pointer inconsistent")
            if tree.nodes[cid].level != node.level - 1:
                report.fail(f"node {cid} level inconsistent")
        if node.is_leaf:
            seen.extend(node.partitions)
            hallways = [
                pid
                for pid in node.partitions
                if space.category(pid, tree.delta) is PartitionCategory.HALLWAY
            ]
            if len(hallways) > 1:
                report.fail(f"leaf {node.nid} holds {len(hallways)} hallways (rule ii)")
    if sorted(seen) != list(range(space.num_partitions)):
        report.fail("leaf partitions do not partition the venue")
    roots = [n.nid for n in tree.nodes if n.parent is None]
    if roots != [tree.root_id]:
        report.fail(f"expected a single root, found {roots}")


def _verify_access_doors(tree: IPTree, report: VerificationReport) -> None:
    space = tree.space
    leaf_of = {}
    for node in tree.nodes:
        if node.is_leaf:
            for pid in node.partitions:
                leaf_of[pid] = node.nid
    for node in tree.nodes:
        report.note()
        if not node.is_leaf:
            continue
        expected = set()
        member = set(node.partitions)
        for pid in node.partitions:
            for did in space.partitions[pid].door_ids:
                owners = space.door_partitions[did]
                if len(owners) == 1 or not set(owners) <= member:
                    expected.add(did)
        if expected != set(node.access_doors):
            report.fail(f"leaf {node.nid} access doors mismatch")


def _verify_matrices(tree: IPTree, report: VerificationReport, samples: int) -> None:
    for node in tree.nodes:
        table = node.table
        if table is None:
            report.fail(f"node {node.nid} has no distance matrix")
            continue
        if not table.is_complete():
            report.fail(f"node {node.nid} matrix incomplete")
            continue
        for row in table.row_doors[:samples]:
            report.note()
            dist, _ = dijkstra(tree.d2d, row, targets=set(table.col_doors))
            for col in table.col_doors:
                stored = table.distance(row, col)
                if abs(stored - dist[col]) > 1e-6:
                    report.fail(
                        f"node {node.nid} entry ({row},{col}) = {stored}, "
                        f"oracle {dist[col]}"
                    )
                    break


def _verify_superior_doors(tree: IPTree, report: VerificationReport) -> None:
    space = tree.space
    for pid in range(space.num_partitions):
        report.note()
        sup = set(tree.superior_doors[pid])
        doors = set(space.partitions[pid].door_ids)
        if not sup:
            report.fail(f"partition {pid} has no superior doors")
        if not sup <= doors:
            report.fail(f"partition {pid} superior doors outside the partition")


def _verify_vip_store(tree: VIPTree, report: VerificationReport, samples: int) -> None:
    step = max(1, tree.space.num_doors // max(1, samples))
    for door in range(0, tree.space.num_doors, step):
        report.note()
        store = tree.vip_store[door]
        for leaf_id in tree.leaf_nodes_of_door[door]:
            for nid in tree.chain_of_leaf(leaf_id):
                for a in tree.nodes[nid].access_doors:
                    if a not in store:
                        report.fail(f"door {door} missing VIP entry for {a}")
        if not store:
            continue
        dist, _ = dijkstra(tree.d2d, door, targets=set(store))
        for a, (d, _via) in store.items():
            if abs(d - dist[a]) > 1e-6:
                report.fail(f"door {door} VIP distance to {a} wrong: {d} vs {dist[a]}")
                break


def verify_tree(tree: IPTree, matrix_samples: int = 4) -> VerificationReport:
    """Audit a built index; returns a :class:`VerificationReport`.

    Args:
        tree: an :class:`IPTree` or :class:`VIPTree`.
        matrix_samples: matrix rows (and VIP doors) sampled per node for
            the exactness checks — the structural checks are exhaustive.
    """
    report = VerificationReport()
    _verify_structure(tree, report)
    _verify_access_doors(tree, report)
    _verify_matrices(tree, report, matrix_samples)
    _verify_superior_doors(tree, report)
    if isinstance(tree, VIPTree):
        _verify_vip_store(tree, report, matrix_samples * 4)
    return report
