"""Shortest-path queries on the IP-Tree (paper §3.2, Algorithm 4).

The shortest-distance computation (Algorithm 3) leaves behind a *partial
shortest path*: the chain of access doors chosen while climbing the tree
plus the best LCA door pair. Each partial edge ``di -> dj`` is then
recursively decomposed through next-hop doors stored in the distance
matrices until only *final edges* (direct D2D edges) remain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..graph.dijkstra import dijkstra, path_from_parents
from .query_distance import Endpoint, get_distances, same_leaf_distance
from .results import PathResult, QueryStats
from .table import NO_DOOR

if TYPE_CHECKING:  # pragma: no cover
    from .context import QueryContext
    from .tree import IPTree

INF = float("inf")


def decompose_edge(tree: "IPTree", a: int, b: int) -> list[int]:
    """Algorithm 4: expand a partial edge into the full door sequence.

    Returns the inclusive door sequence ``[a, ..., b]``. Implemented with
    an explicit stack (paths can be long); a step budget guards against
    pathological zero-weight cycles.
    """
    if a == b:
        return [a]
    is_access = tree.door_is_leaf_access
    result = [a]
    stack: list[tuple[int, int]] = [(a, b)]
    budget = 8 * tree.space.num_doors + 64
    while stack:
        budget -= 1
        if budget < 0:
            raise AssertionError("path decomposition did not converge")
        x, y = stack.pop()
        if x == y:
            continue
        # Lemmas 4 & 6: a partial edge between two non-access doors is
        # always a final edge.
        if not is_access[x] and not is_access[y]:
            result.append(y)
            continue
        node, flipped = tree.lowest_covering_node(x, y)
        if node is None:
            # Group-table next-hops are compressed on the *global* level
            # graph, so a hop can land in another subtree and leave a
            # pair no matrix covers. The pair is still a shortest
            # subpath, so a direct D2D expansion is exact.
            dist, parent = dijkstra(tree.d2d, x, targets={y})
            result.extend(path_from_parents(parent, x, y)[1:])
            continue
        hop = node.table.next_hop(y, x) if flipped else node.table.next_hop(x, y)
        if hop == NO_DOOR or hop == x or hop == y:
            result.append(y)
            continue
        # Process (x, hop) first, then (hop, y): LIFO order.
        stack.append((hop, y))
        stack.append((x, hop))
    return result


def _expand_pairs(tree: "IPTree", doors: list[int]) -> list[int]:
    """Decompose every consecutive pair of a partial path."""
    if not doors:
        return []
    full = [doors[0]]
    for i in range(len(doors) - 1):
        seg = decompose_edge(tree, doors[i], doors[i + 1])
        full.extend(seg[1:])
    return full


def backtrack_chain(pred: dict[int, int], start: int) -> list[int]:
    """Walk a predecessor map from ``start`` down to the entry door.

    Returns ``[entry, ..., start]`` (entry door first).
    """
    seq = [start]
    cur = start
    seen = {start}
    while True:
        p = pred.get(cur)
        if p is None or p == cur or p in seen:
            break
        seq.append(p)
        seen.add(p)
        cur = p
    seq.reverse()
    return seq


def _dedupe(doors: list[int]) -> list[int]:
    out: list[int] = []
    for d in doors:
        if not out or out[-1] != d:
            out.append(d)
    return out


def shortest_path(
    tree: "IPTree", source, target, ctx: "QueryContext | None" = None
) -> PathResult:
    """Shortest path between two endpoints (doors or indoor points).

    ``ctx`` caches endpoint resolution and tree climbs across queries.
    Note: a context routes climbs through ``tree.endpoint_distances``,
    so pass a VIP-Tree through :meth:`VIPTree.shortest_path` (which
    understands the materialized predecessor hints) rather than through
    this free function.
    """
    if ctx is not None:
        ea = ctx.resolve(source)
        eb = ctx.resolve(target)
    else:
        ea = Endpoint(tree, source)
        eb = Endpoint(tree, target)
    stats = QueryStats()

    shared = set(ea.leaves) & set(eb.leaves)
    if shared:
        stats.same_leaf = True
        best, dist_map, parent, best_door = same_leaf_distance(tree, ea, eb)
        if best_door == -1:
            # Direct intra-partition segment (or unreachable, which a
            # connected venue rules out).
            return PathResult(best, [], stats)
        if ea.is_door and eb.is_door and ea.door == eb.door:
            return PathResult(0.0, [ea.door], stats)
        doors = backtrack_chain(parent, best_door)
        return PathResult(best, _dedupe(doors), stats)

    leaf_a, leaf_b = ea.leaves[0], eb.leaves[0]
    lca, ns, nt = tree.lca_info(leaf_a, leaf_b)
    if ctx is not None:
        ds, pred_s = ctx.climb(ea, ns, leaf_a)
        dt, pred_t = ctx.climb(eb, nt, leaf_b)
    else:
        ds, pred_s, _ = get_distances(tree, ea, ns, leaf_id=leaf_a)
        dt, pred_t, _ = get_distances(tree, eb, nt, leaf_id=leaf_b)
    table = tree.nodes[lca].table
    stats.superior_pairs = len(ea.entry_doors) * len(eb.entry_doors)

    ad_s = tree.nodes[ns].access_doors
    ad_t = tree.nodes[nt].access_doors
    best = INF
    best_pair = (ad_s[0], ad_t[0])
    for di in ad_s:
        dsi = ds[di]
        if dsi >= best:
            continue
        for dj in ad_t:
            d = dsi + table.distance(di, dj) + dt[dj]
            if d < best:
                best = d
                best_pair = (di, dj)
    stats.pairs_considered = len(ad_s) * len(ad_t)

    di, dj = best_pair
    s_chain = backtrack_chain(pred_s, di)  # entry ... di
    t_chain = backtrack_chain(pred_t, dj)  # entry ... dj
    t_chain.reverse()  # dj ... entry (walking toward the target)
    partial = _dedupe(s_chain + t_chain)
    doors = _expand_pairs(tree, partial)
    return PathResult(best, _dedupe(doors), stats)


def path_length(tree: "IPTree", result: PathResult, source, target) -> float:
    """Recompute a path's length from its door sequence (test helper).

    Sums the entry segment, the D2D edges between consecutive doors and
    the exit segment. Falls back to a Dijkstra distance when two
    consecutive doors are not directly connected (which would indicate a
    decomposition bug — tests assert it never happens via the comparison
    with ``result.distance``).
    """
    space = tree.space
    ea = Endpoint(tree, source)
    eb = Endpoint(tree, target)
    doors = result.doors
    if not doors:
        if ea.is_door or eb.is_door:
            raise AssertionError("empty path between door endpoints")
        return space.direct_point_distance(ea.point, eb.point)
    total = ea.offsets.get(doors[0], INF)
    for x, y in zip(doors, doors[1:]):
        if tree.d2d.has_edge(x, y):
            total += tree.d2d.edge_weight(x, y)
        else:
            dist, _ = dijkstra(tree.d2d, x, targets={y})
            total += dist[y]
    total += eb.offsets.get(doors[-1], INF)
    return total
