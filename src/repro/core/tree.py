"""IP-Tree: the Indoor Partitioning Tree (paper §2.1).

The tree combines adjacent indoor partitions into leaf nodes, then
iteratively merges adjacent nodes (Algorithm 1) until a single root
remains. Every node stores its access doors and a distance matrix
(:mod:`repro.core.table`); leaves additionally know their partitions and
every partition knows its superior doors.

Query processing lives in :mod:`repro.core.query_distance`,
:mod:`repro.core.query_path`, :mod:`repro.core.query_knn` and
:mod:`repro.core.query_range`; :class:`IPTree` exposes them as methods.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..exceptions import ConstructionError
from ..graph.adjacency import Graph
from ..model.d2d import build_d2d_graph
from ..model.entities import DEFAULT_DELTA
from ..model.indoor_space import IndoorSpace
from .leaves import build_leaves, leaf_access_doors, leaf_door_sets
from .matrices import build_level_graph, compute_group_table, compute_leaf_tables
from .merging import create_next_level, merged_access_doors
from .table import DistanceTable

#: Paper default for the minimum degree t (§4.1: best performance at t=2).
DEFAULT_MIN_DEGREE = 2


@dataclass(slots=True)
class TreeNode:
    """A node of the IP-Tree/VIP-Tree."""

    nid: int
    level: int  # 1 = leaf
    parent: int | None = None
    children: list[int] = field(default_factory=list)
    partitions: list[int] = field(default_factory=list)  # leaves only
    access_doors: list[int] = field(default_factory=list)
    table: DistanceTable | None = None
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.level == 1


@dataclass(slots=True)
class TreeStats:
    """Structural statistics (the paper's ρ, f, M, α of Table 1/§4.1)."""

    num_nodes: int
    num_leaves: int  # M
    height: int
    avg_access_doors: float  # ρ
    max_access_doors: int
    avg_fanout: float  # f
    avg_superior_doors: float  # α
    max_superior_doors: int


class IPTree:
    """Indoor Partitioning Tree over a validated :class:`IndoorSpace`.

    Build with :meth:`IPTree.build`; the constructor wires pre-computed
    parts together and is primarily for internal use.
    """

    index_name = "IP-Tree"

    def __init__(
        self,
        space: IndoorSpace,
        d2d: Graph,
        nodes: list[TreeNode],
        root_id: int,
        leaf_node_of_partition: list[int],
        leaf_nodes_of_door: list[tuple[int, ...]],
        door_is_leaf_access: list[bool],
        superior_doors: list[list[int]],
        delta: int,
        t: int,
        build_seconds: float,
    ) -> None:
        self.space = space
        self.d2d = d2d
        self.nodes = nodes
        self.root_id = root_id
        self.leaf_node_of_partition = leaf_node_of_partition
        self.leaf_nodes_of_door = leaf_nodes_of_door
        self.door_is_leaf_access = door_is_leaf_access
        self.superior_doors = superior_doors
        self.delta = delta
        self.t = t
        self.build_seconds = build_seconds
        self._assign_depths()
        self._chains: dict[int, list[int]] = {}
        for node in nodes:
            if node.is_leaf:
                self._chains[node.nid] = self._compute_chain(node.nid)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        space: IndoorSpace,
        delta: int = DEFAULT_DELTA,
        t: int = DEFAULT_MIN_DEGREE,
        d2d: Graph | None = None,
        use_superior_doors: bool = True,
    ) -> "IPTree":
        """Construct an IP-Tree for a venue (paper §2.1.2).

        Args:
            space: the venue to index.
            delta: hallway threshold δ (doors per partition).
            t: minimum degree of the tree (children per non-root node).
            d2d: optional pre-built D2D graph (rebuilt otherwise).
            use_superior_doors: apply the paper's Definition 2
                optimization when leaving the query partition. Disabling
                it enumerates every partition door instead — an ablation
                switch for the benchmark suite (the answers are
                identical; only the per-query work changes).
        """
        if t < 2:
            raise ConstructionError(f"minimum degree t must be >= 2, got {t}")
        start = time.perf_counter()
        if d2d is None:
            d2d = build_d2d_graph(space)

        # Step 1: leaves.
        leaf_partitions = build_leaves(space, delta)
        access = leaf_access_doors(space, leaf_partitions)
        doorsets = leaf_door_sets(space, leaf_partitions)

        nodes: list[TreeNode] = []
        for i, parts in enumerate(leaf_partitions):
            nodes.append(
                TreeNode(
                    nid=i,
                    level=1,
                    partitions=parts,
                    access_doors=access[i],
                )
            )

        leaf_node_of_partition = [0] * space.num_partitions
        for node in nodes:
            for pid in node.partitions:
                leaf_node_of_partition[pid] = node.nid

        door_leaves: list[set[int]] = [set() for _ in range(space.num_doors)]
        for node in nodes:
            for pid in node.partitions:
                for did in space.partitions[pid].door_ids:
                    door_leaves[did].add(node.nid)
        leaf_nodes_of_door = [tuple(sorted(s)) for s in door_leaves]

        door_is_leaf_access = [False] * space.num_doors
        for node in nodes:
            for did in node.access_doors:
                door_is_leaf_access[did] = True

        # Step 3: leaf matrices + superior doors.
        tables, superior = compute_leaf_tables(
            space, d2d, leaf_partitions, access, doorsets, door_is_leaf_access
        )
        if not use_superior_doors:
            superior = [list(p.door_ids) for p in space.partitions]
        for node, table in zip(nodes, tables):
            node.table = table

        # Step 2: merge nodes level by level (Algorithm 1).
        exterior = frozenset(
            did for did in range(space.num_doors) if space.is_exterior_door(did)
        )
        current = [node.nid for node in nodes]
        level = 1
        while len(current) > t:
            ad_sets = [frozenset(nodes[nid].access_doors) for nid in current]
            groups = create_next_level(ad_sets, exterior, t)
            if len(groups) >= len(current):
                break  # no merge possible; let the root absorb the rest
            level += 1
            new_ids = []
            for group in groups:
                child_ids = [current[i] for i in group]
                merged_ad = merged_access_doors(ad_sets, exterior, group)
                nid = len(nodes)
                nodes.append(
                    TreeNode(
                        nid=nid,
                        level=level,
                        children=child_ids,
                        access_doors=sorted(merged_ad),
                    )
                )
                for cid in child_ids:
                    nodes[cid].parent = nid
                new_ids.append(nid)
            current = new_ids

        if len(current) == 1:
            root_id = current[0]
        else:
            ad_sets = [frozenset(nodes[nid].access_doors) for nid in current]
            merged_ad = merged_access_doors(ad_sets, exterior, list(range(len(current))))
            root_id = len(nodes)
            nodes.append(
                TreeNode(
                    nid=root_id,
                    level=level + 1,
                    children=list(current),
                    access_doors=sorted(merged_ad),
                )
            )
            for cid in current:
                nodes[cid].parent = root_id

        # Step 4: non-leaf matrices, bottom-up on level-l graphs.
        by_level: dict[int, list[TreeNode]] = {}
        for node in nodes:
            by_level.setdefault(node.level, []).append(node)
        max_level = max(by_level)
        for lvl in range(2, max_level + 1):
            below = by_level.get(lvl - 1, [])
            level_graph = build_level_graph(
                space.num_doors,
                [(n.access_doors, n.table) for n in below],
            )
            for node in by_level.get(lvl, []):
                matrix_doors: set[int] = set()
                for cid in node.children:
                    matrix_doors.update(nodes[cid].access_doors)
                node.table = compute_group_table(level_graph, sorted(matrix_doors))

        build_seconds = time.perf_counter() - start
        return cls(
            space=space,
            d2d=d2d,
            nodes=nodes,
            root_id=root_id,
            leaf_node_of_partition=leaf_node_of_partition,
            leaf_nodes_of_door=leaf_nodes_of_door,
            door_is_leaf_access=door_is_leaf_access,
            superior_doors=superior,
            delta=delta,
            t=t,
            build_seconds=build_seconds,
        )

    # ------------------------------------------------------------------
    # Serialized state (snapshots, :mod:`repro.storage`)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Complete JSON-safe serialized state (excluding the venue).

        Everything :meth:`build` computes is captured — node structure,
        leaf partitions, distance matrices (leaf + group tables), the
        door->leaf maps, superior doors and the D2D graph — so
        :meth:`from_state` restores a ready-to-query tree with **zero
        rebuild**. Derived-in-constructor state (depths, ancestor
        chains) is recomputed on load in O(nodes).
        """
        return {
            "delta": self.delta,
            "t": self.t,
            "build_seconds": self.build_seconds,
            "root": self.root_id,
            "nodes": [
                {
                    "level": n.level,
                    "parent": n.parent,
                    "children": list(n.children),
                    "partitions": list(n.partitions),
                    "access_doors": list(n.access_doors),
                    "table": n.table.to_state() if n.table is not None else None,
                }
                for n in self.nodes
            ],
            "leaf_node_of_partition": list(self.leaf_node_of_partition),
            "leaf_nodes_of_door": [list(t) for t in self.leaf_nodes_of_door],
            "door_is_leaf_access": [int(b) for b in self.door_is_leaf_access],
            "superior_doors": [list(s) for s in self.superior_doors],
            "d2d": self.d2d.to_state(),
        }

    @classmethod
    def from_state(cls, space: IndoorSpace, state: dict) -> "IPTree":
        """Reconstruct a built tree from :meth:`to_state` output.

        ``space`` must be the venue the state was serialized for (the
        snapshot layer enforces this with a fingerprint check).
        """
        nodes = [
            TreeNode(
                nid=i,
                level=ns["level"],
                parent=ns["parent"],
                children=list(ns["children"]),
                partitions=list(ns["partitions"]),
                access_doors=list(ns["access_doors"]),
                table=(
                    DistanceTable.from_state(ns["table"])
                    if ns["table"] is not None
                    else None
                ),
            )
            for i, ns in enumerate(state["nodes"])
        ]
        return cls(
            space=space,
            d2d=Graph.from_state(state["d2d"]),
            nodes=nodes,
            root_id=state["root"],
            leaf_node_of_partition=list(state["leaf_node_of_partition"]),
            leaf_nodes_of_door=[tuple(t) for t in state["leaf_nodes_of_door"]],
            door_is_leaf_access=[bool(b) for b in state["door_is_leaf_access"]],
            superior_doors=[list(s) for s in state["superior_doors"]],
            delta=state["delta"],
            t=state["t"],
            # run metadata: the snapshot layer hoists it into the header
            build_seconds=state.get("build_seconds", 0.0),
        )

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def _assign_depths(self) -> None:
        root = self.nodes[self.root_id]
        stack = [(root.nid, 0)]
        while stack:
            nid, depth = stack.pop()
            node = self.nodes[nid]
            node.depth = depth
            for cid in node.children:
                stack.append((cid, depth + 1))

    def _compute_chain(self, leaf_id: int) -> list[int]:
        chain = [leaf_id]
        cur = self.nodes[leaf_id].parent
        while cur is not None:
            chain.append(cur)
            cur = self.nodes[cur].parent
        return chain

    def node(self, nid: int) -> TreeNode:
        return self.nodes[nid]

    @property
    def root(self) -> TreeNode:
        return self.nodes[self.root_id]

    def chain_of_leaf(self, leaf_id: int) -> list[int]:
        """Ancestor chain leaf -> root (inclusive)."""
        return self._chains[leaf_id]

    def leaf_of_point_partition(self, partition_id: int) -> int:
        return self.leaf_node_of_partition[partition_id]

    def lca_info(self, leaf_a: int, leaf_b: int) -> tuple[int, int, int]:
        """Lowest common ancestor of two leaves.

        Returns ``(lca, child_a, child_b)`` where ``child_a``/``child_b``
        are the children of the LCA on each leaf's chain (the paper's Ns
        and Nt in Lemma 2). Requires ``leaf_a != leaf_b``.
        """
        chain_a = self._chains[leaf_a]
        chain_b = self._chains[leaf_b]
        set_a = {nid: i for i, nid in enumerate(chain_a)}
        for j, nid in enumerate(chain_b):
            i = set_a.get(nid)
            if i is not None:
                if i == 0 or j == 0:
                    raise ValueError("lca_info requires distinct leaves")
                return nid, chain_a[i - 1], chain_b[j - 1]
        raise AssertionError("tree has a single root; chains must intersect")

    def lowest_covering_node(self, door_a: int, door_b: int) -> tuple[TreeNode | None, bool]:
        """The lowest node whose matrix covers a door pair.

        Returns ``(node, flipped)``: when ``flipped`` the matrix covers
        ``(door_b -> door_a)`` instead (leaf matrices only store
        door -> access-door entries; reversing the decomposition of the
        flipped pair recovers the original direction on our undirected
        graphs). Returns ``(None, False)`` when no matrix covers the
        pair — possible for partial edges whose next-hop was compressed
        through another subtree (group tables are computed on the global
        level graph), in which case the caller expands the pair on the
        D2D graph directly.

        This realizes Algorithm 4's node choice: a shared leaf for pairs
        with at most one access door (Lemmas 4/7) and the lowest common
        ancestor matrix for access-door pairs (Lemma 5).
        """
        leaves_a = self.leaf_nodes_of_door[door_a]
        leaves_b = self.leaf_nodes_of_door[door_b]
        for lid in leaves_a:
            if lid in leaves_b:
                node = self.nodes[lid]
                if node.table.covers(door_a, door_b):
                    return node, False
                if node.table.covers(door_b, door_a):
                    return node, True
        # Both doors must be access doors: climb chains for the deepest
        # common node whose (square) matrix covers both.
        nodes_a: set[int] = set()
        for lid in leaves_a:
            nodes_a.update(self._chains[lid])
        candidates: list[TreeNode] = []
        for lid in leaves_b:
            for nid in self._chains[lid]:
                if nid in nodes_a:
                    candidates.append(self.nodes[nid])
        candidates.sort(key=lambda n: -n.depth)
        for node in candidates:
            if node.table is not None and node.table.covers(door_a, door_b):
                return node, False
        return None, False

    # ------------------------------------------------------------------
    # Stats & memory
    # ------------------------------------------------------------------
    def stats(self) -> TreeStats:
        non_leaf = [n for n in self.nodes if not n.is_leaf]
        leaves = [n for n in self.nodes if n.is_leaf]
        access_counts = [len(n.access_doors) for n in self.nodes]
        sup_counts = [len(s) for s in self.superior_doors]
        return TreeStats(
            num_nodes=len(self.nodes),
            num_leaves=len(leaves),
            height=self.root.level,
            avg_access_doors=sum(access_counts) / max(1, len(access_counts)),
            max_access_doors=max(access_counts, default=0),
            avg_fanout=(
                sum(len(n.children) for n in non_leaf) / len(non_leaf)
                if non_leaf
                else 0.0
            ),
            avg_superior_doors=sum(sup_counts) / max(1, len(sup_counts)),
            max_superior_doors=max(sup_counts, default=0),
        )

    def memory_bytes(self) -> int:
        """Index storage estimate (tables + structure), excluding the D2D
        graph (reported separately, as the paper's Fig 8(b) does for the
        common substrate)."""
        total = 0
        for node in self.nodes:
            if node.table is not None:
                total += node.table.memory_bytes()
            total += 16 * (len(node.access_doors) + len(node.children) + len(node.partitions))
        total += 16 * sum(len(s) for s in self.superior_doors)
        total += 16 * self.space.num_doors  # door -> leaf maps
        return total

    def total_memory_bytes(self) -> int:
        """Index + D2D graph (needed for same-leaf queries, §2.1.3)."""
        return self.memory_bytes() + self.d2d.memory_bytes()

    # ------------------------------------------------------------------
    # Queries (implemented in the query_* modules)
    # ------------------------------------------------------------------
    def endpoint_distances(
        self,
        endpoint,
        target_node: int,
        leaf_id: int | None = None,
        collect_chain: bool = False,
        kernels=None,
    ):
        """Algorithm 2 dispatch: distances from an endpoint to the access
        doors of an ancestor node. VIP-Tree overrides this with its O(αρ)
        materialized variant (§3.1.2). A kernels backend may provide a
        ``climb_ip`` hook to take over the climb (the numpy backend does
        not: at fixture ρ the python loop wins, and the array path
        vectorizes whole queries instead — see :mod:`repro.kernels`)."""
        climb = getattr(kernels, "climb_ip", None)
        if climb is not None:
            return climb(self, endpoint, target_node, leaf_id, collect_chain)
        from .query_distance import get_distances

        return get_distances(self, endpoint, target_node, leaf_id, collect_chain)

    def shortest_distance(self, source, target, ctx=None, kernels=None) -> float:
        from .query_distance import shortest_distance

        return shortest_distance(self, source, target, ctx, kernels=kernels).distance

    def distance_query(self, source, target, ctx=None, kernels=None):
        """Shortest distance with query statistics (QueryResult)."""
        from .query_distance import shortest_distance

        return shortest_distance(self, source, target, ctx, kernels=kernels)

    def shortest_path(self, source, target, ctx=None):
        from .query_path import shortest_path

        return shortest_path(self, source, target, ctx)

    def knn(self, object_index, query, k: int, ctx=None, kernels=None,
            stats=None, collect_leaves: bool = False):
        from .query_knn import knn

        return knn(self, object_index, query, k, ctx, kernels=kernels,
                   stats=stats, collect_leaves=collect_leaves)

    def range_query(self, object_index, query, radius: float, ctx=None,
                    kernels=None, stats=None, collect_leaves: bool = False):
        from .query_range import range_query

        return range_query(self, object_index, query, radius, ctx,
                           kernels=kernels, stats=stats,
                           collect_leaves=collect_leaves)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.index_name}(nodes={len(self.nodes)}, leaves="
            f"{sum(1 for n in self.nodes if n.is_leaf)}, root={self.root_id})"
        )
