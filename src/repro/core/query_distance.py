"""Shortest-distance queries on the IP-Tree (paper §3.1, Algorithms 2 & 3).

Query endpoints are arbitrary :class:`~repro.model.entities.IndoorPoint`
locations or door ids. When both endpoints fall in the same leaf, the
distance comes from a Dijkstra expansion on the D2D graph (as in the
paper); otherwise Algorithm 2 climbs the tree computing distances from
each endpoint to the access doors of the children of the lowest common
ancestor, and Algorithm 3 combines them through the LCA's matrix.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..exceptions import QueryError
from ..graph.dijkstra import dijkstra
from ..model.entities import IndoorPoint
from .context import endpoint_key
from .results import DistanceResult, QueryStats

if TYPE_CHECKING:  # pragma: no cover
    from .context import QueryContext
    from .tree import IPTree

INF = float("inf")


class Endpoint:
    """A normalized query endpoint (point or door).

    Attributes:
        is_door: True when the endpoint is a door id.
        offsets: Dijkstra virtual-source offsets: door -> initial
            distance (0 for a door endpoint; point-to-door distances for
            a point endpoint).
        entry_doors: doors considered when leaving the start partition —
            the superior doors for a point (paper Definition 2), the door
            itself for a door endpoint.
        leaves: candidate leaf node ids containing the endpoint.
        key: hashable endpoint identity (used by :class:`QueryContext`).
    """

    __slots__ = ("is_door", "door", "point", "partition", "leaves", "entry_doors", "offsets", "key")

    def __init__(self, tree: "IPTree", raw) -> None:
        space = tree.space
        self.key = endpoint_key(raw)
        if isinstance(raw, IndoorPoint):
            space.validate_point(raw)
            self.is_door = False
            self.door = None
            self.point = raw
            self.partition = raw.partition_id
            self.leaves = (tree.leaf_node_of_partition[raw.partition_id],)
            self.entry_doors = tree.superior_doors[raw.partition_id]
            self.offsets = {
                du: space.point_to_door_distance(raw, du)
                for du in space.partitions[raw.partition_id].door_ids
            }
        elif isinstance(raw, int):
            if not 0 <= raw < space.num_doors:
                raise QueryError(f"unknown door {raw}")
            self.is_door = True
            self.door = raw
            self.point = None
            self.partition = space.door_partitions[raw][0]
            self.leaves = tree.leaf_nodes_of_door[raw]
            self.entry_doors = [raw]
            self.offsets = {raw: 0.0}
        else:
            raise QueryError(
                f"query endpoints must be IndoorPoint or door id, got {type(raw).__name__}"
            )


def base_leaf_distances(
    tree: "IPTree", endpoint: Endpoint, leaf_id: int
) -> tuple[dict[int, float], dict[int, int]]:
    """Distances from the endpoint to every access door of its leaf.

    Uses the superior doors of the endpoint's partition (paper §3.1.1):
    the shortest path from any point to a global access door must pass
    through a superior door, so only those are enumerated.

    Returns ``(known, pred)``: distances per access door and the entry
    door through which the minimum is achieved (for path recovery).
    """
    table = tree.nodes[leaf_id].table
    known: dict[int, float] = {}
    pred: dict[int, int] = {}
    for a in table.col_doors:
        best = INF
        best_entry = -1
        if endpoint.is_door:
            best = table.distance(endpoint.door, a)
            best_entry = endpoint.door
        else:
            for du in endpoint.entry_doors:
                d = endpoint.offsets[du] + table.distance(du, a)
                if d < best:
                    best = d
                    best_entry = du
        known[a] = best
        pred[a] = best_entry
    return known, pred


def get_distances(
    tree: "IPTree",
    endpoint: Endpoint,
    target_node: int,
    leaf_id: int | None = None,
    collect_chain: bool = False,
) -> tuple[dict[int, float], dict[int, int], dict[int, dict[int, float]]]:
    """Algorithm 2: distances from an endpoint to ``AD(target_node)``.

    ``target_node`` must be on the ancestor chain of the endpoint's leaf.

    Returns:
        ``(known, pred, chain)`` — ``known`` maps every access door
        encountered while climbing to its distance; ``pred`` maps each
        door to the previous door on the chosen path (entry door at the
        leaf level); ``chain`` maps each visited node id to its
        ``{access door: distance}`` snapshot when ``collect_chain``.
    """
    if leaf_id is None:
        leaf_id = endpoint.leaves[0]
    known, pred = base_leaf_distances(tree, endpoint, leaf_id)
    chain_map: dict[int, dict[int, float]] = {}
    chain = tree.chain_of_leaf(leaf_id)
    if collect_chain:
        chain_map[leaf_id] = dict(known)
    if chain[0] == target_node and not collect_chain:
        return known, pred, chain_map

    child = leaf_id
    for parent in chain[1:]:
        parent_node = tree.nodes[parent]
        table = parent_node.table
        child_ad = tree.nodes[child].access_doors
        for a in parent_node.access_doors:
            if a in known:  # marked: already computed at a lower level
                continue
            best = INF
            best_via = -1
            for di in child_ad:
                d = known[di] + table.distance(di, a)
                if d < best:
                    best = d
                    best_via = di
            known[a] = best
            pred[a] = best_via
        if collect_chain:
            chain_map[parent] = {a: known[a] for a in parent_node.access_doors}
        child = parent
        if parent == target_node and not collect_chain:
            break
    return known, pred, chain_map


def same_leaf_distance(
    tree: "IPTree", ea: Endpoint, eb: Endpoint
) -> tuple[float, dict[int, float], dict[int, int], int]:
    """Distance when both endpoints share a leaf: Dijkstra on the D2D
    graph with virtual sources (paper §3.1.1 first paragraph).

    Returns ``(distance, dist_map, parent_map, best_target_door)`` so the
    path query can reuse the expansion. ``best_target_door`` is -1 when
    the direct intra-partition segment wins (same-partition endpoints).
    """
    space = tree.space
    direct = INF
    if (
        not ea.is_door
        and not eb.is_door
        and ea.partition == eb.partition
    ):
        direct = space.direct_point_distance(ea.point, eb.point)
    if ea.is_door and eb.is_door and ea.door == eb.door:
        return 0.0, {}, {}, ea.door

    targets = set(eb.offsets)
    dist, parent = dijkstra(tree.d2d, dict(ea.offsets), targets=set(targets))
    best = direct
    best_door = -1
    for dv, off in eb.offsets.items():
        d = dist.get(dv, INF) + off
        if d < best:
            best = d
            best_door = dv
    return best, dist, parent, best_door


def shortest_distance(
    tree: "IPTree", source, target, ctx: "QueryContext | None" = None, kernels=None
) -> DistanceResult:
    """Algorithm 3: shortest indoor distance between two endpoints.

    ``ctx`` optionally supplies cached endpoint resolution and tree
    climbs shared across a query stream (see
    :class:`~repro.core.context.QueryContext`); the answer is identical
    with or without it. ``kernels`` selects the array-at-a-time
    implementation of the climbs and the LCA combine
    (:mod:`repro.kernels`); answers are bit-identical to this module's
    python reference.
    """
    if kernels is None and ctx is not None:
        kernels = ctx.kernels
    if ctx is not None:
        ea = ctx.resolve(source)
        eb = ctx.resolve(target)
    else:
        ea = Endpoint(tree, source)
        eb = Endpoint(tree, target)
    stats = QueryStats()

    shared = set(ea.leaves) & set(eb.leaves)
    if shared:
        stats.same_leaf = True
        best, _, _, _ = same_leaf_distance(tree, ea, eb)
        return DistanceResult(best, stats)

    leaf_a, leaf_b = ea.leaves[0], eb.leaves[0]
    lca, ns, nt = tree.lca_info(leaf_a, leaf_b)
    if ctx is not None:
        ds, _ = ctx.climb(ea, ns, leaf_a)
        dt, _ = ctx.climb(eb, nt, leaf_b)
    else:
        ds, _, _ = tree.endpoint_distances(ea, ns, leaf_id=leaf_a, kernels=kernels)
        dt, _, _ = tree.endpoint_distances(eb, nt, leaf_id=leaf_b, kernels=kernels)
    table = tree.nodes[lca].table

    ad_s = tree.nodes[ns].access_doors
    ad_t = tree.nodes[nt].access_doors
    combine = getattr(kernels, "combine_lca", None)
    if combine is not None:
        best = combine(table, ad_s, ad_t, ds, dt)
    else:
        best = INF
        for di in ad_s:
            dsi = ds[di]
            if dsi >= best:
                continue
            for dj in ad_t:
                d = dsi + table.distance(di, dj) + dt[dj]
                if d < best:
                    best = d
    stats.pairs_considered = len(ad_s) * len(ad_t)
    stats.superior_pairs = len(ea.entry_doors) * len(eb.entry_doors)
    return DistanceResult(best, stats)
