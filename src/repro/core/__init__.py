"""The paper's primary contribution: IP-Tree / VIP-Tree and query processing."""

from .context import QueryContext, endpoint_key
from .objects_index import ObjectIndex
from .results import DistanceResult, Neighbor, PathResult, QueryStats
from .table import NO_DOOR, DistanceTable
from .tree import DEFAULT_MIN_DEGREE, IPTree, TreeNode, TreeStats
from .validate import VerificationReport, verify_tree
from .viptree import VIPTree

__all__ = [
    "DEFAULT_MIN_DEGREE",
    "DistanceResult",
    "DistanceTable",
    "IPTree",
    "NO_DOOR",
    "Neighbor",
    "ObjectIndex",
    "PathResult",
    "QueryContext",
    "QueryStats",
    "TreeNode",
    "endpoint_key",
    "TreeStats",
    "VIPTree",
    "VerificationReport",
    "verify_tree",
]
