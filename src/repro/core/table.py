"""Distance matrices stored at IP-Tree / VIP-Tree nodes.

Each tree node stores a :class:`DistanceTable` (paper §2.1.1):

* **leaf nodes** — rows are *all* doors of the leaf, columns are the
  leaf's access doors; each entry holds the shortest distance plus the
  *next-hop door* on the shortest path (with the paper's special rule
  when the path leaves the leaf, see Example 6).
* **non-leaf nodes** — rows and columns are the union of the children's
  access doors; the next-hop is the first door among those on the
  shortest path (or NULL when none).

Next-hop values are directional (row -> column). ``NO_DOOR`` encodes the
paper's NULL.
"""

from __future__ import annotations

#: Sentinel for the paper's NULL next-hop ("final edge").
NO_DOOR = -1

_INF = float("inf")


class DistanceTable:
    """Dense distance + next-hop matrix keyed by door ids."""

    __slots__ = ("row_doors", "col_doors", "row_index", "col_index", "_dist", "_hop", "_np_dist")

    def __init__(self, row_doors: list[int], col_doors: list[int]):
        self.row_doors = list(row_doors)
        self.col_doors = list(col_doors)
        self.row_index = {d: i for i, d in enumerate(self.row_doors)}
        self.col_index = {d: j for j, d in enumerate(self.col_doors)}
        ncols = len(self.col_doors)
        self._dist = [[_INF] * ncols for _ in self.row_doors]
        self._hop = [[NO_DOOR] * ncols for _ in self.row_doors]
        self._np_dist = None

    # ------------------------------------------------------------------
    def set_entry(self, row_door: int, col_door: int, dist: float, hop: int = NO_DOOR) -> None:
        """Record distance and next-hop for ``row_door -> col_door``."""
        i = self.row_index[row_door]
        j = self.col_index[col_door]
        self._dist[i][j] = dist
        self._hop[i][j] = hop
        self._np_dist = None

    def distance(self, row_door: int, col_door: int) -> float:
        """Shortest distance ``row_door -> col_door`` (O(1), paper §2.1.1)."""
        return self._dist[self.row_index[row_door]][self.col_index[col_door]]

    def next_hop(self, row_door: int, col_door: int) -> int:
        """Next-hop door id, or :data:`NO_DOOR` for a final edge."""
        return self._hop[self.row_index[row_door]][self.col_index[col_door]]

    def covers(self, row_door: int, col_door: int) -> bool:
        return row_door in self.row_index and col_door in self.col_index

    def row_distances(self, row_door: int) -> dict[int, float]:
        """All column distances for one row door."""
        i = self.row_index[row_door]
        row = self._dist[i]
        return {d: row[j] for d, j in self.col_index.items()}

    @property
    def dist_matrix(self):
        """The distance matrix as a dense ``(num_rows, num_cols)`` numpy
        float64 array, built lazily and cached (invalidated by
        :meth:`set_entry`). Shares storage with the row views when the
        table was restored from a packed/mmap'd snapshot, in which case
        it may be read-only. Used by :mod:`repro.kernels`; requires
        numpy.
        """
        m = self._np_dist
        if m is None:
            import numpy as np

            m = np.array(self._dist, dtype=np.float64).reshape(self.num_rows, self.num_cols)
            self._np_dist = m
        return m

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.row_doors)

    @property
    def num_cols(self) -> int:
        return len(self.col_doors)

    def memory_bytes(self) -> int:
        """Approximate storage: 8B distance + 8B next-hop per entry."""
        return self.num_rows * self.num_cols * 16

    def is_complete(self) -> bool:
        """True when every entry has been populated (used by tests)."""
        return all(v != _INF for row in self._dist for v in row)

    # ------------------------------------------------------------------
    # Serialized state (snapshots, :mod:`repro.storage`)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe serialized state.

        The door lists stay readable JSON; the distance and next-hop
        matrices are packed row-major via :mod:`repro.model.packing`
        (bit-exact for every float including the ``inf`` of unreachable
        entries, and ~10x cheaper to parse than number tokens).
        """
        from ..model.packing import pack_f64, pack_i64

        return {
            "rows": list(self.row_doors),
            "cols": list(self.col_doors),
            "dist": pack_f64([v for row in self._dist for v in row]),
            "hop": pack_i64([v for row in self._hop for v in row]),
        }

    @classmethod
    def from_state(cls, state: dict) -> "DistanceTable":
        """Rebuild a table from :meth:`to_state` output without
        re-running any shortest-path computation."""
        from ..model.packing import unpack_f64, unpack_i64

        table = cls(state["rows"], state["cols"])
        ncols = len(table.col_doors)
        if ncols:
            flat_d = unpack_f64(state["dist"])
            flat_h = unpack_i64(state["hop"])
            table._dist = [
                flat_d[i : i + ncols] for i in range(0, len(flat_d), ncols)
            ]
            table._hop = [
                flat_h[i : i + ncols] for i in range(0, len(flat_h), ncols)
            ]
            if not isinstance(flat_d, list):
                # mmap'd snapshot: flat_d is already a zero-copy numpy
                # view, so the dense kernel matrix is free.
                table._np_dist = flat_d.reshape(-1, ncols)
        return table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DistanceTable({self.num_rows}x{self.num_cols})"
