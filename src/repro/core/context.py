"""Reusable query context: per-index state shared across queries.

Every query on an :class:`~repro.core.tree.IPTree` starts with the same
per-endpoint setup — validating the endpoint, resolving its leaf and
superior doors, computing point-to-door offsets, and (for cross-leaf
queries) climbing the tree to the access doors of an ancestor node
(Algorithm 2). A :class:`QueryContext` caches that state so a stream of
queries against one index pays the setup once per distinct endpoint
instead of once per query.

The context is optional everywhere: every query entry point accepts
``ctx=None`` and behaves exactly as before without one. Results are
identical with or without a context — only the amount of recomputation
changes. The cached objects are treated as immutable by all readers
(climb results are read-only downstream; search states only ever gain
entries).

:class:`~repro.engine.QueryEngine` builds one context per wrapped index
and layers LRU result caches on top; see :mod:`repro.engine`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..exceptions import QueryError
from ..model.entities import IndoorPoint

if TYPE_CHECKING:  # pragma: no cover
    from .query_distance import Endpoint
    from .tree import IPTree


def endpoint_key(raw) -> tuple:
    """A hashable identity for a query endpoint.

    Door ids and indoor points get disjoint, mutually orderable key
    spaces so an engine can key (and order-normalize) cache entries by
    endpoint regardless of endpoint type. Rejects invalid types up
    front so cache lookups never precede endpoint validation.
    """
    if isinstance(raw, IndoorPoint):
        return (1, raw.partition_id, raw.x, raw.y)
    if isinstance(raw, int):
        return (0, raw)
    raise QueryError(
        f"query endpoints must be IndoorPoint or door id, got {type(raw).__name__}"
    )


class QueryContext:
    """Caches shared by all queries against one tree.

    Three layers, all exposing hit/miss counters:

    * **endpoint cache** — resolved :class:`Endpoint` objects (leaf
      lookup, superior doors, point-to-door offsets) keyed by endpoint
      identity;
    * **climb cache** — Algorithm 2 results ``(known, pred)`` keyed by
      ``(endpoint, target_node)``, shared by distance and path queries;
    * **search-state cache** — the per-node access-door distance maps a
      kNN/range search derives from the root climb (Algorithm 5 line 2
      plus Lemmas 8/9), keyed by endpoint and *grown monotonically*
      across searches so later queries at the same point skip already
      expanded nodes.

    The caches may be any mapping with ``get``/``__setitem__`` (a plain
    ``dict`` by default, or an :class:`repro.engine.cache.LRUCache` for
    bounded memory).
    """

    __slots__ = (
        "tree",
        "kernels",
        "endpoints",
        "climbs",
        "searches",
        "endpoint_hits",
        "endpoint_misses",
        "climb_hits",
        "climb_misses",
        "search_hits",
        "search_misses",
    )

    def __init__(
        self, tree: "IPTree", *, endpoint_cache=None, climb_cache=None, search_cache=None, kernels=None
    ) -> None:
        self.tree = tree
        #: optional array-at-a-time kernel backend (:mod:`repro.kernels`)
        #: used for climbs performed on behalf of this context; queries
        #: passing this context inherit it unless they override.
        self.kernels = kernels
        self.endpoints = {} if endpoint_cache is None else endpoint_cache
        self.climbs = {} if climb_cache is None else climb_cache
        self.searches = {} if search_cache is None else search_cache
        self.endpoint_hits = 0
        self.endpoint_misses = 0
        self.climb_hits = 0
        self.climb_misses = 0
        self.search_hits = 0
        self.search_misses = 0

    # ------------------------------------------------------------------
    def resolve(self, raw) -> "Endpoint":
        """A (cached) resolved endpoint for a door id or indoor point."""
        from .query_distance import Endpoint

        key = endpoint_key(raw)
        ep = self.endpoints.get(key)
        if ep is not None:
            self.endpoint_hits += 1
            return ep
        self.endpoint_misses += 1
        ep = Endpoint(self.tree, raw)
        self.endpoints[key] = ep
        return ep

    def climb(self, endpoint: "Endpoint", target_node: int, leaf_id: int) -> tuple[dict[int, float], dict[int, int]]:
        """Cached Algorithm 2: endpoint -> access doors of ``target_node``.

        Returns the ``(known, pred)`` maps of
        :meth:`IPTree.endpoint_distances`; callers must treat them as
        read-only (they are shared between queries).
        """
        key = (endpoint.key, target_node)
        hit = self.climbs.get(key)
        if hit is not None:
            self.climb_hits += 1
            return hit
        self.climb_misses += 1
        known, pred, _ = self.tree.endpoint_distances(
            endpoint, target_node, leaf_id=leaf_id, kernels=self.kernels
        )
        self.climbs[key] = (known, pred)
        return known, pred

    def search_state(self, endpoint: "Endpoint") -> dict[int, dict[int, float]]:
        """Cached node -> access-door distance maps for a kNN/range search
        (counted by ``search_hits``/``search_misses``).

        The first search from an endpoint pays the full root climb; the
        returned dict is shared with the search, which adds entries for
        every node it expands (Lemmas 8/9), so subsequent searches from
        the same endpoint reuse them.
        """
        key = endpoint.key
        state = self.searches.get(key)
        if state is not None:
            self.search_hits += 1
            return state
        self.search_misses += 1
        _, _, chain_map = self.tree.endpoint_distances(
            endpoint,
            self.tree.root_id,
            leaf_id=endpoint.leaves[0],
            collect_chain=True,
            kernels=self.kernels,
        )
        state = dict(chain_map)
        self.searches[key] = state
        return state
