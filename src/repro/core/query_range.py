"""Range queries (paper §3.4).

Identical branch-and-bound traversal to kNN with the pruning bound fixed
to the query radius: every object within indoor distance ``radius`` of
the query point is reported. Results sort by ``(distance, object_id)``.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from ..exceptions import QueryError
from .objects_index import ObjectIndex
from .query_knn import _Search, contributing_leaves
from .results import Neighbor, QueryStats

if TYPE_CHECKING:  # pragma: no cover
    from .context import QueryContext
    from .tree import IPTree


def range_query(
    tree: "IPTree",
    index: ObjectIndex,
    query,
    radius: float,
    ctx: "QueryContext | None" = None,
    kernels=None,
    stats: QueryStats | None = None,
    collect_leaves: bool = False,
) -> list[Neighbor]:
    """All objects within ``radius`` of ``query``, sorted by distance.

    ``stats`` is an optional out-parameter, as in
    :func:`~repro.core.query_knn.knn`; ``collect_leaves=True``
    additionally reports the radius-ball leaf closure in
    ``stats.result_leaves`` (see
    :func:`~repro.core.query_knn.contributing_leaves`).
    """
    if radius < 0:
        raise QueryError(f"radius must be non-negative, got {radius}")
    search = _Search(tree, index, query, ctx, kernels, stats,
                     collect_leaves=collect_leaves)
    if search.kernels is not None:
        # See query_knn.knn: eager array backends answer whole queries.
        full = getattr(search.kernels, "range_full", None)
        if full is not None:
            out = full(search, radius)
            if out is not None:
                return out
    stats = search.stats

    found: list[tuple[float, int]] = []
    heap: list[tuple[float, int]] = []
    if index.count(tree.root_id) > 0:
        heapq.heappush(heap, (0.0, tree.root_id))

    while heap:
        mind, nid = heapq.heappop(heap)
        stats.heap_pops += 1
        if mind > radius:
            break
        node = tree.nodes[nid]
        stats.nodes_visited += 1
        if node.is_leaf:
            for d, oid in search.leaf_object_distances(nid, radius):
                if d <= radius:
                    found.append((d, oid))
        else:
            for cid in node.children:
                if index.count(cid) == 0:
                    continue
                if cid in search.chain_pos:
                    child_min = 0.0
                else:
                    dists = search.child_distances(nid, cid)
                    child_min = min(dists.values(), default=float("inf"))
                if child_min <= radius:
                    heapq.heappush(heap, (child_min, cid))

    found.sort()
    if collect_leaves:
        stats.result_leaves = contributing_leaves(search, radius)
    return [Neighbor(object_id=oid, distance=d) for d, oid in found]
