"""Distance-matrix construction for IP-Tree nodes (paper §2.1.2, steps 3-4).

Leaf matrices are computed with Dijkstra expansions on the full D2D graph
(one per access door, stopped as soon as all leaf doors are settled).
Non-leaf matrices at level *l* are computed on the **level-l graph** G_l,
whose vertices are the access doors of the level-(l-1) nodes and whose
edges connect access doors of the same node, weighted by the already
computed level-(l-1) distances. Because leaf matrices come from the full
graph, all matrix distances are globally exact.

This module also derives the **superior doors** of each partition
(paper Definition 2) from the same Dijkstra shortest-path trees.
"""

from __future__ import annotations

from ..graph.adjacency import Graph
from ..graph.dijkstra import dijkstra
from ..model.indoor_space import IndoorSpace
from .table import NO_DOOR, DistanceTable


def _walk_to_source(parent: dict[int, int], start: int, source: int) -> list[int]:
    """Vertices after ``start`` on the tree path ``start -> source``.

    ``parent`` comes from a Dijkstra rooted at ``source`` (parents point
    toward the source), so the walk follows parent pointers directly. The
    returned list ends with ``source``.
    """
    seq = []
    cur = start
    while cur != source:
        cur = parent[cur]
        seq.append(cur)
    return seq


def _leaf_next_hop(
    seq: list[int],
    target: int,
    row_set: set[int],
    is_access: list[bool],
) -> int:
    """Next-hop door for a leaf-matrix entry (paper §2.1.1 / Example 6).

    ``seq`` lists the doors after the row door on the shortest path and
    ends with the access door ``target``. If the path stays inside the
    leaf, the next-hop is simply the first door; if it leaves the leaf,
    the next-hop is the first door that is an access door of *some* leaf
    (falling back to the first door when the whole detour stays inside a
    single neighbouring leaf — see DESIGN.md §4).
    """
    if seq[0] == target:
        return NO_DOOR  # direct edge: final
    if all(v in row_set for v in seq):
        return seq[0]
    for v in seq[:-1]:
        if is_access[v]:
            return v
    return seq[0]


def compute_leaf_tables(
    space: IndoorSpace,
    d2d: Graph,
    leaves: list[list[int]],
    leaf_access: list[list[int]],
    leaf_doors: list[list[int]],
    is_access: list[bool],
) -> tuple[list[DistanceTable], list[list[int]]]:
    """Build all leaf distance matrices and the per-partition superior doors.

    Returns:
        ``(tables, superior)`` where ``tables[i]`` is the matrix of leaf i
        and ``superior[pid]`` lists the superior doors of partition pid
        (sorted).
    """
    tables: list[DistanceTable] = []
    superior: list[list[int]] = [[] for _ in range(space.num_partitions)]

    for leaf_idx, leaf in enumerate(leaves):
        rows = leaf_doors[leaf_idx]
        cols = leaf_access[leaf_idx]
        table = DistanceTable(rows, cols)
        row_set = set(rows)
        parent_maps: dict[int, dict[int, int]] = {}

        for a in cols:
            dist, parent = dijkstra(d2d, a, targets=set(rows))
            parent_maps[a] = parent
            for di in rows:
                if di == a:
                    table.set_entry(di, a, 0.0, NO_DOOR)
                    continue
                seq = _walk_to_source(parent, di, a)
                table.set_entry(
                    di, a, dist[di], _leaf_next_hop(seq, a, row_set, is_access)
                )
        tables.append(table)

        # Superior doors (Definition 2), from the canonical shortest-path
        # trees: a door is superior iff it is a local access door, or the
        # tree path from it to some global access door contains no other
        # door of its partition.
        for pid in leaf:
            part_doors = space.partitions[pid].door_ids
            part_door_set = set(part_doors)
            local_access = [d for d in part_doors if d in table.col_index]
            global_access = [g for g in cols if g not in part_door_set]
            sup = set(local_access)
            if not cols:
                # Single-leaf venue with no exterior doors: no tree routing
                # ever happens, keep all doors for safety.
                sup = part_door_set
            else:
                for du in part_doors:
                    if du in sup:
                        continue
                    for g in global_access:
                        seq = _walk_to_source(parent_maps[g], du, g)
                        if not any(v in part_door_set for v in seq[:-1]):
                            sup.add(du)
                            break
            superior[pid] = sorted(sup)

    return tables, superior


def build_level_graph(
    num_doors: int,
    node_entries: list[tuple[list[int], DistanceTable]],
) -> Graph:
    """Build G_l from the level-(l-1) nodes (paper §2.1.2, step 4).

    Args:
        num_doors: total doors in the venue (vertex-id space).
        node_entries: ``(access_doors, table)`` per level-(l-1) node.

    Returns:
        A graph over door ids; an edge connects two doors iff they are
        access doors of the same level-(l-1) node, weighted by the exact
        distance from that node's matrix.
    """
    graph = Graph(num_doors)
    for access, table in node_entries:
        for i in range(len(access)):
            a = access[i]
            for j in range(i + 1, len(access)):
                b = access[j]
                graph.add_edge(a, b, table.distance(a, b))
    return graph


def compute_group_table(level_graph: Graph, matrix_doors: list[int]) -> DistanceTable:
    """Distance matrix of a non-leaf node.

    ``matrix_doors`` is the union of the children's access doors. For
    each door a Dijkstra expansion on G_l runs until all matrix doors are
    settled; the next-hop entry is the first G_l vertex on the path (an
    access door of a level-(l-1) node), or NULL for a direct G_l edge.
    """
    table = DistanceTable(matrix_doors, matrix_doors)
    door_set = set(matrix_doors)
    for x in matrix_doors:
        dist, parent = dijkstra(level_graph, x, targets=set(door_set))
        first_hop: dict[int, int] = {}
        for v in dist:  # settled in distance order: parents resolve first
            if v == x:
                continue
            p = parent[v]
            first_hop[v] = v if p == x else first_hop[p]
        for y in matrix_doors:
            if y == x:
                table.set_entry(x, y, 0.0, NO_DOOR)
                continue
            fh = first_hop[y]
            table.set_entry(x, y, dist[y], NO_DOOR if fh == y else fh)
    return table
