"""VIP-Tree: the Vivid IP-Tree (paper §2.2, §3.1.2, §3.3).

A VIP-Tree is an IP-Tree that additionally materializes, for every door
``d``, the distance and a next-hop hint to **every access door of every
ancestor node** of the leaves containing ``d``. This turns Algorithm 2's
O(hρ²) climb into an O(αρ) lookup and makes shortest-distance queries
O(ρ²) — matching the distance matrix while using
O(ρ²f²M + ρD·log_f M) storage instead of O(D²).
"""

from __future__ import annotations

import time

from ..graph.adjacency import Graph
from ..model.entities import DEFAULT_DELTA
from ..model.indoor_space import IndoorSpace
from .query_distance import Endpoint
from .results import PathResult
from .tree import DEFAULT_MIN_DEGREE, IPTree

INF = float("inf")

#: ``via`` sentinel: the target is an access door of the door's own leaf
#: (decompose directly through the leaf matrix).
VIA_BASE = -2
#: ``via`` sentinel: the door itself is the minimizing child access door
#: (the pair is access-to-access; decompose through the covering matrix).
VIA_SELF = -3


class VIPTree(IPTree):
    """IP-Tree plus per-door ancestor materialization."""

    index_name = "VIP-Tree"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: door -> {ancestor access door -> (distance, via)}
        self.vip_store: list[dict[int, tuple[float, int]]] = []

    @classmethod
    def build(
        cls,
        space: IndoorSpace,
        delta: int = DEFAULT_DELTA,
        t: int = DEFAULT_MIN_DEGREE,
        d2d: Graph | None = None,
        use_superior_doors: bool = True,
    ) -> "VIPTree":
        tree = super().build(
            space, delta=delta, t=t, d2d=d2d, use_superior_doors=use_superior_doors
        )
        start = time.perf_counter()
        tree._materialize()
        tree.build_seconds += time.perf_counter() - start
        return tree

    # ------------------------------------------------------------------
    def _materialize(self) -> None:
        """Compute the per-door ancestor tables bottom-up.

        For each door d and each leaf containing it, climb the ancestor
        chain with the Eq. (2) recurrence: distances to the access doors
        of the parent derive from the distances to the access doors of
        the child plus the parent's matrix. All quantities are exact
        because the matrices are exact (§2.1.2).
        """
        self.vip_store = [dict() for _ in range(self.space.num_doors)]
        for door in range(self.space.num_doors):
            store = self.vip_store[door]
            for leaf_id in self.leaf_nodes_of_door[door]:
                chain = self.chain_of_leaf(leaf_id)
                leaf = self.nodes[leaf_id]
                for a in leaf.access_doors:
                    if a not in store:
                        store[a] = (leaf.table.distance(door, a), VIA_BASE)
                child = leaf_id
                for parent in chain[1:]:
                    parent_node = self.nodes[parent]
                    table = parent_node.table
                    child_ad = self.nodes[child].access_doors
                    for a in parent_node.access_doors:
                        if a in store:
                            continue
                        best = INF
                        best_via = VIA_SELF
                        for di in child_ad:
                            d = store[di][0] + table.distance(di, a)
                            if d < best:
                                best = d
                                best_via = VIA_SELF if di == door else di
                        store[a] = (best, best_via)
                    child = parent

    # ------------------------------------------------------------------
    # Serialized state (snapshots, :mod:`repro.storage`)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """IP-Tree state plus the per-door ancestor materialization.

        The store is the bulk of a VIP-Tree snapshot, so it is flattened
        into four packed arrays (:mod:`repro.model.packing`): per-door
        entry counts, then the ``(ancestor access door, distance, via)``
        triples concatenated in door order, each door's entries sorted
        by access door for byte-stable snapshot hashes.
        """
        from ..model.packing import pack_f64, pack_i64

        state = super().to_state()
        counts: list[int] = []
        keys: list[int] = []
        dists: list[float] = []
        vias: list[int] = []
        for store in self.vip_store:
            counts.append(len(store))
            for a, (d, via) in sorted(store.items()):
                keys.append(a)
                dists.append(d)
                vias.append(via)
        state["vip"] = {
            "counts": pack_i64(counts),
            "keys": pack_i64(keys),
            "dist": pack_f64(dists),
            "via": pack_i64(vias),
        }
        return state

    @classmethod
    def from_state(cls, space: IndoorSpace, state: dict) -> "VIPTree":
        from ..model.packing import unpack_f64, unpack_i64

        tree = super().from_state(space, state)
        vip = state["vip"]
        keys = unpack_i64(vip["keys"])
        values = list(zip(unpack_f64(vip["dist"]), unpack_i64(vip["via"])))
        store: list[dict[int, tuple[float, int]]] = []
        pos = 0
        for count in unpack_i64(vip["counts"]):
            end = pos + count
            store.append(dict(zip(keys[pos:end], values[pos:end])))
            pos = end
        tree.vip_store = store
        return tree

    # ------------------------------------------------------------------
    def endpoint_distances(
        self,
        endpoint,
        target_node: int,
        leaf_id: int | None = None,
        collect_chain: bool = False,
        kernels=None,
    ):
        """O(αρ) replacement for Algorithm 2 (paper §3.1.2).

        ``dist(s, a) = min over superior doors du of dist(s, du) +
        materialized dist(du, a)`` — no climbing required. A kernels
        backend may provide a ``climb_vip`` hook to take over the climb
        (the numpy backend does not: at fixture ρ the python loop wins,
        and the array path vectorizes whole queries instead — see
        :mod:`repro.kernels`).
        """
        climb = getattr(kernels, "climb_vip", None)
        if climb is not None:
            return climb(self, endpoint, target_node, leaf_id, collect_chain)
        if leaf_id is None:
            leaf_id = endpoint.leaves[0]
        chain = self.chain_of_leaf(leaf_id)
        known: dict[int, float] = {}
        pred: dict[int, int] = {}
        chain_map: dict[int, dict[int, float]] = {}
        for nid in chain:
            node = self.nodes[nid]
            snapshot: dict[int, float] = {}
            for a in node.access_doors:
                if a not in known:
                    best = INF
                    best_entry = -1
                    for du in endpoint.entry_doors:
                        entry = self.vip_store[du].get(a)
                        if entry is None:
                            continue
                        d = endpoint.offsets[du] + entry[0]
                        if d < best:
                            best = d
                            best_entry = du
                    known[a] = best
                    pred[a] = best_entry
                snapshot[a] = known[a]
            if collect_chain:
                chain_map[nid] = snapshot
            if nid == target_node and not collect_chain:
                break
        return known, pred, chain_map

    # ------------------------------------------------------------------
    def decompose_to(self, door: int, access: int) -> list[int]:
        """Full door sequence ``door -> access`` using the materialized
        next-hop hints (paper §3.3).

        ``via`` chains down the ancestor levels; the final segments are
        expanded through the ordinary matrix decomposition.
        """
        from .query_path import decompose_edge

        seq = [door]
        cur_target = access
        # Unroll the via chain: door -> via_1 -> via_2 ... -> access.
        vias = []
        a = access
        while True:
            entry = self.vip_store[door].get(a)
            if entry is None:
                raise AssertionError(f"door {door} has no VIP entry for {a}")
            via = entry[1]
            if via in (VIA_BASE, VIA_SELF):
                break
            vias.append(a)
            a = via
        # Now `a` decomposes directly (leaf access or access-access pair).
        seq = decompose_edge(self, door, a)
        for nxt in reversed(vias):
            seg = decompose_edge(self, seq[-1], nxt)
            seq.extend(seg[1:])
        return seq

    def shortest_path(self, source, target, ctx=None) -> PathResult:
        """Shortest path via materialized tables (expected O(ρ² + w))."""
        from .query_distance import same_leaf_distance
        from .query_path import _dedupe, backtrack_chain, decompose_edge
        from .results import QueryStats

        if ctx is not None:
            ea = ctx.resolve(source)
            eb = ctx.resolve(target)
        else:
            ea = Endpoint(self, source)
            eb = Endpoint(self, target)
        stats = QueryStats()

        shared = set(ea.leaves) & set(eb.leaves)
        if shared:
            stats.same_leaf = True
            best, _, parent, best_door = same_leaf_distance(self, ea, eb)
            if best_door == -1:
                return PathResult(best, [], stats)
            if ea.is_door and eb.is_door and ea.door == eb.door:
                return PathResult(0.0, [ea.door], stats)
            return PathResult(best, _dedupe(backtrack_chain(parent, best_door)), stats)

        leaf_a, leaf_b = ea.leaves[0], eb.leaves[0]
        lca, ns, nt = self.lca_info(leaf_a, leaf_b)
        if ctx is not None:
            ds, pred_s = ctx.climb(ea, ns, leaf_a)
            dt, pred_t = ctx.climb(eb, nt, leaf_b)
        else:
            ds, pred_s, _ = self.endpoint_distances(ea, ns, leaf_id=leaf_a)
            dt, pred_t, _ = self.endpoint_distances(eb, nt, leaf_id=leaf_b)
        table = self.nodes[lca].table

        ad_s = self.nodes[ns].access_doors
        ad_t = self.nodes[nt].access_doors
        best = INF
        best_pair = (ad_s[0], ad_t[0])
        for di in ad_s:
            dsi = ds[di]
            if dsi >= best:
                continue
            for dj in ad_t:
                d = dsi + table.distance(di, dj) + dt[dj]
                if d < best:
                    best = d
                    best_pair = (di, dj)
        stats.pairs_considered = len(ad_s) * len(ad_t)
        stats.superior_pairs = len(ea.entry_doors) * len(eb.entry_doors)

        di, dj = best_pair
        s_doors = self.decompose_to(pred_s[di], di)  # entry_s ... di
        t_doors = self.decompose_to(pred_t[dj], dj)  # entry_t ... dj
        t_doors.reverse()  # dj ... entry_t
        mid = decompose_edge(self, di, dj)  # di ... dj
        doors = _dedupe(s_doors + mid[1:] + t_doors[1:])
        return PathResult(best, doors, stats)

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        total = super().memory_bytes()
        for store in self.vip_store:
            total += 24 * len(store)
        return total
