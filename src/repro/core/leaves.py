"""Leaf-node creation for the IP-Tree (paper §2.1.2, step 1).

Adjacent indoor partitions are merged into leaf nodes under two rules:

i.  A general partition adjacent to several hallways joins the hallway
    with the greatest number of common doors; ties prefer a same-floor
    hallway, then the lowest partition id (the paper breaks remaining
    ties arbitrarily — we pick deterministically).
ii. No leaf may contain more than one hallway, which keeps shortest
    distance/path queries between hallways out of single leaves and lets
    the tree structure do the work.

Merging proceeds until no partition can join a leaf without violating
rule ii. Partitions in hallway-free pockets (or venues with no hallway at
all) form their own leaves per connected pocket.
"""

from __future__ import annotations

from ..model.entities import DEFAULT_DELTA, PartitionCategory
from ..model.indoor_space import IndoorSpace


def build_leaves(space: IndoorSpace, delta: int = DEFAULT_DELTA) -> list[list[int]]:
    """Group partition ids into leaf nodes.

    Returns:
        A list of leaves; each leaf is a sorted list of partition ids.
        Every partition belongs to exactly one leaf.
    """
    num_parts = space.num_partitions
    leaf_of: list[int | None] = [None] * num_parts
    leaves: list[list[int]] = []

    # Every hallway seeds its own leaf (rule ii makes them pairwise
    # unmergeable).
    hallways = [
        pid
        for pid in range(num_parts)
        if space.category(pid, delta) is PartitionCategory.HALLWAY
    ]
    for pid in hallways:
        leaf_of[pid] = len(leaves)
        leaves.append([pid])

    # Rule i: non-hallway partitions adjacent to hallways join the hallway
    # with the most common doors (ties: same floor, then lowest hallway id).
    hallway_set = set(hallways)
    for pid in range(num_parts):
        if leaf_of[pid] is not None:
            continue
        best = None
        part_floor = space.partitions[pid].floor
        for neighbor, shared in sorted(space.adjacent_partitions(pid).items()):
            if neighbor not in hallway_set:
                continue
            same_floor = space.partitions[neighbor].floor == part_floor
            key = (len(shared), same_floor, -neighbor)
            if best is None or key > best[0]:
                best = (key, neighbor)
        if best is not None:
            leaf = leaf_of[best[1]]
            leaf_of[pid] = leaf
            leaves[leaf].append(pid)

    # Waves: partitions adjacent to an already-assigned partition join its
    # leaf, preferring the neighbour with the most common doors. Processing
    # in rounds keeps the result independent of iteration order within a
    # round.
    unassigned = [pid for pid in range(num_parts) if leaf_of[pid] is None]
    while unassigned:
        decisions: list[tuple[int, int]] = []
        for pid in unassigned:
            best = None
            part_floor = space.partitions[pid].floor
            for neighbor, shared in sorted(space.adjacent_partitions(pid).items()):
                leaf = leaf_of[neighbor]
                if leaf is None:
                    continue
                same_floor = space.partitions[neighbor].floor == part_floor
                key = (len(shared), same_floor, -neighbor)
                if best is None or key > best[0]:
                    best = (key, leaf)
            if best is not None:
                decisions.append((pid, best[1]))
        if not decisions:
            break
        for pid, leaf in decisions:
            leaf_of[pid] = leaf
            leaves[leaf].append(pid)
        unassigned = [pid for pid in unassigned if leaf_of[pid] is None]

    # Hallway-free pockets: one leaf per connected component.
    if unassigned:
        remaining = set(unassigned)
        for pid in unassigned:
            if leaf_of[pid] is not None:
                continue
            leaf = len(leaves)
            leaves.append([])
            stack = [pid]
            leaf_of[pid] = leaf
            while stack:
                cur = stack.pop()
                leaves[leaf].append(cur)
                for neighbor in space.adjacent_partitions(cur):
                    if neighbor in remaining and leaf_of[neighbor] is None:
                        leaf_of[neighbor] = leaf
                        stack.append(neighbor)

    return [sorted(leaf) for leaf in leaves if leaf]


def leaf_access_doors(space: IndoorSpace, leaves: list[list[int]]) -> list[list[int]]:
    """Access doors of each leaf (paper Definition 1).

    A door is an access door of a leaf when it connects the leaf to space
    outside of it: either its two partitions live in different leaves, or
    it is an exterior door (one adjacent partition — it opens to the
    outside world, e.g. the paper's d1/d7/d20).
    """
    leaf_of: dict[int, int] = {}
    for idx, leaf in enumerate(leaves):
        for pid in leaf:
            leaf_of[pid] = idx
    access: list[set[int]] = [set() for _ in leaves]
    for did, owners in enumerate(space.door_partitions):
        if len(owners) == 1:
            access[leaf_of[owners[0]]].add(did)
        else:
            la, lb = leaf_of[owners[0]], leaf_of[owners[1]]
            if la != lb:
                access[la].add(did)
                access[lb].add(did)
    return [sorted(a) for a in access]


def leaf_door_sets(space: IndoorSpace, leaves: list[list[int]]) -> list[list[int]]:
    """All doors attached to each leaf's partitions (matrix rows)."""
    result = []
    for leaf in leaves:
        doors: set[int] = set()
        for pid in leaf:
            doors.update(space.partitions[pid].door_ids)
        result.append(sorted(doors))
    return result
