"""k-nearest-neighbour queries (paper §3.4, Algorithm 5).

A best-first search over the tree: nodes are visited in order of
``mindist(q, N)`` and pruned against the current k-th neighbour
distance. The distances from q to the access doors of every visited node
are derived incrementally from the parent's distances via the paper's
Lemmas 8 and 9, so each node costs O(ρ²) instead of a full Algorithm 3
run.

Result-set semantics: the k nearest objects under the lexicographic
``(distance, object_id)`` order. Objects tied at the k-th distance are
therefore resolved deterministically — the smaller object id wins — and
the answer is identical across index kinds, kernels, and scan orders.

The inner loops (Lemma 8/9 door combination, access-list scans) have
array-at-a-time implementations in :mod:`repro.kernels`; pass
``kernels=`` to use them. The pure-python paths in this module are the
reference the kernels are asserted bit-identical against.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from ..exceptions import QueryError
from ..graph.dijkstra import dijkstra
from .objects_index import ObjectIndex
from .query_distance import Endpoint
from .results import Neighbor, QueryStats

if TYPE_CHECKING:  # pragma: no cover
    from .context import QueryContext
    from .tree import IPTree

INF = float("inf")


class _Search:
    """Shared machinery for kNN and range queries.

    With a :class:`QueryContext` the root climb and every previously
    expanded node's distances are shared across searches from the same
    endpoint (the search keeps growing the cached state as it expands
    new nodes).
    """

    def __init__(
        self,
        tree: "IPTree",
        index: ObjectIndex,
        query,
        ctx: "QueryContext | None" = None,
        kernels=None,
        stats: QueryStats | None = None,
        collect_leaves: bool = False,
    ) -> None:
        if index.tree is not tree:
            raise QueryError("object index was built for a different tree")
        if kernels is None and ctx is not None:
            kernels = ctx.kernels
        self.tree = tree
        self.index = index
        self.kernels = kernels
        self.endpoint = ctx.resolve(query) if ctx is not None else Endpoint(tree, query)
        self.leaf_q = self.endpoint.leaves[0]
        self.chain = tree.chain_of_leaf(self.leaf_q)
        self.chain_pos = {nid: i for i, nid in enumerate(self.chain)}
        # Distances from q to the access doors of every chain node
        # (Algorithm 5 line 2: getDistances(q, root)).
        if ctx is not None:
            self.node_dists: dict[int, dict[int, float]] = ctx.search_state(self.endpoint)
        else:
            _, _, chain_map = tree.endpoint_distances(
                self.endpoint,
                tree.root_id,
                leaf_id=self.leaf_q,
                collect_chain=True,
                kernels=kernels,
            )
            self.node_dists = dict(chain_map)
        # An out-parameter when the caller wants the counters (the
        # engine's stats= plumbing); otherwise a private scratch object.
        self.stats = stats if stats is not None else QueryStats()
        #: when True the search reports the conservative bound-ball leaf
        #: closure of its answer in ``stats.result_leaves`` (the engine's
        #: leaf-scoped cache invalidation reads it)
        self.collect_leaves = collect_leaves

    # ------------------------------------------------------------------
    def child_distances(self, parent_id: int, child_id: int) -> dict[int, float]:
        """Lemmas 8/9: distances from q to ``AD(child)`` via the parent.

        When the parent contains q, the source set is the parent's child
        on the query chain (Lemma 8, siblings); otherwise the parent's
        own access doors (Lemma 9). Both use the parent's matrix.
        """
        cached = self.node_dists.get(child_id)
        if cached is not None:
            return cached
        if self.kernels is not None:
            dists = self.kernels.child_distances(self, parent_id, child_id)
            self.node_dists[child_id] = dists
            return dists
        parent = self.tree.nodes[parent_id]
        pos = self.chain_pos.get(parent_id)
        if pos is not None and pos > 0:
            source = self.node_dists[self.chain[pos - 1]]
        else:
            source = self.node_dists[parent_id]
        table = parent.table
        child_ad = self.tree.nodes[child_id].access_doors
        dists = {}
        for a in child_ad:
            best = INF
            for d, dd in source.items():
                v = dd + table.distance(d, a)
                if v < best:
                    best = v
            dists[a] = best
        self.node_dists[child_id] = dists
        return dists

    def leaf_object_distances(self, leaf_id: int, bound):
        """Exact object distances for one leaf, pruned by ``bound``.

        ``bound`` is either a float or a zero-argument callable returning
        the *live* pruning bound; kNN passes its ``dk`` closure so the
        bound keeps tightening mid-leaf as results are offered.

        Yields ``(distance, object_id)`` pairs in ascending
        ``(distance, object_id)`` order for non-query leaves (the query
        leaf's Dijkstra branch is unordered). Every yielded distance is
        the object's exact minimum over all access doors, so consumers
        may tighten the bound immediately. The leaf containing q is
        handled exactly with a Dijkstra expansion on the D2D graph;
        other leaves merge the per-door sorted object lists by ascending
        total distance and stop once the smallest outstanding total
        exceeds the bound (entries *equal* to the bound are kept — ties
        at the k-th distance must reach the caller).
        """
        if not callable(bound):
            fixed = bound
            bound = lambda: fixed  # noqa: E731
        tree = self.tree
        index = self.index
        oids = index.objects_in_leaf(leaf_id)
        if not oids:
            return
        if leaf_id == self.leaf_q:
            space = tree.space
            targets: set[int] = set()
            parts = {index.objects[oid].location.partition_id for oid in oids}
            for pid in parts:
                targets.update(space.partitions[pid].door_ids)
            dist, _ = dijkstra(tree.d2d, dict(self.endpoint.offsets), targets=targets)
            for oid in oids:
                obj = index.objects[oid]
                pid = obj.location.partition_id
                best = INF
                for dv in space.partitions[pid].door_ids:
                    d = dist.get(dv, INF) + space.point_to_door_distance(obj.location, dv)
                    if d < best:
                        best = d
                if (
                    not self.endpoint.is_door
                    and pid == self.endpoint.partition
                ):
                    direct = space.direct_point_distance(self.endpoint.point, obj.location)
                    if direct < best:
                        best = direct
                if best <= bound():
                    yield best, oid
        else:
            dq = self.node_dists[leaf_id]
            if self.kernels is not None:
                yield from self.kernels.leaf_objects(self, leaf_id, dq, bound, self.stats)
                return
            # k-way merge of the per-door sorted lists by ascending total
            # distance. The first time an object id surfaces, that total
            # is its exact minimum (all later occurrences are >=), so it
            # can be yielded immediately and the caller's bound tightens
            # before the next pop.
            lists = index.access_lists[leaf_id]
            stats = self.stats
            seqs = []
            bases = []
            heap: list[tuple[float, int, int, int]] = []
            for si, (a, base) in enumerate(dq.items()):
                lst = lists[a]
                seqs.append(lst)
                bases.append(base)
                if lst:
                    d0, o0 = lst[0]
                    heap.append((base + d0, o0, si, 0))
            heapq.heapify(heap)
            seen: set[int] = set()
            while heap:
                total, oid, si, i = heapq.heappop(heap)
                if total > bound():
                    break
                stats.list_entries_scanned += 1
                if oid not in seen:
                    seen.add(oid)
                    yield total, oid
                i += 1
                lst = seqs[si]
                if i < len(lst):
                    d, o = lst[i]
                    heapq.heappush(heap, (bases[si] + d, o, si, i))


def contributing_leaves(search: _Search, bound: float) -> frozenset:
    """The conservative bound-ball leaf closure of a finished search:
    every leaf ``L`` with ``mindist(q, L) <= bound``, plus the query
    leaf (whose mindist is 0 by containment).

    This is the invalidation contract behind the engine's leaf-scoped
    result caches: an object anywhere else is at distance strictly
    greater than ``bound``, so inserting/deleting/moving it cannot
    change any answer whose pruning bound was ``bound`` (kNN ties at
    the k-th distance included — ``<=`` keeps the boundary leaf).
    The closure walks the tree top-down with the same Lemma 8/9 float
    arithmetic as the search itself (``mindist`` is monotone
    non-increasing toward the root, so pruned subtrees contain no
    qualifying leaf), but *without* the object-count pruning: leaves
    that are empty today still receive tomorrow's inserts.
    """
    tree = search.tree
    leaves = {search.leaf_q}
    stack = [tree.root_id]
    while stack:
        nid = stack.pop()
        node = tree.nodes[nid]
        if node.is_leaf:
            leaves.add(nid)
            continue
        for cid in node.children:
            if cid in search.chain_pos:
                stack.append(cid)  # contains q: mindist is 0
                continue
            dists = search.child_distances(nid, cid)
            if min(dists.values(), default=INF) <= bound:
                stack.append(cid)
    return frozenset(leaves)


def knn(
    tree: "IPTree",
    index: ObjectIndex,
    query,
    k: int,
    ctx: "QueryContext | None" = None,
    kernels=None,
    stats: QueryStats | None = None,
    collect_leaves: bool = False,
) -> list[Neighbor]:
    """Algorithm 5: the k nearest objects to ``query`` by indoor distance.

    Ties at the k-th distance break on the smaller ``object_id`` (the
    result set is the k lexicographically smallest ``(distance,
    object_id)`` pairs), matching the brute-force oracle exactly.
    ``stats`` is an optional out-parameter: pass a
    :class:`~repro.core.results.QueryStats` to have the search count
    its work into it.
    """
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    search = _Search(tree, index, query, ctx, kernels, stats,
                     collect_leaves=collect_leaves)
    if search.kernels is not None:
        # Array backends may answer the whole query eagerly (every
        # node's distances in a few level-batched ops) instead of
        # best-first; the result set is identical because the per-object
        # distances are the same floats and both select the k
        # lexicographically smallest (distance, object_id) pairs.
        full = getattr(search.kernels, "knn_full", None)
        if full is not None:
            out = full(search, k)
            if out is not None:
                return out
    stats = search.stats

    # Max-heap via negation of both fields: results[0] is the current
    # *worst* kept pair under the (distance, object_id) order.
    results: list[tuple[float, int]] = []

    def dk() -> float:
        return -results[0][0] if len(results) >= k else INF

    def offer(d: float, oid: int) -> None:
        if len(results) < k:
            heapq.heappush(results, (-d, -oid))
            return
        cand = (-d, -oid)
        if cand > results[0]:
            heapq.heapreplace(results, cand)

    heap: list[tuple[float, int]] = []
    if index.count(tree.root_id) > 0:
        heapq.heappush(heap, (0.0, tree.root_id))

    while heap:
        mind, nid = heapq.heappop(heap)
        stats.heap_pops += 1
        if mind > dk():
            break
        node = tree.nodes[nid]
        stats.nodes_visited += 1
        if node.is_leaf:
            # Pass the live dk closure (not its current value): offer()
            # tightens the bound mid-leaf, so later access-list entries
            # in the same leaf are pruned earlier.
            for d, oid in search.leaf_object_distances(nid, dk):
                offer(d, oid)
        else:
            for cid in node.children:
                if index.count(cid) == 0:
                    continue
                if cid in search.chain_pos:
                    child_min = 0.0
                else:
                    dists = search.child_distances(nid, cid)
                    child_min = min(dists.values(), default=INF)
                if child_min <= dk():
                    heapq.heappush(heap, (child_min, cid))

    out = sorted(((-nd, -noid) for nd, noid in results))
    if collect_leaves:
        # With fewer than k results every leaf could still contribute
        # (the effective bound is infinite) — None tags the answer as
        # depending on all leaves.
        stats.result_leaves = (
            contributing_leaves(search, out[-1][0]) if len(out) >= k else None
        )
    return [Neighbor(object_id=oid, distance=d) for d, oid in out]
