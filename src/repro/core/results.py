"""Result and statistics containers for query processing."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class QueryStats:
    """Work counters exposed for the paper's Fig 9(a) style analyses."""

    #: door pairs combined at the LCA (|AD(Ns)| x |AD(Nt)|)
    pairs_considered: int = 0
    #: superior-door pairs considered at the endpoints (VIP-Tree metric
    #: reported in Fig 9(a))
    superior_pairs: int = 0
    #: tree nodes touched (kNN/range)
    nodes_visited: int = 0
    #: priority-queue pops (kNN/range/Dijkstra fallbacks)
    heap_pops: int = 0
    #: access-list entries examined while combining leaf objects
    #: (kNN/range); the live pruning bound shrinks this as results
    #: tighten mid-leaf
    list_entries_scanned: int = 0
    #: True when the query was answered by the same-leaf Dijkstra fallback
    same_leaf: bool = False
    #: True when the engine answered from its result/distance cache
    #: (the other counters then describe zero work — the cached entry's
    #: original cost was counted when it was computed)
    cache_hit: bool = False
    #: the conservative set of leaf ids whose objects could have
    #: contributed to a kNN/range answer (the bound-ball closure),
    #: captured only when the search is asked to (``collect_leaves=``);
    #: ``None`` means "not captured" / "depends on every leaf". Engine-
    #: internal — the wire stats document does not carry it.
    result_leaves: frozenset | None = None

    def merge(self, other: "QueryStats") -> "QueryStats":
        """Fold ``other``'s work into this object (counters add, flags
        or): the accumulation primitive behind the engine's ``stats=``
        out-parameters and batch totals. Returns ``self``.

        ``result_leaves`` is per-answer state, not a counter: merging
        keeps the union only when both sides captured a set, and
        poisons to ``None`` (conservative "all leaves") otherwise.
        """
        self.pairs_considered += other.pairs_considered
        self.superior_pairs += other.superior_pairs
        self.nodes_visited += other.nodes_visited
        self.heap_pops += other.heap_pops
        self.list_entries_scanned += other.list_entries_scanned
        self.same_leaf = self.same_leaf or other.same_leaf
        self.cache_hit = self.cache_hit or other.cache_hit
        if self.result_leaves is None or other.result_leaves is None:
            self.result_leaves = None
        else:
            self.result_leaves = self.result_leaves | other.result_leaves
        return self


@dataclass(slots=True)
class DistanceResult:
    """Outcome of a shortest-distance query."""

    distance: float
    stats: QueryStats = field(default_factory=QueryStats)


@dataclass(slots=True)
class PathResult:
    """Outcome of a shortest-path query.

    ``doors`` is the ordered door sequence from source to target
    (excluding the endpoints themselves, which are arbitrary indoor
    points or doors). The path semantics: walk from the source to
    ``doors[0]`` inside the source partition, then door to door (each
    consecutive pair shares a partition), then from ``doors[-1]`` to the
    target.
    """

    distance: float
    doors: list[int]
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def num_hops(self) -> int:
        return len(self.doors)


@dataclass(slots=True)
class Neighbor:
    """One kNN / range result: object id with its exact indoor distance."""

    object_id: int
    distance: float
