"""Node merging — Algorithm 1 of the paper (§2.1.2, step 2).

Nodes at level *l* are merged into nodes at level *l+1* such that each
new node has at least ``t`` children (the tree's minimum degree):

* a min-heap orders nodes by *degree* (number of level-l nodes absorbed
  so far), tie-broken by the number of adjacent nodes — nodes with fewer
  potential partners merge first, exactly as the paper motivates with N1
  and N4 of the running example;
* a de-heaped node merges with the node sharing the **most common access
  doors**, which minimizes the access-door count of the parent
  (``|AD(Ni)| + |AD(Nj)| - 2|AD(Ni) ∩ AD(Nj)|``);
* merging stops when the smallest node already has degree >= t.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..exceptions import ConstructionError


@dataclass(slots=True)
class MergeCandidate:
    """A node participating in one round of Algorithm 1."""

    item_id: int
    #: ids of the level-l nodes merged into this candidate (its children).
    members: list[int]
    #: current access doors of the merged region.
    access_doors: frozenset[int]
    #: number of level-l nodes contained (the paper's "degree").
    degree: int = 1
    alive: bool = True
    version: int = 0
    extra: dict = field(default_factory=dict)


def create_next_level(
    access_door_sets: list[frozenset[int]],
    exterior_doors: frozenset[int],
    t: int,
) -> list[list[int]]:
    """One round of Algorithm 1.

    Args:
        access_door_sets: ``AD(Ni)`` for each node at the current level
            (index = node position).
        exterior_doors: doors opening to the outside world; they remain
            access doors of every merged region and are never cancelled
            by a merge.
        t: minimum degree (minimum number of children per new node).

    Returns:
        Groups of current-level node indices; each group becomes one node
        of the next level. Raises :class:`ConstructionError` for t < 2.
    """
    if t < 2:
        raise ConstructionError(f"minimum degree t must be >= 2, got {t}")
    n = len(access_door_sets)
    if n <= 1:
        return [[i] for i in range(n)]

    candidates: list[MergeCandidate] = [
        MergeCandidate(item_id=i, members=[i], access_doors=frozenset(ads))
        for i, ads in enumerate(access_door_sets)
    ]
    # door -> set of alive candidate ids whose AD contains the door
    door_owners: dict[int, set[int]] = {}
    for cand in candidates:
        for d in cand.access_doors:
            door_owners.setdefault(d, set()).add(cand.item_id)

    def adjacency_count(cand: MergeCandidate) -> int:
        partners: set[int] = set()
        for d in cand.access_doors:
            partners.update(door_owners.get(d, ()))
        partners.discard(cand.item_id)
        return len(partners)

    heap: list[tuple[int, int, int, int]] = []

    def push(cand: MergeCandidate) -> None:
        heapq.heappush(
            heap, (cand.degree, adjacency_count(cand), cand.item_id, cand.version)
        )

    for cand in candidates:
        push(cand)

    by_id: dict[int, MergeCandidate] = {c.item_id: c for c in candidates}
    next_id = n
    alive_count = n

    while heap and alive_count > 1:
        degree, _, item_id, version = heap[0]
        cand = by_id.get(item_id)
        if cand is None or not cand.alive or cand.version != version:
            heapq.heappop(heap)
            continue
        if degree >= t:
            break  # every remaining node already has >= t children
        heapq.heappop(heap)

        # Partner with the highest number of common access doors.
        overlap: dict[int, int] = {}
        for d in cand.access_doors:
            for other_id in door_owners.get(d, ()):
                if other_id != item_id:
                    overlap[other_id] = overlap.get(other_id, 0) + 1
        if not overlap:
            # Isolated region (only exterior doors). Finalize it as its
            # own next-level node by boosting its degree past t.
            cand.degree = t
            cand.version += 1
            push(cand)
            continue
        partner_id = max(overlap, key=lambda oid: (overlap[oid], -oid))
        partner = by_id[partner_id]

        # Merge `cand` and `partner`: common non-exterior access doors
        # become interior (they now connect two sub-regions of the same
        # node).
        common = cand.access_doors & partner.access_doors
        cancelled = common - exterior_doors
        merged_access = (cand.access_doors | partner.access_doors) - cancelled

        for old in (cand, partner):
            old.alive = False
            for d in old.access_doors:
                owners = door_owners.get(d)
                if owners is not None:
                    owners.discard(old.item_id)
        del by_id[cand.item_id]
        del by_id[partner.item_id]
        alive_count -= 1  # two died, one born

        merged = MergeCandidate(
            item_id=next_id,
            members=cand.members + partner.members,
            access_doors=merged_access,
            degree=cand.degree + partner.degree,
        )
        next_id += 1
        by_id[merged.item_id] = merged
        for d in merged.access_doors:
            door_owners.setdefault(d, set()).add(merged.item_id)
        push(merged)

    groups = [sorted(c.members) for c in by_id.values() if c.alive]
    groups.sort()
    return groups


def merged_access_doors(
    access_door_sets: list[frozenset[int]],
    exterior_doors: frozenset[int],
    group: list[int],
) -> frozenset[int]:
    """Access doors of a merged group of nodes.

    A door stays an access door iff it is exterior or it appears in
    exactly one member's AD set (doors shared by two members become
    interior — a door belongs to at most two leaves, hence to at most two
    members).
    """
    counts: dict[int, int] = {}
    for idx in group:
        for d in access_door_sets[idx]:
            counts[d] = counts.get(d, 0) + 1
    return frozenset(
        d for d, c in counts.items() if c == 1 or d in exterior_doors
    )
