"""Per-venue admission control: token buckets + queue-depth shedding.

One pathological venue — a buggy client in a tight loop, a stadium
event, a scraper — must not starve every other tenant of the cluster.
The :class:`AdmissionController` sits in front of
:meth:`ClusterFrontend.submit
<repro.serving.cluster.ClusterFrontend.submit>` and applies two
per-venue policies, keyed by venue fingerprint:

* **Token-bucket rate limiting** (:class:`TokenBucket`) — each venue
  holds up to ``burst`` tokens, refilled continuously at ``rate``
  tokens/second; an engine-backed request costs one token. A venue
  that outruns its refill is **shed**: the request is rejected with a
  typed :class:`~repro.exceptions.OverloadedError` carrying the exact
  ``retry_after`` horizon (seconds until the bucket next holds a
  token), *before* any shard work happens.
* **Queue-depth shedding** — each venue is bounded to
  ``max_queue_depth`` concurrently in-flight requests. A venue whose
  clients pile up faster than its shard answers gets shed instead of
  filling the shard's shared in-flight window — which is the exact
  mechanism by which one hot venue would otherwise add *its* queueing
  delay to everyone else's p99.

Rejected requests are never executed (rejected and answered are
mutually exclusive — a hypothesis-tested invariant), and admitted
requests must be :meth:`~AdmissionController.release`-d exactly once
when their work settles (the cluster wires this to the request future).

Per-venue state is bounded: with ``idle_timeout`` set, venues with no
admit/release activity past that horizon (and nothing in flight) are
evicted by an amortized sweep piggy-backed on ``admit``, so a
venue-churn workload — many fingerprints seen once — cannot grow the
state dict without bound. A returning venue simply starts fresh (full
bucket, zeroed counters).

Observability: given a ``registry``, the controller exports
``admission_admitted_total{venue=...}``,
``admission_rejected_total{venue=..., reason=rate|depth}`` and an
``admission_queue_depth{venue=...}`` gauge — venue labels are the
fingerprint's first 12 hex chars, matching log/diagnostic shorthand
elsewhere. They surface in ``/metrics`` through the cluster's merged
snapshot.

Time is injectable (``clock``) so property tests drive deterministic
arrival schedules; production uses :func:`time.monotonic`.
"""

from __future__ import annotations

import threading
import time

from ..exceptions import OverloadedError
from ..obs import MetricsRegistry

__all__ = ["AdmissionController", "AdmissionStats", "TokenBucket"]

#: how venue fingerprints appear in metric labels and error messages
_LABEL_CHARS = 12


class TokenBucket:
    """A continuously refilling token bucket (not thread-safe on its
    own — the controller serializes access under its mutex).

    Holds at most ``burst`` tokens; :meth:`try_acquire` takes one if
    available, else reports how long until one accrues. Conservation:
    over any window of ``t`` seconds, at most ``burst + rate * t``
    acquisitions can succeed — the hypothesis-tested bound.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, *, now: float) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = float(now)

    def _refill(self, now: float) -> None:
        # A backwards clock step (never with time.monotonic; possible
        # with test clocks) must not mint tokens.
        elapsed = now - self.updated
        if elapsed > 0.0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = max(self.updated, now)

    def try_acquire(self, now: float) -> float:
        """Take one token; returns ``0.0`` on success, else the
        seconds until the bucket next holds a full token (the
        retry-after hint)."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class AdmissionStats:
    """Point-in-time controller counters (all monotone except
    ``in_flight``)."""

    __slots__ = ("admitted", "rejected_rate", "rejected_depth", "in_flight")

    def __init__(self, admitted: int, rejected_rate: int,
                 rejected_depth: int, in_flight: int) -> None:
        self.admitted = admitted
        self.rejected_rate = rejected_rate
        self.rejected_depth = rejected_depth
        self.in_flight = in_flight

    @property
    def rejected(self) -> int:
        return self.rejected_rate + self.rejected_depth

    def to_doc(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected_rate": self.rejected_rate,
            "rejected_depth": self.rejected_depth,
            "rejected": self.rejected,
            "in_flight": self.in_flight,
        }


class _VenueState:
    __slots__ = ("bucket", "depth", "admitted", "rejected_rate",
                 "rejected_depth", "last_seen")

    def __init__(self, bucket: TokenBucket | None, *, now: float) -> None:
        self.bucket = bucket
        self.depth = 0
        self.admitted = 0
        self.rejected_rate = 0
        self.rejected_depth = 0
        #: last admit/release activity — the idle-eviction clock
        self.last_seen = now


class AdmissionController:
    """Admit or shed requests per venue; thread-safe.

    Args:
        rate: per-venue token refill in requests/second; ``None``
            disables rate limiting (depth shedding may still apply).
        burst: per-venue bucket capacity. Defaults to ``2 * rate``
            (floored at 1): a venue may briefly double its sustained
            rate, which absorbs ordinary batch arrivals without
            admitting a flood.
        max_queue_depth: per-venue bound on concurrently in-flight
            admitted requests; ``None`` disables depth shedding.
        idle_timeout: evict a venue's bucket/depth/counters after this
            many seconds with no admit/release activity and nothing in
            flight (sweep amortized onto ``admit``, at most once per
            quarter horizon). ``None`` (default) keeps every venue
            forever — the pre-eviction behaviour.
        registry: optional :class:`~repro.obs.MetricsRegistry` the
            admission counters and depth gauges are exported through.
        clock: monotonic time source (injectable for tests).

    At least one of ``rate``/``max_queue_depth`` must be set — a
    controller that can never shed is a configuration error, not a
    policy.
    """

    def __init__(
        self,
        *,
        rate: float | None = None,
        burst: float | None = None,
        max_queue_depth: int | None = None,
        idle_timeout: float | None = None,
        registry: MetricsRegistry | None = None,
        clock=time.monotonic,
    ) -> None:
        if rate is None and max_queue_depth is None:
            raise ValueError(
                "admission control needs a policy: set rate (token bucket) "
                "and/or max_queue_depth (queue-depth shedding)"
            )
        if rate is not None and rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst is not None and rate is None:
            raise ValueError("burst without rate has no meaning")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.rate = None if rate is None else float(rate)
        self.burst = (
            None if rate is None
            else max(1.0, float(burst) if burst is not None else 2.0 * rate)
        )
        self.max_queue_depth = (
            None if max_queue_depth is None else int(max_queue_depth)
        )
        if idle_timeout is not None and idle_timeout <= 0.0:
            raise ValueError(f"idle_timeout must be > 0, got {idle_timeout}")
        self.idle_timeout = None if idle_timeout is None else float(idle_timeout)
        self.registry = registry
        self._clock = clock
        self._mutex = threading.Lock()
        self._venues: dict[str, _VenueState] = {}
        self._next_sweep = (
            clock() + self.idle_timeout / 4.0
            if self.idle_timeout is not None else 0.0
        )

    # ------------------------------------------------------------------
    def _state(self, venue: str, now: float) -> _VenueState:
        state = self._venues.get(venue)
        if state is None:
            bucket = (
                TokenBucket(self.rate, self.burst, now=now)
                if self.rate is not None else None
            )
            state = self._venues[venue] = _VenueState(bucket, now=now)
        return state

    def _sweep_idle_locked(self, now: float) -> int:
        """Evict venues idle past the horizon with nothing in flight.
        In-flight venues (``depth > 0``) are never evicted — their
        release obligation must keep finding the state."""
        horizon = now - self.idle_timeout
        victims = [
            venue for venue, state in self._venues.items()
            if state.depth == 0 and state.last_seen <= horizon
        ]
        for venue in victims:
            del self._venues[venue]
        self._next_sweep = now + self.idle_timeout / 4.0
        return len(victims)

    def evict_idle(self) -> int:
        """Run one idle sweep now; returns the number of venues
        evicted (0 when ``idle_timeout`` is unset)."""
        if self.idle_timeout is None:
            return 0
        with self._mutex:
            return self._sweep_idle_locked(self._clock())

    def _label(self, venue: str) -> str:
        return venue[:_LABEL_CHARS]

    def _observe_depth(self, venue: str, depth: int) -> None:
        if self.registry is not None:
            self.registry.gauge(
                "admission_queue_depth", agg="sum", venue=self._label(venue)
            ).set(float(depth))

    def _count_rejection(self, venue: str, reason: str) -> None:
        if self.registry is not None:
            self.registry.counter(
                "admission_rejected_total",
                venue=self._label(venue), reason=reason,
            ).inc()

    # ------------------------------------------------------------------
    def admit(self, venue: str) -> None:
        """Admit one request for ``venue`` or raise
        :class:`~repro.exceptions.OverloadedError`.

        On success the venue's in-flight depth grows by one and the
        caller **owns a release obligation**: call :meth:`release`
        exactly once when the request settles (success or failure).
        Rejections consume nothing — a shed request leaves the bucket
        and the depth exactly as they were.
        """
        with self._mutex:
            now = self._clock()
            if self.idle_timeout is not None and now >= self._next_sweep:
                self._sweep_idle_locked(now)
            state = self._state(venue, now)
            state.last_seen = now
            if (self.max_queue_depth is not None
                    and state.depth >= self.max_queue_depth):
                state.rejected_depth += 1
                depth = state.depth
                self._count_rejection(venue, "depth")
                raise OverloadedError(
                    f"venue {self._label(venue)!r} overloaded: {depth} "
                    f"requests already in flight (bound {self.max_queue_depth})"
                )
            if state.bucket is not None:
                retry_after = state.bucket.try_acquire(now)
                if retry_after > 0.0:
                    state.rejected_rate += 1
                    self._count_rejection(venue, "rate")
                    raise OverloadedError(
                        f"venue {self._label(venue)!r} overloaded: rate "
                        f"allowance exhausted ({self.rate:g}/s, burst "
                        f"{self.burst:g}) — retry in {retry_after:.3f}s",
                        retry_after=retry_after,
                    )
            state.depth += 1
            state.admitted += 1
            depth = state.depth
        if self.registry is not None:
            self.registry.counter(
                "admission_admitted_total", venue=self._label(venue)).inc()
        self._observe_depth(venue, depth)

    def release(self, venue: str) -> None:
        """Settle one previously admitted request for ``venue``."""
        with self._mutex:
            state = self._venues.get(venue)
            if state is None or state.depth <= 0:  # pragma: no cover - misuse
                raise ValueError(
                    f"release without a matching admit for venue "
                    f"{self._label(venue)!r}"
                )
            state.depth -= 1
            state.last_seen = self._clock()
            depth = state.depth
        self._observe_depth(venue, depth)

    # ------------------------------------------------------------------
    def depth(self, venue: str) -> int:
        """Current in-flight count of ``venue`` (0 for unseen venues)."""
        with self._mutex:
            state = self._venues.get(venue)
            return 0 if state is None else state.depth

    def stats(self, venue: str) -> AdmissionStats:
        """One venue's admission counters (zeros for unseen venues)."""
        with self._mutex:
            state = self._venues.get(venue)
            if state is None:
                return AdmissionStats(0, 0, 0, 0)
            return AdmissionStats(state.admitted, state.rejected_rate,
                                  state.rejected_depth, state.depth)

    def stats_by_venue(self) -> dict[str, dict]:
        """Every seen venue's counters, keyed by full venue id."""
        with self._mutex:
            return {
                venue: AdmissionStats(
                    s.admitted, s.rejected_rate, s.rejected_depth, s.depth
                ).to_doc()
                for venue, s in self._venues.items()
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionController(rate={self.rate}, burst={self.burst}, "
            f"max_queue_depth={self.max_queue_depth}, "
            f"idle_timeout={self.idle_timeout}, venues={len(self._venues)})"
        )
