"""ServingFrontend: the in-thread transport of the serving protocol.

The frontend is the single-process entry point of the serving layer:
callers :meth:`~ServingFrontend.submit` venue-tagged
:class:`~repro.serving.protocol.Request` objects (the *same* request
shape the shard-socket and cluster transports speak) and receive a
:class:`concurrent.futures.Future` per request; a fixed pool of worker
threads drains the queue through
:meth:`VenueRouter.execute <repro.serving.router.VenueRouter.execute>`.
Nothing is serialized on this path — requests stay in-process — but
because the protocol round-trips losslessly, swapping this frontend
for a :class:`~repro.serving.cluster.ClusterFrontend` changes the
transport, not the answers.

Design points:

* **Backpressure** — the request queue is bounded
  (``queue_size``); ``submit`` blocks while it is full and raises
  :class:`~repro.exceptions.ServingError` after ``timeout`` seconds,
  so a slow consumer surfaces as latency (then an error), never as
  unbounded memory growth.
* **Per-request futures** — results, exceptions included, travel
  through the future; a failing request never kills a worker.
* **Graceful drain/shutdown** — :meth:`drain` blocks until every
  queued request has completed; :meth:`shutdown` stops intake,
  optionally drains, then joins the workers. Requests submitted after
  shutdown (or cancelled while queued) fail fast.

Thread safety: every public method may be called from any thread.
``submit`` is the only producer-side blocking point; workers only block
on the queue. The frontend takes no engine or router locks itself —
lock ordering is documented in ``docs/serving.md``.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from time import perf_counter

from ..exceptions import ServingError
from ..obs import MetricsRegistry, StatsDoc, counter_entry, gauge_entry
from .router import ServingRequest, VenueRouter

#: queue sentinel telling a worker to exit (one per worker)
_STOP = object()


def _collect_frontend_stats(frontend: "ServingFrontend"):
    """Registry collector: frontend counters as metric fragments."""
    s = frontend.stats()
    yield counter_entry("frontend_submitted_total", s.submitted)
    yield counter_entry("frontend_completed_total", s.completed)
    yield counter_entry("frontend_failed_total", s.failed)
    yield counter_entry("frontend_rejected_total", s.rejected)
    yield gauge_entry("frontend_queued", float(s.queued), agg="sum")


@dataclass(slots=True)
class FrontendStats(StatsDoc):
    """Point-in-time frontend counters.

    ``submitted``/``completed``/``failed``/``rejected`` are monotone;
    ``queued`` is the current queue depth (in-flight requests are
    ``submitted - completed - failed - queued``).
    """

    workers: int = 0
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    queued: int = 0


class ServingFrontend:
    """Serve a :class:`VenueRouter` with a pool of worker threads.

    Args:
        router: the multi-venue dispatcher requests are executed on.
            Anything with an ``execute(request)`` method works (tests
            and benchmarks wrap routers to inject latency or faults).
        workers: worker-thread count. With CPython's GIL, CPU-bound
            query evaluation does not parallelize across workers —
            extra workers buy *overlap* of the blocking parts of a
            request (I/O, lock waits, downstream calls) and isolation
            between venues; see ``docs/serving.md``.
        queue_size: bound of the request queue (the backpressure knob).
            ``0`` means unbounded (no backpressure — discouraged).
        registry: optional :class:`~repro.obs.MetricsRegistry`. When
            set, workers time every request into a per-kind
            ``frontend_request_seconds`` histogram and the frontend's
            counters are exported through a registry collector.

    Usable as a context manager: ``with ServingFrontend(router) as fe:``
    starts the workers and shuts down (draining) on exit.
    """

    def __init__(self, router: VenueRouter, *, workers: int = 4,
                 queue_size: int = 1024,
                 registry: MetricsRegistry | None = None) -> None:
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers}")
        self.router = router
        self.workers = int(workers)
        self.queue_size = int(queue_size)
        self.registry = registry
        # Per-kind request timers, created lazily by workers. Guarded by
        # the frontend mutex; read with dict.get (atomic under the GIL).
        self._request_timers: dict[str, object] | None = (
            {} if registry is not None else None
        )
        if registry is not None:
            registry.register_collector(self, _collect_frontend_stats)
        self._queue: queue.Queue = queue.Queue(maxsize=self.queue_size)
        self._threads: list[threading.Thread] = []
        self._mutex = threading.Lock()
        self._started = False
        self._accepting = False
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingFrontend":
        """Start the worker threads (idempotent until :meth:`shutdown`).

        Thread safety: safe from any thread; exactly one caller starts
        the workers.
        """
        with self._mutex:
            if self._started:
                return self
            self._started = True
            self._accepting = True
            self._threads = [
                threading.Thread(target=self._worker, name=f"serving-worker-{i}",
                                 daemon=True)
                for i in range(self.workers)
            ]
            for t in self._threads:
                t.start()
        return self

    def __enter__(self) -> "ServingFrontend":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        # Drain on clean exit; abandon the backlog when unwinding an
        # exception (the caller is already failing — finish in-flight
        # work and get out).
        self.shutdown(drain=exc_type is None)

    def drain(self) -> None:
        """Block until every request queued *so far* has completed.

        Concurrent submitters may keep the queue busy past this call —
        drain is a point-in-time barrier, not an intake stop (that is
        :meth:`shutdown`).

        Thread safety: safe from any thread, including concurrently
        with submits and other drains. Must not be called from a worker
        thread (a worker waiting on its own queue deadlocks).
        """
        self._queue.join()

    def shutdown(self, *, drain: bool = True) -> None:
        """Stop intake, optionally drain the backlog, join the workers.

        With ``drain=False`` requests still queued are cancelled (their
        futures raise :class:`~concurrent.futures.CancelledError`);
        requests already executing always run to completion. Idempotent.

        Thread safety: safe from any thread; concurrent callers race
        benignly (one wins each step).
        """
        with self._mutex:
            was_accepting = self._accepting
            self._accepting = False
        if not self._started:
            return
        if drain and was_accepting:
            self._queue.join()
        # Cancel whatever is still queued (no-op after a drain), then
        # wake every worker with a stop sentinel.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                item[1].cancel()
                with self._mutex:
                    self._rejected += 1
            self._queue.task_done()
        for _ in self._threads:
            self._queue.put(_STOP)
        for t in self._threads:
            t.join()
        self._threads = []

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, request: ServingRequest, *, timeout: float | None = None) -> Future:
        """Enqueue a request; returns its :class:`Future`.

        Blocks while the bounded queue is full (backpressure). With a
        ``timeout``, a queue that stays full raises
        :class:`~repro.exceptions.ServingError` instead of blocking
        forever.

        Raises:
            ServingError: frontend not started / shut down, or the
                backpressure timeout expired.

        Thread safety: safe from any number of producer threads.
        """
        with self._mutex:
            if not self._accepting:
                raise ServingError("serving frontend is not accepting requests")
        future: Future = Future()
        try:
            self._queue.put((request, future), timeout=timeout)
        except queue.Full:
            with self._mutex:
                self._rejected += 1
            raise ServingError(
                f"request queue full ({self.queue_size}) for {timeout}s — "
                "backpressure timeout"
            ) from None
        with self._mutex:
            self._submitted += 1
            accepting = self._accepting
        if not accepting and future.cancel():
            # Shutdown raced us between the intake check and the
            # enqueue: its cancel sweep may already have passed and the
            # workers may already be gone, which would leave this
            # future forever pending. Cancelling here keeps the
            # "submits after shutdown fail fast" promise; if a worker
            # got to the request first, cancel() fails and the request
            # simply completes.
            with self._mutex:
                self._rejected += 1
            raise ServingError("serving frontend shut down during submit")
        return future

    def request(self, venue: str, kind: str, **fields) -> Future:
        """Convenience: build a :class:`ServingRequest` and submit it.

        ``fields`` are the request's payload (``source=``, ``target=``,
        ``k=``, ``radius=``, ``op=``).
        """
        return self.submit(ServingRequest(venue=venue, kind=kind, **fields))

    # ------------------------------------------------------------------
    def _timer_for(self, kind: str):
        """The ``frontend_request_seconds{kind=...}`` histogram, created
        on first use (``None`` when the frontend has no registry)."""
        timers = self._request_timers
        if timers is None:
            return None
        timer = timers.get(kind)
        if timer is None:
            with self._mutex:
                timer = timers.get(kind)
                if timer is None:
                    timer = self.registry.histogram(
                        "frontend_request_seconds", kind=kind)
                    timers[kind] = timer
        return timer

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            request, future = item
            if not future.set_running_or_notify_cancel():
                self._queue.task_done()
                continue
            timer = self._timer_for(request.kind)
            start = perf_counter() if timer is not None else 0.0
            try:
                result = self.router.execute(request)
            except BaseException as exc:  # noqa: BLE001 - travels via the future
                future.set_exception(exc)
                with self._mutex:
                    self._failed += 1
            else:
                future.set_result(result)
                with self._mutex:
                    self._completed += 1
            finally:
                if timer is not None:
                    timer.observe(perf_counter() - start)
                self._queue.task_done()

    # ------------------------------------------------------------------
    def stats(self) -> FrontendStats:
        """A consistent snapshot of frontend counters.

        Thread safety: counters are read under the frontend mutex;
        ``queued`` is the queue's instantaneous depth.
        """
        with self._mutex:
            return FrontendStats(
                workers=len(self._threads),
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                rejected=self._rejected,
                queued=self._queue.qsize(),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        state = "accepting" if self._accepting else ("stopped" if self._started else "new")
        return (
            f"ServingFrontend({state}, workers={s.workers}, "
            f"queued={s.queued}, done={s.completed})"
        )
