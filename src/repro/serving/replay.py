"""Multi-venue replay: sequential oracle vs concurrent serving.

Two drivers over the same input shape — ``streams`` maps venue id to an
ordered list of events (:class:`~repro.datasets.workloads.MixedQuery`
or :class:`~repro.model.objects.UpdateOp`, e.g. from
:func:`repro.datasets.multi_venue.multi_venue_streams`):

* :func:`sequential_replay` — one thread, one venue at a time, events
  strictly in stream order through ``router.execute``. The correctness
  baseline.
* :func:`concurrent_replay` — one submitter thread per venue feeding a
  frontend; all venues are in flight at once, queries of one
  update-free block are in flight concurrently. The frontend may be an
  in-thread :class:`~repro.serving.frontend.ServingFrontend` *or* a
  multi-process :class:`~repro.serving.cluster.ClusterFrontend`
  (cluster mode) — both expose ``submit``/``workers``, and the
  equivalence guarantee below holds for both, because the wire
  protocol round-trips answers bit-exactly.

**Equivalence guarantee.** Concurrent replay returns element-wise
identical answers to sequential replay, because the only events whose
answers depend on execution order are updates, and updates act as
**per-venue barriers**: a submitter waits for every outstanding query
of its venue before submitting an update, and waits for the update
before submitting anything after it. Queries between two updates
commute (they read a fixed object population; engine caching never
changes answers), and venues share no state. ``benchmarks/
bench_serving.py`` asserts this element-wise on every run.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from ..model.objects import UpdateOp
from .frontend import ServingFrontend
from .router import ServingRequest, VenueRouter


@dataclass(slots=True)
class ServingReport:
    """Outcome of one multi-venue replay."""

    events: int
    queries: int
    updates: int
    seconds: float
    venues: int
    workers: int
    #: events per venue id (diagnostics)
    by_venue: dict[str, int] = field(default_factory=dict)

    @property
    def eps(self) -> float:
        """Events (queries + updates) per second across all venues."""
        if self.seconds <= 0.0:
            return float("inf")
        return self.events / self.seconds

    def summary(self) -> str:
        return (
            f"{self.queries} queries + {self.updates} updates over "
            f"{self.venues} venue(s) in {self.seconds:.3f}s "
            f"({self.eps:,.0f} events/s, {self.workers} worker(s))"
        )


def _count(streams: dict[str, list]) -> tuple[int, int, dict[str, int]]:
    queries = updates = 0
    by_venue: dict[str, int] = {}
    for venue, stream in streams.items():
        by_venue[venue] = len(stream)
        for event in stream:
            if isinstance(event, UpdateOp):
                updates += 1
            else:
                queries += 1
    return queries, updates, by_venue


def sequential_replay(
    router: VenueRouter, streams: dict[str, list]
) -> tuple[dict[str, list], ServingReport]:
    """Replay every venue's stream in order on one thread.

    Returns ``(results, report)`` with ``results[venue][i]`` the answer
    to ``streams[venue][i]``. This is the baseline concurrent replay
    must match element-wise.
    """
    queries, updates, by_venue = _count(streams)
    results: dict[str, list] = {}
    start = time.perf_counter()
    for venue, stream in streams.items():
        out = []
        for event in stream:
            out.append(router.execute(ServingRequest.from_event(venue, event)))
        results[venue] = out
    seconds = time.perf_counter() - start
    return results, ServingReport(
        events=queries + updates, queries=queries, updates=updates,
        seconds=seconds, venues=len(streams), workers=1, by_venue=by_venue,
    )


def _submit_venue(
    frontend: ServingFrontend, venue: str, stream: list, slots: list
) -> None:
    """Submit one venue's stream, updates acting as barriers.

    ``slots`` is pre-sized; ``slots[i]`` receives event ``i``'s future.
    Any submission failure is recorded as a failed future so the
    collector surfaces it instead of hanging.
    """
    outstanding: list[Future] = []
    try:
        for i, event in enumerate(stream):
            request = ServingRequest.from_event(venue, event)
            if isinstance(event, UpdateOp):
                # Barrier: no query submitted before this update may
                # still be in flight when it executes, and nothing
                # after it is submitted until it completed.
                for f in outstanding:
                    f.exception()  # waits; inspect, don't raise here
                outstanding.clear()
                future = frontend.submit(request)
                slots[i] = future
                future.exception()  # wait for the update itself
            else:
                future = frontend.submit(request)
                slots[i] = future
                outstanding.append(future)
    except BaseException as exc:  # noqa: BLE001 - surfaced via the slots
        for i in range(len(stream)):
            if slots[i] is None:
                failed: Future = Future()
                failed.set_exception(exc)
                slots[i] = failed


def concurrent_replay(
    frontend, streams: dict[str, list]
) -> tuple[dict[str, list], ServingReport]:
    """Replay all venues concurrently through a serving frontend.

    One submitter thread per venue keeps every venue in flight at once;
    within a venue, updates are barriers (see the module docstring), so
    the returned answers are element-wise identical to
    :func:`sequential_replay` over the same streams and initial state.

    ``frontend`` is anything with ``submit(request) -> Future`` and a
    ``workers`` attribute — an in-thread
    :class:`~repro.serving.frontend.ServingFrontend` or a sharded
    :class:`~repro.serving.cluster.ClusterFrontend` (**cluster mode**:
    same streams, N processes; compare answers through
    :func:`~repro.serving.protocol.result_to_doc`, which strips the
    per-transport ``QueryStats``). The frontend must be started; it is
    left running (callers own its lifecycle). Raises the first
    request's exception if any event failed.
    """
    queries, updates, by_venue = _count(streams)
    slots: dict[str, list] = {venue: [None] * len(stream) for venue, stream in streams.items()}
    submitters = [
        threading.Thread(
            target=_submit_venue, args=(frontend, venue, stream, slots[venue]),
            name=f"replay-{venue[:8]}", daemon=True,
        )
        for venue, stream in streams.items()
    ]
    start = time.perf_counter()
    for t in submitters:
        t.start()
    for t in submitters:
        t.join()
    results: dict[str, list] = {}
    for venue, futures in slots.items():
        results[venue] = [f.result() for f in futures]  # raises on failure
    seconds = time.perf_counter() - start
    return results, ServingReport(
        events=queries + updates, queries=queries, updates=updates,
        seconds=seconds, venues=len(streams), workers=frontend.workers,
        by_venue=by_venue,
    )
