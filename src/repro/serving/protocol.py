"""Serving protocol: serializable requests/responses + wire codec.

Every serving transport — the in-thread
:class:`~repro.serving.frontend.ServingFrontend`, a
:class:`~repro.serving.shard.ShardWorker` process behind a socket, and
the multi-process :class:`~repro.serving.cluster.ClusterFrontend` —
speaks the same protocol defined here:

* :class:`Request` — one venue-tagged query/update/control operation
  (this *is* the ``ServingRequest`` the router dispatches; the name
  ``ServingRequest`` remains exported for compatibility),
* :class:`Response` / :class:`ErrorResponse` — the success/failure
  reply envelopes, carrying a typed result document or an exception,
* :class:`BatchRequest` / :class:`BatchResponse` — N requests in one
  frame, answered by one frame of N replies in request order with
  per-element error isolation; amortizes the per-event wire cost
  (single-request frames are byte-identical to the pre-batch format —
  a batch is recognized purely by its ``batch`` key),
* the **wire codec** — every frame is a 4-byte big-endian length prefix
  followed by a canonical-JSON document
  (:func:`~repro.model.io_json.canonical_dumps`: sorted keys, shortest
  round-trip floats), so frames are deterministic byte-for-byte and
  floats survive the wire bit-exactly. Bulk numerics inside results
  (kNN/range neighbor lists, path door sequences, distances) are packed
  through :mod:`repro.model.packing` — the same base64 little-endian
  encoding snapshots use — which keeps them bit-exact *and* cheap to
  parse.

Because requests and responses round-trip losslessly, a query answered
over a socket is **element-wise identical** to the same query answered
in-process — the property ``benchmarks/bench_serving.py`` CI-asserts
for the sharded cluster. :func:`result_to_doc` doubles as the canonical
normal form for comparing answers across transports (in-process results
carry populated :class:`~repro.core.results.QueryStats`, decoded ones a
fresh default; the doc form strips exactly that).

Framing errors raise :class:`~repro.exceptions.ProtocolError`:
oversized frames (declared length beyond the reader's limit) and
truncated frames (peer closed mid-frame) are fatal for the connection.
A clean EOF *between* frames is not an error — :func:`recv_doc`
returns ``None``.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

from ..core.results import Neighbor, PathResult, QueryStats
from ..exceptions import (
    OverloadedError,
    ProtocolError,
    QueryError,
    ReproError,
    ServingError,
    SnapshotError,
    VenueError,
)
from ..model.entities import IndoorPoint
from ..model.io_json import canonical_dumps, op_from_dict, op_to_dict
from ..model.objects import UpdateOp
from ..model.packing import pack_f64, pack_i64, unpack_f64, unpack_i64

#: engine-backed request kinds (dispatched by ``VenueRouter.execute``)
QUERY_KINDS = ("distance", "path", "knn", "range", "update")
#: query kinds replicas may answer — everything except ``update``,
#: which must go through the venue's single-writer primary
READ_KINDS = ("distance", "path", "knn", "range")
#: fault-injection kinds: the worker dies *without* flushing, exactly
#: like a SIGKILL — tests use them to prove restart, failover, and
#: log-recovery behavior. ``crash`` dies on receipt;
#: ``crash_after_n_ops`` arms a countdown (payload ``{"updates": n}``)
#: that lets the next *n* updates through and kills the worker on the
#: one after — mid-update-stream, before it is applied or acked;
#: ``drop_connection`` closes the socket first (a partition as seen by
#: the parent: clean EOF, not a crash exit code) and then dies.
FAULT_KINDS = ("crash", "crash_after_n_ops", "drop_connection")
#: worker-level control kinds (handled by ``ShardWorker``/cluster, not
#: by an engine), including the fault-injection hooks above.
#: ``metrics`` returns the worker's
#: :meth:`~repro.obs.registry.MetricsRegistry.snapshot`;
#: ``inject_latency`` (payload ``{"seconds": s, "count": n}``) arms the
#: router to sleep inside its next *n* timed requests — the
#: fault-injection hook slow-query-log tests are built on.
CONTROL_KINDS = ("add_venue", "remove_venue", "ping", "stats", "flush",
                 "shutdown", "metrics", "inject_latency") + FAULT_KINDS
#: every kind a protocol request may carry
REQUEST_KINDS = QUERY_KINDS + CONTROL_KINDS

#: default ceiling on one frame's payload (requests and responses are
#: small; venue documents — ``add_venue`` — are the largest legitimate
#: frames and stay far below this)
MAX_FRAME_BYTES = 32 * 1024 * 1024
_HEADER = struct.Struct("!I")


@dataclass(slots=True, frozen=True)
class Request:
    """One serving operation: a venue id plus the operation payload.

    This is the single request shape behind *every* transport. ``kind``
    selects which fields matter — exactly like
    :class:`~repro.datasets.workloads.MixedQuery`, plus updates and
    worker control:

    * ``distance`` / ``path`` — ``source`` and ``target``,
    * ``knn`` — ``source`` and ``k``,
    * ``range`` — ``source`` and ``radius``,
    * ``update`` — ``op`` (an :class:`~repro.model.objects.UpdateOp`),
    * control kinds (:data:`CONTROL_KINDS`) — ``payload`` (a JSON-safe
      dict; e.g. ``add_venue`` carries the venue document).

    Two observability fields apply to any kind: ``trace`` is an
    optional client-supplied trace id — layers that handle the request
    record span timings under it and the response carries them back —
    and ``include_stats`` asks the server to return the per-query
    :class:`~repro.core.results.QueryStats` alongside the result
    (fixing their silent drop in :func:`result_to_doc`).

    Instances are frozen (safe to share across threads) and serialize
    losslessly through :func:`request_to_doc` / :func:`request_from_doc`.
    """

    venue: str
    kind: str
    source: IndoorPoint | None = None
    target: IndoorPoint | None = None
    k: int = 0
    radius: float = 0.0
    op: UpdateOp | None = None
    payload: dict | None = None
    trace: str | None = None
    include_stats: bool = False

    @classmethod
    def from_event(cls, venue: str, event) -> "Request":
        """Wrap one workload event — a
        :class:`~repro.datasets.workloads.MixedQuery` or an
        :class:`~repro.model.objects.UpdateOp` — for ``venue``."""
        if isinstance(event, UpdateOp):
            return cls(venue=venue, kind="update", op=event)
        return cls(
            venue=venue,
            kind=event.kind,
            source=event.source,
            target=event.target,
            k=event.k,
            radius=event.radius,
        )


@dataclass(slots=True, frozen=True)
class Response:
    """A successful reply: the request id plus its result document.

    ``stats`` (a :func:`stats_to_doc` document) and ``trace`` (a
    :class:`~repro.obs.tracing.Trace` document) ride along only when
    the request opted in via ``include_stats`` / ``trace`` — replies
    to plain requests are byte-identical to the pre-observability
    wire format.
    """

    request_id: int
    result: dict
    stats: dict | None = None
    trace: dict | None = None

    def value(self):
        """Decode the result document back into the in-process value."""
        return result_from_doc(self.result)

    def query_stats(self) -> QueryStats | None:
        """Decode the attached per-query counters, if any."""
        return stats_from_doc(self.stats)


@dataclass(slots=True, frozen=True)
class ErrorResponse:
    """A failed reply: the request id plus the exception it carries.

    ``retry_after`` is the typed **overload** rider: when admission
    control sheds a request, the reply carries the token bucket's
    next-token horizon (seconds) so clients back off instead of
    hammering. The key appears on the wire only when set — replies to
    every other error stay byte-identical to the old format.
    """

    request_id: int
    error: str
    message: str
    retry_after: float | None = None

    def exception(self) -> Exception:
        """Materialize the carried exception (known repro types keep
        their class; anything else arrives as a
        :class:`~repro.exceptions.ServingError`)."""
        cls = _ERROR_TYPES.get(self.error)
        if cls is OverloadedError:
            return OverloadedError(self.message, retry_after=self.retry_after)
        if cls is not None:
            return cls(self.message)
        return ServingError(f"{self.error}: {self.message}")


#: exception classes reconstructed by name on the client side — every
#: other error type degrades to ServingError with its name prefixed
_ERROR_TYPES: dict[str, type[Exception]] = {
    cls.__name__: cls
    for cls in (
        OverloadedError, ProtocolError, QueryError, ReproError, ServingError,
        SnapshotError, VenueError, ValueError, KeyError, TypeError,
    )
}


# ----------------------------------------------------------------------
# Value codecs
# ----------------------------------------------------------------------
def _point_to_doc(point: IndoorPoint | None):
    if point is None:
        return None
    return [point.partition_id, point.x, point.y]


def _point_from_doc(doc) -> IndoorPoint | None:
    if doc is None:
        return None
    return IndoorPoint(int(doc[0]), float(doc[1]), float(doc[2]))


# Op documents are the shared :mod:`repro.model.io_json` normal form —
# the per-venue operation log persists the identical shape, so a logged
# op and a framed op are byte-for-byte the same canonical JSON.
_op_to_doc = op_to_dict
_op_from_doc = op_from_dict


def request_to_doc(request: Request, request_id: int) -> dict:
    """The request's wire document (JSON-safe, canonical-encodable)."""
    return {
        "id": int(request_id),
        "venue": request.venue,
        "kind": request.kind,
        "source": _point_to_doc(request.source),
        "target": _point_to_doc(request.target),
        "k": request.k,
        "radius": request.radius,
        "op": _op_to_doc(request.op),
        "payload": request.payload,
        "trace": request.trace,
        "include_stats": request.include_stats,
    }


def request_from_doc(doc: dict) -> tuple[Request, int]:
    """``(request, request_id)`` decoded from a wire document."""
    try:
        return Request(
            venue=doc["venue"],
            kind=doc["kind"],
            source=_point_from_doc(doc.get("source")),
            target=_point_from_doc(doc.get("target")),
            k=int(doc.get("k", 0)),
            radius=float(doc.get("radius", 0.0)),
            op=_op_from_doc(doc.get("op")),
            payload=doc.get("payload"),
            trace=doc.get("trace"),
            include_stats=bool(doc.get("include_stats", False)),
        ), int(doc["id"])
    except (KeyError, TypeError, IndexError, ValueError) as exc:
        raise ProtocolError(f"malformed request document: {exc!r}") from None


def result_to_doc(value) -> dict:
    """Encode one engine/worker result as a typed wire document.

    Covers every value the serving surface produces: ``None``, bools,
    ints (update ids), floats (distances — packed bit-exactly),
    strings (venue ids), :class:`PathResult`, ``list[Neighbor]``
    (kNN/range) and JSON-safe dicts (stats/health documents). Doubles
    as the canonical normal form for cross-transport answer comparison
    (it deliberately drops :class:`~repro.core.results.QueryStats`,
    which describe the work done, not the answer — clients that want
    them set ``Request.include_stats`` and read them from the reply
    envelope's ``stats`` field via :func:`stats_from_doc`).
    """
    if value is None:
        return {"t": "none"}
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, float):
        return {"t": "f64", "v": pack_f64([value])}
    if isinstance(value, str):
        return {"t": "str", "v": value}
    if isinstance(value, PathResult):
        return {
            "t": "path",
            "distance": pack_f64([value.distance]),
            "doors": pack_i64(value.doors),
        }
    if isinstance(value, list) and all(isinstance(n, Neighbor) for n in value):
        return {
            "t": "neighbors",
            "ids": pack_i64([n.object_id for n in value]),
            "distances": pack_f64([n.distance for n in value]),
        }
    if isinstance(value, dict):
        return {"t": "json", "v": value}
    raise ProtocolError(f"unencodable result type {type(value).__name__}")


def result_from_doc(doc: dict):
    """Decode a :func:`result_to_doc` document back into its value."""
    try:
        t = doc["t"]
        if t == "none":
            return None
        if t in ("bool", "int", "str", "json"):
            return doc["v"]
        if t == "f64":
            return unpack_f64(doc["v"])[0]
        if t == "path":
            return PathResult(
                distance=unpack_f64(doc["distance"])[0],
                doors=unpack_i64(doc["doors"]),
            )
        if t == "neighbors":
            return [
                Neighbor(object_id=oid, distance=d)
                for oid, d in zip(unpack_i64(doc["ids"]),
                                  unpack_f64(doc["distances"]))
            ]
    # ValueError covers corrupt packed numerics (binascii/struct)
    except (KeyError, TypeError, IndexError, ValueError) as exc:
        raise ProtocolError(f"malformed result document: {exc!r}") from None
    raise ProtocolError(f"unknown result type tag {t!r}")


def stats_to_doc(stats: QueryStats | None) -> dict | None:
    """Encode per-query counters for the reply envelope (``None``
    passes through: the request did not ask for them)."""
    if stats is None:
        return None
    return {
        "pairs_considered": stats.pairs_considered,
        "superior_pairs": stats.superior_pairs,
        "nodes_visited": stats.nodes_visited,
        "heap_pops": stats.heap_pops,
        "list_entries_scanned": stats.list_entries_scanned,
        "same_leaf": stats.same_leaf,
        "cache_hit": stats.cache_hit,
    }


def stats_from_doc(doc: dict | None) -> QueryStats | None:
    """Decode a :func:`stats_to_doc` document (``None`` passes
    through)."""
    if doc is None:
        return None
    try:
        return QueryStats(
            pairs_considered=int(doc.get("pairs_considered", 0)),
            superior_pairs=int(doc.get("superior_pairs", 0)),
            nodes_visited=int(doc.get("nodes_visited", 0)),
            heap_pops=int(doc.get("heap_pops", 0)),
            list_entries_scanned=int(doc.get("list_entries_scanned", 0)),
            same_leaf=bool(doc.get("same_leaf", False)),
            cache_hit=bool(doc.get("cache_hit", False)),
        )
    except (TypeError, ValueError, AttributeError) as exc:
        raise ProtocolError(f"malformed stats document: {exc!r}") from None


def reply_to_doc(reply: Response | ErrorResponse) -> dict:
    """The reply's wire document (success and failure envelopes).

    ``stats``/``trace`` keys appear only when set, so replies to
    requests that did not opt in stay byte-identical to the old
    format."""
    if isinstance(reply, Response):
        doc = {"id": reply.request_id, "ok": True, "result": reply.result}
        if reply.stats is not None:
            doc["stats"] = reply.stats
        if reply.trace is not None:
            doc["trace"] = reply.trace
        return doc
    doc = {
        "id": reply.request_id,
        "ok": False,
        "error": reply.error,
        "message": reply.message,
    }
    if reply.retry_after is not None:
        doc["retry_after"] = float(reply.retry_after)
    return doc


def reply_from_doc(doc: dict) -> Response | ErrorResponse:
    try:
        if doc["ok"]:
            return Response(
                request_id=int(doc["id"]),
                result=doc["result"],
                stats=doc.get("stats"),
                trace=doc.get("trace"),
            )
        retry_after = doc.get("retry_after")
        return ErrorResponse(
            request_id=int(doc["id"]),
            error=doc["error"],
            message=doc["message"],
            retry_after=None if retry_after is None else float(retry_after),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed reply document: {exc!r}") from None


def error_reply(request_id: int, exc: BaseException) -> ErrorResponse:
    """Wrap an exception for the wire (class name + message; an
    :class:`~repro.exceptions.OverloadedError`'s retry-after hint rides
    along)."""
    retry_after = getattr(exc, "retry_after", None)
    return ErrorResponse(
        request_id=request_id,
        error=type(exc).__name__,
        message=str(exc),
        retry_after=None if retry_after is None else float(retry_after),
    )


# ----------------------------------------------------------------------
# Batch frames
# ----------------------------------------------------------------------
#: ceiling on requests per batch frame — far above any sensible
#: amortization window; a frame declaring more is a protocol abuse and
#: fatal for the connection
MAX_BATCH_REQUESTS = 1024


@dataclass(slots=True, frozen=True)
class BatchRequest:
    """Many requests in one wire frame: the amortization envelope.

    A batch frame carries N ordinary request documents and is answered
    by exactly one :class:`BatchResponse` frame whose replies are **in
    request order** — clients match positionally (ids are still echoed
    per element). Errors are isolated per element: a failing request
    yields an :class:`ErrorResponse` in its slot while its neighbors
    succeed; per-venue *submission* order within the batch is
    preserved, so an update followed by a query on the same venue
    behaves exactly as two single frames would.

    Old single-request frames are untouched — a batch frame is
    recognized by its ``batch`` key (:func:`is_batch_doc`), which no
    single-frame document carries.
    """

    requests: tuple[Request, ...]


@dataclass(slots=True, frozen=True)
class BatchResponse:
    """The reply envelope of a :class:`BatchRequest`: one
    success/failure reply per request, in request order."""

    replies: tuple  # of Response | ErrorResponse

    def values(self) -> list:
        """Decode every reply: result values in request order, with
        error slots materialized as exception *instances* (not raised —
        the caller decides per slot)."""
        return [
            reply.exception() if isinstance(reply, ErrorResponse)
            else reply.value()
            for reply in self.replies
        ]


def is_batch_doc(doc: dict) -> bool:
    """Whether a decoded frame document is a batch envelope."""
    return "batch" in doc


def batch_request_to_doc(batch: BatchRequest, request_ids) -> dict:
    """The batch's wire document; ``request_ids`` pairs one id with
    each request (same length, same order)."""
    if len(request_ids) != len(batch.requests):
        raise ProtocolError(
            f"batch of {len(batch.requests)} requests needs exactly as many "
            f"ids, got {len(request_ids)}"
        )
    if not batch.requests:
        raise ProtocolError("batch frame must carry at least one request")
    if len(batch.requests) > MAX_BATCH_REQUESTS:
        raise ProtocolError(
            f"batch of {len(batch.requests)} requests exceeds the "
            f"{MAX_BATCH_REQUESTS}-request batch limit"
        )
    return {"batch": [
        request_to_doc(request, rid)
        for request, rid in zip(batch.requests, request_ids)
    ]}


def batch_request_from_doc(doc: dict) -> list:
    """Decode a batch envelope into per-slot ``(request, id)`` pairs.

    Envelope-level damage — ``batch`` not a non-empty list of objects,
    or above :data:`MAX_BATCH_REQUESTS` — raises :class:`ProtocolError`
    (fatal for the connection, like any unframeable document). A
    *well-framed element* with malformed fields degrades to an
    :class:`ErrorResponse` in its slot instead (its id is salvaged when
    decodable, ``-1`` otherwise), so one bad request never poisons its
    batchmates.
    """
    elements = doc.get("batch")
    if not isinstance(elements, list) or not elements:
        raise ProtocolError(
            "batch frame must carry a non-empty list of request documents"
        )
    if len(elements) > MAX_BATCH_REQUESTS:
        raise ProtocolError(
            f"batch of {len(elements)} requests exceeds the "
            f"{MAX_BATCH_REQUESTS}-request batch limit"
        )
    slots = []
    for element in elements:
        if not isinstance(element, dict):
            raise ProtocolError(
                f"batch element must be a request document, got "
                f"{type(element).__name__}"
            )
        try:
            slots.append(request_from_doc(element))
        except ProtocolError as exc:
            try:
                rid = int(element.get("id"))
            except (TypeError, ValueError):
                rid = -1
            slots.append(error_reply(rid, exc))
    return slots


def batch_reply_to_doc(batch: BatchResponse) -> dict:
    """The batch reply's wire document (replies in request order)."""
    return {"batch": [reply_to_doc(reply) for reply in batch.replies]}


def batch_reply_from_doc(doc: dict) -> BatchResponse:
    """Decode a batch reply envelope."""
    elements = doc.get("batch")
    if not isinstance(elements, list):
        raise ProtocolError("batch reply must carry a list of replies")
    return BatchResponse(replies=tuple(
        reply_from_doc(element) for element in elements
    ))


# ----------------------------------------------------------------------
# Wire framing
# ----------------------------------------------------------------------
def encode_frame(doc: dict, *, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """``length-prefix + canonical JSON`` bytes for one document.

    Raises:
        ProtocolError: the encoded payload exceeds ``max_bytes`` (the
            peer would refuse it — fail on the sending side instead),
            or the document is not canonical-JSON encodable (a raw
            non-finite float outside a packed field).
    """
    try:
        payload = canonical_dumps(doc).encode("utf-8")
    except ValueError as exc:
        raise ProtocolError(
            f"frame document is not canonical-JSON encodable: {exc}"
        ) from None
    if len(payload) > max_bytes:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_bytes}-byte frame limit"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict:
    """Parse one frame payload (the bytes after the length prefix)."""
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(doc).__name__}"
        )
    return doc


def send_doc(sock, doc: dict, *, max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Write one framed document to a connected socket."""
    sock.sendall(encode_frame(doc, max_bytes=max_bytes))


def _recv_exact(sock, n: int) -> bytes:
    """Read exactly ``n`` bytes; a short read (peer closed) returns
    whatever arrived — the caller decides whether that is a clean EOF
    or a truncated frame."""
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_doc(sock, *, max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Read one framed document; ``None`` on clean EOF between frames.

    Raises:
        ProtocolError: truncated frame (EOF inside the header or the
            payload) or a declared length above ``max_bytes``.
    """
    header = _recv_exact(sock, _HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise ProtocolError(
            f"truncated frame: connection closed after {len(header)} of "
            f"{_HEADER.size} header bytes"
        )
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"oversized frame: declared payload of {length} bytes exceeds "
            f"the {max_bytes}-byte frame limit"
        )
    payload = _recv_exact(sock, length)
    if len(payload) < length:
        raise ProtocolError(
            f"truncated frame: connection closed after {len(payload)} of "
            f"{length} payload bytes"
        )
    return decode_frame(payload)
