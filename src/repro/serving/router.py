"""VenueRouter: a bounded pool of warm-started engines, one per venue.

The router turns a :class:`~repro.storage.catalog.SnapshotCatalog` into
a multi-venue dispatch table. Venues are registered up front
(:meth:`VenueRouter.add_venue`) and keyed by their **venue
fingerprint** — the same key the catalog stores snapshots under — so a
request tagged with a venue id always reaches the index built for
exactly that venue revision.

Engines are created lazily on first request via
``catalog.engine_for(space, ...)`` (load the snapshot when one exists,
else cold-build and save) with ``thread_safe=True``, and live in a
bounded LRU pool: when more venues are registered than the pool admits,
the least-recently-used **idle** engine is evicted. An evicted engine
that served updates is first snapshotted back into its catalog slot
(*write-back*), so its object state survives eviction and the next
request for that venue warm-starts from where it left off.

Replication roles (``oplog=True``)
----------------------------------
With the per-venue operation log enabled, every venue is registered in
one of two roles:

* a **primary** applies updates and appends each one to the venue's
  :class:`~repro.storage.oplog.OpLog` *before acknowledging it* — so
  an acked update survives any crash — and compacts the log whenever
  a write-back snapshots the state it covers,
* a **replica** refuses updates and *tails* the log instead: before
  answering a request it stats the log file and applies any records
  past its engine's object-set version. Replicas never write
  snapshots back (a lagging replica must not clobber newer primary
  state) and never compact (only the single writer may rewrite the
  file another process is appending to).

Warm starts in either role replay the log tail on top of the loaded
snapshot, which is what makes a restart lose nothing.

Thread safety: every public method may be called from any thread. The
router holds one internal mutex around its pool bookkeeping; engine
warm starts happen *outside* that mutex (serialized per venue by the
catalog's slot locks), so a slow cold build for one venue never blocks
requests for another.

Lock ordering (outermost first): router mutex -> per-venue log lock ->
engine locks / catalog locks. Warm starts (slow cold builds) happen
with the router mutex *released*; only eviction write-back runs under
it — a deliberate stall that makes "save then drop" atomic against a
concurrent re-load of the same venue from the stale file. The log lock
is taken before the engine lock everywhere (apply + append must be one
atomic step against the flusher's save + compact). Engines and the
catalog never call back into the router, so the ordering is acyclic
and deadlock-free.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field
from time import perf_counter

#: stand-in context manager for "no log lock needed" paths (also reused
#: for "no trace span" paths — nullcontext is stateless and reentrant)
_NO_LOCK = nullcontext()

from ..core.results import QueryStats
from ..engine.engine import QueryEngine
from ..exceptions import ServingError, SnapshotError
from ..model.indoor_space import IndoorSpace
from ..obs.registry import counter_entry, gauge_entry
from ..obs.slowlog import SlowQueryLog
from ..obs.stats import StatsDoc
from ..obs.tracing import current_observation
from ..storage.catalog import SnapshotCatalog
from ..storage.oplog import OpLog, oplog_path
from ..storage.snapshot import venue_fingerprint
from .protocol import QUERY_KINDS, Request, stats_to_doc

#: roles a venue may be registered under (see the module docstring)
VENUE_ROLES = ("primary", "replica")

#: request kinds the router dispatches (mirrors the engine API).
#: Control kinds (:data:`repro.serving.protocol.CONTROL_KINDS`) are
#: handled one layer up, by the shard worker / cluster.
REQUEST_KINDS = QUERY_KINDS

#: The router's request shape *is* the serving protocol's
#: :class:`~repro.serving.protocol.Request` — one request object drives
#: the in-thread frontend, the shard socket transport, and the cluster.
ServingRequest = Request


@dataclass(slots=True)
class _VenueSlot:
    """Registration record for one venue (static; read-only after
    :meth:`VenueRouter.add_venue` — a role change is a re-registration,
    which replaces the slot)."""

    space: IndoorSpace
    kind: str
    objects: object = None
    builder: object = None
    role: str = "primary"


class _VenueLog:
    """Per-venue log bookkeeping: the :class:`OpLog`, the lock that
    makes apply+append (and save+compact) atomic, and the last seen
    tail signature so an in-sync venue costs one ``stat`` per request."""

    __slots__ = ("log", "lock", "synced_sig")

    def __init__(self, log: OpLog) -> None:
        self.log = log
        self.lock = threading.Lock()
        self.synced_sig = object()  # never equals a real signature


def _collect_router_stats(router: "VenueRouter"):
    """Registry collector: export :class:`RouterStats` counters as
    registry metrics (weakly held; see
    :meth:`~repro.obs.registry.MetricsRegistry.register_collector`)."""
    s = router.stats()
    yield counter_entry("router_requests_total", s.requests)
    yield counter_entry("router_warm_starts_total", s.warm_starts)
    yield counter_entry("router_evictions_total", s.evictions)
    yield counter_entry("router_write_backs_total", s.write_backs)
    yield counter_entry("router_log_appends_total", s.log_appends)
    yield counter_entry("router_log_replays_total", s.log_replays)
    yield gauge_entry("router_venues", s.venues, agg="sum")
    yield gauge_entry("router_pooled_engines", s.pooled, agg="sum")


@dataclass(slots=True)
class RouterStats(StatsDoc):
    """Point-in-time router counters (monotone except ``pooled``)."""

    venues: int = 0
    pooled: int = 0
    requests: int = 0
    warm_starts: int = 0
    evictions: int = 0
    write_backs: int = 0
    #: operations appended to venue logs (primaries only)
    log_appends: int = 0
    #: operations replayed *from* venue logs (warm-start recovery and
    #: replica tailing combined)
    log_replays: int = 0
    by_venue: dict = field(default_factory=dict)


class VenueRouter:
    """Dispatch venue-tagged requests to a bounded pool of engines.

    Args:
        catalog: the snapshot catalog engines warm-start from (and are
            written back into on eviction).
        capacity: maximum engines kept in the pool. ``0`` means
            unbounded. Busy engines (requests in flight) are never
            evicted, so the bound is soft under extreme concurrency.
        kind: default index kind for :meth:`add_venue`.
        mmap: memory-map snapshot binary sections on warm start instead
            of copying them into each engine — the shard worker turns
            this on so sibling engines of one venue share page cache.
        oplog: keep a durable per-venue operation log next to each
            snapshot (see the module docstring): primaries append every
            applied update before acking, replicas tail the log, and
            warm starts replay the tail — zero acknowledged updates are
            lost on a crash. Off by default (the single-process
            frontends keep their snapshot-only durability window); the
            cluster turns it on.
        oplog_sync: fsync each appended record (the durability
            guarantee). ``False`` keeps replication working but lets a
            host power-loss eat the OS write-back window.
        registry: optional
            :class:`~repro.obs.registry.MetricsRegistry`. When set, the
            router times warm starts / write-backs / flush cycles /
            oplog appends into latency histograms, exports its
            :class:`RouterStats` counters via a weakly-held collector,
            and forwards the registry to every engine it warm-starts
            (so their query latency lands in the same snapshot).
        slow_query_threshold: seconds; when set, every request is
            timed and those at or above the threshold emit one
            structured :class:`~repro.obs.slowlog.SlowQueryLog` record
            (carrying the venue id, kind, trace and per-query stats).
            ``None`` (default) disables slow-query timing entirely.
        slowlog_path: optional JSONL file the slow-query records are
            appended to (requires ``slow_query_threshold``).
        **engine_kwargs: forwarded to every :class:`QueryEngine`
            (``thread_safe=True`` is always enforced — a pooled engine
            is by definition shared).

    Thread safety: all methods are safe from any thread; see the module
    docstring for the locking design.
    """

    def __init__(
        self,
        catalog: SnapshotCatalog,
        *,
        capacity: int = 8,
        kind: str = "VIP-Tree",
        mmap: bool = False,
        oplog: bool = False,
        oplog_sync: bool = True,
        registry=None,
        slow_query_threshold: float | None = None,
        slowlog_path=None,
        **engine_kwargs,
    ) -> None:
        self.catalog = catalog
        self.capacity = int(capacity)
        self.default_kind = kind
        self.mmap = bool(mmap)
        self.oplog = bool(oplog)
        self.oplog_sync = bool(oplog_sync)
        engine_kwargs["thread_safe"] = True
        self.registry = registry
        if registry is not None:
            engine_kwargs.setdefault("registry", registry)
            self._warm_start_timer = registry.histogram("router_warm_start_seconds")
            self._write_back_timer = registry.histogram("router_write_back_seconds")
            self._flush_timer = registry.histogram("router_flush_seconds")
            self._oplog_timer = registry.histogram("oplog_append_seconds")
            self._slow_counter = registry.counter("router_slow_queries_total")
            registry.register_collector(self, _collect_router_stats)
        else:
            self._warm_start_timer = None
            self._write_back_timer = None
            self._flush_timer = None
            self._oplog_timer = None
            self._slow_counter = None
        self.slowlog = (
            SlowQueryLog(slow_query_threshold, path=slowlog_path)
            if slow_query_threshold is not None else None
        )
        #: armed latency injection: ``[seconds, remaining]`` or ``None``
        #: (the ``inject_latency`` control kind; mutated under the mutex)
        self._injected_latency: list | None = None
        self._engine_kwargs = engine_kwargs
        self._mutex = threading.Lock()
        self._venues: dict[str, _VenueSlot] = {}
        self._engines: OrderedDict[str, QueryEngine] = OrderedDict()
        self._inflight: dict[str, int] = {}
        self._requests = 0
        self._warm_starts = 0
        self._evictions = 0
        self._write_backs = 0
        self._log_appends = 0
        self._log_replays = 0
        self._by_venue: dict[str, int] = {}
        # Per-venue log state, created lazily on first logged access.
        # Guarded by its own tiny lock so log bookkeeping never contends
        # with the pool mutex.
        self._log_guard = threading.Lock()
        self._logs: dict[str, _VenueLog] = {}
        #: update count already persisted per venue — write-back and
        #: flush() only re-serialize engines dirty since their last save
        self._saved_updates: dict[str, int] = {}
        self._flusher: PeriodicFlusher | None = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_venue(self, space: IndoorSpace, *, kind: str | None = None,
                  objects=None, builder=None, role: str = "primary") -> str:
        """Register a venue and return its id (the venue fingerprint).

        ``objects``/``builder`` are used only if this venue's engine is
        ever cold-built (no snapshot in the catalog yet) — a loaded
        snapshot serves the object set it was saved with. Registering
        the same venue twice is idempotent (the latest registration
        wins) — which is also how a role changes: re-register with the
        new ``role`` and the pooled engine is kept (a promoted replica
        catches up from the log, it does not re-warm-start).

        ``role`` only matters with the operation log enabled: a
        ``"replica"`` refuses updates and tails the venue's log instead
        of writing snapshots back.

        Thread safety: safe from any thread.
        """
        if role not in VENUE_ROLES:
            raise ServingError(
                f"unknown venue role {role!r}; expected one of {VENUE_ROLES}"
            )
        venue_id = venue_fingerprint(space)
        slot = _VenueSlot(space=space, kind=kind or self.default_kind,
                          objects=objects, builder=builder, role=role)
        with self._mutex:
            self._venues[venue_id] = slot
        return venue_id

    def remove_venue(self, venue_id: str) -> bool:
        """Drop a venue: unregister it, write back its engine if it is
        a dirty primary, close its log handle. Returns whether the
        venue was registered. In-flight requests for the venue finish
        on their pinned engine; later ones fail as unknown.

        Thread safety: safe from any thread.
        """
        with self._mutex:
            slot = self._venues.pop(venue_id, None)
            engine = self._engines.pop(venue_id, None)
            if engine is not None and slot is not None:
                if self._write_back(venue_id, engine, slot):
                    self._write_backs += 1
            self._saved_updates.pop(venue_id, None)
        with self._log_guard:
            state = self._logs.pop(venue_id, None)
        if state is not None:
            state.log.close()
        return slot is not None

    def venue_ids(self) -> list[str]:
        """Registered venue ids, in registration order."""
        with self._mutex:
            return list(self._venues)

    def describe(self, venue_id: str) -> tuple[str, str]:
        """``(venue name, index kind)`` for a registered venue id."""
        with self._mutex:
            slot = self._venues.get(venue_id)
        if slot is None:
            raise ServingError(f"unknown venue id {venue_id[:12]!r}")
        return slot.space.name, slot.kind

    # ------------------------------------------------------------------
    # Engine pool
    # ------------------------------------------------------------------
    def engine(self, venue_id: str) -> QueryEngine:
        """The venue's pooled engine, warm-starting it if necessary.

        Prefer :meth:`execute` for serving work — it additionally pins
        the engine against eviction for the request's duration. A
        reference obtained here stays valid and answer-correct after
        eviction, but updates applied to an already-evicted engine are
        not written back.

        Thread safety: safe from any thread; concurrent first calls for
        one venue warm-start once (catalog slot lock) and the pool
        keeps a single shared engine.
        """
        engine, _ = self._acquire(venue_id, pin=False)
        return engine

    def _acquire(self, venue_id: str, *, pin: bool) -> tuple[QueryEngine, bool]:
        """``(engine, pinned)`` — pooled lookup, else warm start.

        With ``pin=True`` the in-flight count is incremented under the
        same mutex hold that resolves the engine, closing the window in
        which an eviction could observe the engine as idle.
        """
        with self._mutex:
            slot = self._venues.get(venue_id)
            if slot is None:
                raise ServingError(f"unknown venue id {venue_id[:12]!r}")
            engine = self._engines.get(venue_id)
            if engine is not None:
                self._engines.move_to_end(venue_id)
                if pin:
                    self._inflight[venue_id] = self._inflight.get(venue_id, 0) + 1
                return engine, pin

        # Warm start outside the router mutex: the catalog slot lock
        # serializes concurrent builds of the same venue.
        if self._warm_start_timer is None:
            fresh = self._warm_start(venue_id, slot)
        else:
            with self._warm_start_timer.time():
                fresh = self._warm_start(venue_id, slot)
        with self._mutex:
            engine = self._engines.get(venue_id)
            if engine is None:
                engine = fresh
                self._engines[venue_id] = engine
                # the fresh engine's update counter restarts at zero:
                # reset the venue's persisted-updates watermark with it
                self._saved_updates.pop(venue_id, None)
                self._warm_starts += 1
                self._evict_idle_locked()
            else:
                self._engines.move_to_end(venue_id)  # lost the race: share theirs
            if pin:
                self._inflight[venue_id] = self._inflight.get(venue_id, 0) + 1
            return engine, pin

    def _warm_start(self, venue_id: str, slot: _VenueSlot) -> QueryEngine:
        """Load-or-build the venue's engine and, with the log enabled,
        replay the log tail on top of it — *before* the engine is
        published to the pool, so nobody observes pre-recovery state.
        A compaction racing the load (snapshot newer than the one we
        read) is retried once against the fresh files."""
        for attempt in (0, 1):
            engine = self.catalog.engine_for(
                slot.space, slot.kind, objects=slot.objects,
                builder=slot.builder, mmap=self.mmap, **self._engine_kwargs,
            )
            if not self._logged(slot, engine):
                return engine
            state = self._log_state(venue_id, slot)
            try:
                with state.lock:
                    self._replay_locked(engine, state)
                return engine
            except SnapshotError:
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _release(self, venue_id: str) -> None:
        with self._mutex:
            left = self._inflight.get(venue_id, 0) - 1
            if left > 0:
                self._inflight[venue_id] = left
            else:
                self._inflight.pop(venue_id, None)

    def _evict_idle_locked(self) -> None:
        """Evict least-recently-used idle engines down to capacity.

        Caller holds the mutex. Engines that served updates are
        snapshotted back into their catalog slot first (write-back), so
        no object state is lost; the save happens synchronously — the
        caller that triggered the eviction pays it, keeping the pool
        bound honest.
        """
        if self.capacity <= 0:
            return
        while len(self._engines) > self.capacity:
            victim = None
            for vid in self._engines:  # oldest first
                if self._inflight.get(vid, 0) == 0:
                    victim = vid
                    break
            if victim is None:
                return  # everything busy: soft bound, retry on next insert
            engine = self._engines.pop(victim)
            self._evictions += 1
            if self._write_back(victim, engine, self._venues.get(victim)):
                self._write_backs += 1

    def _write_back(self, venue_id: str, engine: QueryEngine,
                    slot: _VenueSlot | None) -> bool:
        """Persist ``engine`` to its catalog slot if it is a dirty
        *primary* — i.e. has served updates since its last write-back.
        Runs under the engine's read lock, so the saved state is
        point-in-time consistent: concurrent updates wait, concurrent
        queries do not. With the log enabled the save also compacts the
        venue's log (the snapshot now covers those records), holding
        the log lock across both so no append lands between them.
        Replicas never write back: a lagging replica snapshotting over
        the primary's newer state would un-apply acknowledged updates.
        Returns whether a snapshot was written.
        """
        if slot is not None and self.oplog and slot.role != "primary":
            return False
        start = perf_counter()
        state = (self._log_state(venue_id, slot)
                 if slot is not None and self._logged(slot, engine) else None)
        with state.lock if state is not None else _NO_LOCK:
            with engine.lock.read():
                updates = engine.stats().updates
                if updates <= self._saved_updates.get(venue_id, 0):
                    return False
                self.catalog.save(
                    engine.index,
                    engine.object_index if engine.object_index is not None else engine.objects,
                )
                saved_version = (engine.objects.version
                                 if engine.objects is not None else 0)
            if state is not None:
                state.log.compact(saved_version)
        self._saved_updates[venue_id] = updates
        if self._write_back_timer is not None:
            self._write_back_timer.observe(perf_counter() - start)
        return True

    # ------------------------------------------------------------------
    # Operation log (replication roles)
    # ------------------------------------------------------------------
    def _logged(self, slot: _VenueSlot, engine: QueryEngine) -> bool:
        """Whether this venue participates in the operation log —
        requires the log to be enabled *and* an engine that actually
        carries mutable object state."""
        return self.oplog and engine.objects is not None

    def _log_state(self, venue_id: str, slot: _VenueSlot) -> _VenueLog:
        with self._log_guard:
            state = self._logs.get(venue_id)
            if state is None:
                path = oplog_path(self.catalog.path_for(slot.space, slot.kind))
                observe = (self._oplog_timer.observe
                           if self._oplog_timer is not None else None)
                state = _VenueLog(OpLog(path, sync=self.oplog_sync,
                                        observe=observe))
                self._logs[venue_id] = state
            return state

    def _replay_locked(self, engine: QueryEngine, state: _VenueLog) -> int:
        """Apply every log record past the engine's object-set version
        (caller holds the log lock). Raises
        :class:`~repro.exceptions.SnapshotError` when the log was
        compacted past the engine — the caller re-warm-starts."""
        records = state.log.read(after_version=engine.objects.version)
        for record in records:
            engine.update(record.op)
        state.synced_sig = state.log.tail_signature()
        if records:
            # not the router mutex: flush holds it while waiting on the
            # log lock, and the caller holds the log lock right now
            with self._log_guard:
                self._log_replays += len(records)
        return len(records)

    def _sync_from_log(self, venue_id: str, slot: _VenueSlot,
                       engine: QueryEngine) -> None:
        """Catch the engine up with its venue's log — the replica read
        path (and a just-promoted primary's first touch). In-sync costs
        one ``stat``; behind costs replaying the delta."""
        state = self._log_state(venue_id, slot)
        if state.log.tail_signature() == state.synced_sig:
            return
        with state.lock:
            if state.log.tail_signature() == state.synced_sig:
                return
            self._replay_locked(engine, state)

    def log_positions(self) -> dict:
        """``{venue_id: object-set version}`` for every pooled engine
        with object state — the log positions the shard ``stats`` frame
        reports, letting operators see replica lag at a glance."""
        with self._mutex:
            engines = list(self._engines.items())
        return {
            vid: engine.objects.version
            for vid, engine in engines
            if engine.objects is not None
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def execute(self, request: ServingRequest):
        """Dispatch one :class:`ServingRequest` to its venue's engine.

        Returns the engine's answer (``float`` / ``PathResult`` /
        ``list[Neighbor]`` / update return value). The engine is pinned
        for the duration — it cannot be evicted mid-request, so updates
        are never silently dropped by a concurrent eviction.

        Observability: when the calling thread carries an
        :class:`~repro.obs.tracing.Observation` (installed by the shard
        worker for traced requests), the router records a
        ``router.<kind>`` span, an ``engine.<kind>`` span around the
        engine call, and — if the observation asks for stats — collects
        the query's :class:`~repro.core.results.QueryStats` into it.
        With a ``slow_query_threshold`` configured, requests at or
        above it emit one structured slow-query record. Without either,
        dispatch is exactly the uninstrumented fast path.

        Raises:
            ServingError: unknown venue id or unknown request kind.

        Thread safety: safe from any thread — this is the method the
        :class:`~repro.serving.frontend.ServingFrontend` workers call
        concurrently.
        """
        obs = current_observation()
        slowlog = self.slowlog
        if obs is None and slowlog is None and self._injected_latency is None:
            return self._execute(request)
        trace = obs.trace if obs is not None else None
        stats = None
        if obs is not None and obs.want_stats and request.kind in QUERY_KINDS:
            stats = QueryStats()
            obs.stats = stats
        delay = self._take_injected_latency()
        start = perf_counter()
        with trace.span(f"router.{request.kind}") if trace is not None else _NO_LOCK:
            if delay > 0.0:
                time.sleep(delay)
            result = self._execute(request, stats, trace)
        seconds = perf_counter() - start
        if slowlog is not None and seconds >= slowlog.threshold:
            if self._slow_counter is not None:
                self._slow_counter.inc()
            slowlog.record(
                venue=request.venue,
                kind=request.kind,
                seconds=seconds,
                trace=trace.to_doc() if trace is not None else None,
                stats=stats_to_doc(stats),
            )
        return result

    def inject_latency(self, seconds: float, count: int = 1) -> int:
        """Arm ``count`` artificially slow requests: each of the next
        ``count`` :meth:`execute` calls sleeps ``seconds`` inside its
        timed region (so traces, histograms and the slow-query log all
        see it). The fault-injection hook behind the protocol's
        ``inject_latency`` control kind; re-arming replaces any
        previous injection. Returns ``count``."""
        with self._mutex:
            self._injected_latency = [float(seconds), int(count)]
        return int(count)

    def _take_injected_latency(self) -> float:
        if self._injected_latency is None:
            return 0.0
        with self._mutex:
            armed = self._injected_latency
            if armed is None:
                return 0.0
            armed[1] -= 1
            if armed[1] <= 0:
                self._injected_latency = None
            return armed[0]

    def _execute(self, request: ServingRequest, stats=None, trace=None):
        engine, pinned = self._acquire(request.venue, pin=True)
        try:
            with self._mutex:
                self._requests += 1
                self._by_venue[request.venue] = self._by_venue.get(request.venue, 0) + 1
                slot = self._venues.get(request.venue)
            if slot is not None and self._logged(slot, engine):
                try:
                    if request.kind == "update":
                        return self._logged_update(request, slot, engine)
                    self._sync_from_log(request.venue, slot, engine)
                except SnapshotError:
                    # The log was compacted past this engine (it lagged
                    # across a primary's snapshot+compact). Its state is
                    # not wrong, just unreachable from the log — drop it
                    # and re-warm from the newer snapshot, which replays
                    # the surviving tail.
                    engine = self._refresh_engine(request.venue, engine)
                    if request.kind == "update":
                        return self._logged_update(request, slot, engine)
            kind = request.kind
            with trace.span(f"engine.{kind}") if trace is not None else _NO_LOCK:
                if kind == "distance":
                    return engine.distance(request.source, request.target,
                                           stats=stats)
                if kind == "path":
                    return engine.path(request.source, request.target,
                                       stats=stats)
                if kind == "knn":
                    return engine.knn(request.source, request.k, stats=stats)
                if kind == "range":
                    return engine.range_query(request.source, request.radius,
                                              stats=stats)
                if kind == "update":
                    return engine.update(request.op)
                raise ServingError(
                    f"unknown request kind {kind!r}; expected one of {REQUEST_KINDS}"
                )
        finally:
            if pinned:
                self._release(request.venue)

    def _logged_update(self, request: ServingRequest, slot: _VenueSlot,
                       engine: QueryEngine):
        """The primary's update path: catch up from the log (a freshly
        promoted primary may be behind its predecessor's appends), apply,
        then durably append — all under the venue's log lock, so the
        logged version sequence exactly mirrors the applied one. The op
        is acknowledged only after the append returns, which is what
        makes 'acknowledged' mean 'survives any crash'."""
        if slot.role != "primary":
            raise ServingError(
                f"venue {request.venue[:12]!r} is a read replica here; "
                "updates must go to the venue's primary"
            )
        state = self._log_state(request.venue, slot)
        with state.lock:
            self._replay_locked(engine, state)
            result = engine.update(request.op)
            state.log.append(engine.objects.version, request.op)
            state.synced_sig = state.log.tail_signature()
        with self._log_guard:
            self._log_appends += 1
        return result

    def _refresh_engine(self, venue_id: str, stale: QueryEngine) -> QueryEngine:
        """Replace a pooled engine that can no longer catch up from the
        log with a fresh warm start (keeping the pin accounting intact)."""
        with self._mutex:
            if self._engines.get(venue_id) is stale:
                del self._engines[venue_id]
                self._saved_updates.pop(venue_id, None)
        # pin accounting is per venue, not per engine object — the pin
        # taken on the stale engine keeps guarding the fresh one
        engine, _ = self._acquire(venue_id, pin=False)
        return engine

    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Write every *dirty* pooled engine back to the catalog.

        Dirty means updated since its last write-back — repeat flushes
        of an unchanged engine are no-ops, so periodic background
        flushes cost nothing at steady state. Returns the number of
        snapshots written. Call during shutdown (the frontend's
        ``shutdown`` does not flush automatically) or periodically for
        durability. Engines stay pooled.

        Thread safety: safe concurrently with requests. Each engine is
        serialized under its read lock, so every written snapshot is
        point-in-time consistent (concurrent updates briefly wait;
        queries do not). Like eviction write-back, the save runs under
        the router mutex — other venues' dispatch stalls for the
        duration of each dirty engine's save.
        """
        start = perf_counter()
        with self._mutex:
            items = list(self._engines.items())
            written = 0
            for venue_id, engine in items:
                if self._write_back(venue_id, engine, self._venues.get(venue_id)):
                    written += 1
                    self._write_backs += 1
        if self._flush_timer is not None:
            self._flush_timer.observe(perf_counter() - start)
        return written

    # ------------------------------------------------------------------
    # Background durability
    # ------------------------------------------------------------------
    def start_auto_flush(
        self, interval: float = 30.0, *, jitter: float = 0.1,
        seed: int | None = None,
    ) -> "PeriodicFlusher":
        """Start (or return) this router's background periodic flusher.

        A daemon :class:`PeriodicFlusher` thread calls :meth:`flush`
        every ``interval`` seconds (randomized by ``±jitter`` so a
        fleet of routers/shards started together does not flush in
        lock-step). Idempotent while a flusher is running; a stopped
        flusher is replaced. This bounds the durability window of the
        serving layer: after a crash, at most one interval's worth of
        updates has not been written back to the catalog.

        Thread safety: safe from any thread.
        """
        with self._mutex:
            if self._flusher is not None and self._flusher.running:
                return self._flusher
            flusher = PeriodicFlusher(self, interval, jitter=jitter, seed=seed)
            self._flusher = flusher
        flusher.start()
        return flusher

    def stop_auto_flush(self) -> None:
        """Stop the background flusher, if one is running (idempotent).

        Blocks until the flusher thread has exited — a flush already in
        progress completes first.
        """
        with self._mutex:
            flusher, self._flusher = self._flusher, None
        if flusher is not None:
            flusher.stop()

    def stats(self) -> RouterStats:
        """A consistent snapshot of router counters.

        Thread safety: taken under the router mutex — safe and
        consistent at any time.
        """
        with self._mutex:
            return RouterStats(
                venues=len(self._venues),
                pooled=len(self._engines),
                requests=self._requests,
                warm_starts=self._warm_starts,
                evictions=self._evictions,
                write_backs=self._write_backs,
                log_appends=self._log_appends,
                log_replays=self._log_replays,
                by_venue=dict(self._by_venue),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"VenueRouter(venues={s.venues}, pooled={s.pooled}/"
            f"{self.capacity or '∞'}, requests={s.requests})"
        )


class PeriodicFlusher:
    """Background durability: a daemon thread flushing a router.

    Calls ``router.flush()`` every ``interval`` seconds, each cycle's
    sleep randomized to ``interval * (1 ± jitter)`` so many flushers
    started together (one per shard process) spread their catalog
    writes instead of stampeding. :meth:`~VenueRouter.flush` is a no-op
    for engines that have not been updated since their last save, so an
    idle flusher costs one counter comparison per pooled engine per
    cycle.

    A flush that raises (e.g. the catalog directory became unwritable)
    is recorded in :attr:`last_error` and counted in :attr:`errors`;
    the thread keeps running — transient I/O failures must not silently
    end durability.

    Prefer :meth:`VenueRouter.start_auto_flush` over constructing this
    directly. :meth:`stop` is idempotent and joins the thread, letting
    an in-progress flush finish.
    """

    def __init__(self, router: VenueRouter, interval: float = 30.0, *,
                 jitter: float = 0.1, seed: int | None = None) -> None:
        if interval <= 0:
            raise ServingError(f"flush interval must be > 0, got {interval}")
        if not 0.0 <= jitter < 1.0:
            raise ServingError(f"jitter must be in [0, 1), got {jitter}")
        self.router = router
        self.interval = float(interval)
        self.jitter = float(jitter)
        self._rng = random.Random(seed)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: completed flush cycles (including no-op ones)
        self.cycles = 0
        #: snapshots written across all cycles
        self.written = 0
        #: flush cycles that raised
        self.errors = 0
        #: the most recent flush exception, if any
        self.last_error: BaseException | None = None

    @property
    def running(self) -> bool:
        """``True`` from construction until :meth:`stop`."""
        return not self._stop.is_set()

    def start(self) -> "PeriodicFlusher":
        """Start the daemon thread (idempotent until :meth:`stop`)."""
        if self._thread is None and not self._stop.is_set():
            self._thread = threading.Thread(
                target=self._run, name="router-flusher", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, *, final_flush: bool = False) -> None:
        """Stop and join the thread; optionally flush once more.

        ``final_flush=True`` runs one last synchronous ``flush()``
        after the thread exits — what a shard worker does on graceful
        drain so the durability window closes at zero.
        """
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()
        if final_flush:
            self.written += self.router.flush()
            self.cycles += 1

    def _delay(self) -> float:
        return self.interval * (1.0 + self._rng.uniform(-self.jitter, self.jitter))

    def _run(self) -> None:
        while not self._stop.wait(self._delay()):
            try:
                self.written += self.router.flush()
            except BaseException as exc:  # noqa: BLE001 - keep flushing
                self.errors += 1
                self.last_error = exc
            finally:
                self.cycles += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return (
            f"PeriodicFlusher({state}, interval={self.interval:g}s, "
            f"cycles={self.cycles}, written={self.written})"
        )
