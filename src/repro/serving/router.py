"""VenueRouter: a bounded pool of warm-started engines, one per venue.

The router turns a :class:`~repro.storage.catalog.SnapshotCatalog` into
a multi-venue dispatch table. Venues are registered up front
(:meth:`VenueRouter.add_venue`) and keyed by their **venue
fingerprint** — the same key the catalog stores snapshots under — so a
request tagged with a venue id always reaches the index built for
exactly that venue revision.

Engines are created lazily on first request via
``catalog.engine_for(space, ...)`` (load the snapshot when one exists,
else cold-build and save) with ``thread_safe=True``, and live in a
bounded LRU pool: when more venues are registered than the pool admits,
the least-recently-used **idle** engine is evicted. An evicted engine
that served updates is first snapshotted back into its catalog slot
(*write-back*), so its object state survives eviction and the next
request for that venue warm-starts from where it left off.

Thread safety: every public method may be called from any thread. The
router holds one internal mutex around its pool bookkeeping; engine
warm starts happen *outside* that mutex (serialized per venue by the
catalog's slot locks), so a slow cold build for one venue never blocks
requests for another.

Lock ordering (outermost first): router mutex -> engine locks /
catalog locks. Warm starts (slow cold builds) happen with the router
mutex *released*; only eviction write-back runs under it — a deliberate
stall that makes "save then drop" atomic against a concurrent re-load
of the same venue from the stale file. Engines and the catalog never
call back into the router, so the ordering is acyclic and
deadlock-free.
"""

from __future__ import annotations

import random
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..engine.engine import QueryEngine
from ..exceptions import ServingError
from ..model.indoor_space import IndoorSpace
from ..storage.catalog import SnapshotCatalog
from ..storage.snapshot import venue_fingerprint
from .protocol import QUERY_KINDS, Request

#: request kinds the router dispatches (mirrors the engine API).
#: Control kinds (:data:`repro.serving.protocol.CONTROL_KINDS`) are
#: handled one layer up, by the shard worker / cluster.
REQUEST_KINDS = QUERY_KINDS

#: The router's request shape *is* the serving protocol's
#: :class:`~repro.serving.protocol.Request` — one request object drives
#: the in-thread frontend, the shard socket transport, and the cluster.
ServingRequest = Request


@dataclass(slots=True)
class _VenueSlot:
    """Registration record for one venue (static; read-only after
    :meth:`VenueRouter.add_venue`)."""

    space: IndoorSpace
    kind: str
    objects: object = None
    builder: object = None


@dataclass(slots=True)
class RouterStats:
    """Point-in-time router counters (monotone except ``pooled``)."""

    venues: int = 0
    pooled: int = 0
    requests: int = 0
    warm_starts: int = 0
    evictions: int = 0
    write_backs: int = 0
    by_venue: dict = field(default_factory=dict)


class VenueRouter:
    """Dispatch venue-tagged requests to a bounded pool of engines.

    Args:
        catalog: the snapshot catalog engines warm-start from (and are
            written back into on eviction).
        capacity: maximum engines kept in the pool. ``0`` means
            unbounded. Busy engines (requests in flight) are never
            evicted, so the bound is soft under extreme concurrency.
        kind: default index kind for :meth:`add_venue`.
        mmap: memory-map snapshot binary sections on warm start instead
            of copying them into each engine — the shard worker turns
            this on so sibling engines of one venue share page cache.
        **engine_kwargs: forwarded to every :class:`QueryEngine`
            (``thread_safe=True`` is always enforced — a pooled engine
            is by definition shared).

    Thread safety: all methods are safe from any thread; see the module
    docstring for the locking design.
    """

    def __init__(
        self,
        catalog: SnapshotCatalog,
        *,
        capacity: int = 8,
        kind: str = "VIP-Tree",
        mmap: bool = False,
        **engine_kwargs,
    ) -> None:
        self.catalog = catalog
        self.capacity = int(capacity)
        self.default_kind = kind
        self.mmap = bool(mmap)
        engine_kwargs["thread_safe"] = True
        self._engine_kwargs = engine_kwargs
        self._mutex = threading.Lock()
        self._venues: dict[str, _VenueSlot] = {}
        self._engines: OrderedDict[str, QueryEngine] = OrderedDict()
        self._inflight: dict[str, int] = {}
        self._requests = 0
        self._warm_starts = 0
        self._evictions = 0
        self._write_backs = 0
        self._by_venue: dict[str, int] = {}
        #: update count already persisted per venue — write-back and
        #: flush() only re-serialize engines dirty since their last save
        self._saved_updates: dict[str, int] = {}
        self._flusher: PeriodicFlusher | None = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_venue(self, space: IndoorSpace, *, kind: str | None = None,
                  objects=None, builder=None) -> str:
        """Register a venue and return its id (the venue fingerprint).

        ``objects``/``builder`` are used only if this venue's engine is
        ever cold-built (no snapshot in the catalog yet) — a loaded
        snapshot serves the object set it was saved with. Registering
        the same venue twice is idempotent (the latest registration
        wins).

        Thread safety: safe from any thread.
        """
        venue_id = venue_fingerprint(space)
        slot = _VenueSlot(space=space, kind=kind or self.default_kind,
                          objects=objects, builder=builder)
        with self._mutex:
            self._venues[venue_id] = slot
        return venue_id

    def venue_ids(self) -> list[str]:
        """Registered venue ids, in registration order."""
        with self._mutex:
            return list(self._venues)

    def describe(self, venue_id: str) -> tuple[str, str]:
        """``(venue name, index kind)`` for a registered venue id."""
        with self._mutex:
            slot = self._venues.get(venue_id)
        if slot is None:
            raise ServingError(f"unknown venue id {venue_id[:12]!r}")
        return slot.space.name, slot.kind

    # ------------------------------------------------------------------
    # Engine pool
    # ------------------------------------------------------------------
    def engine(self, venue_id: str) -> QueryEngine:
        """The venue's pooled engine, warm-starting it if necessary.

        Prefer :meth:`execute` for serving work — it additionally pins
        the engine against eviction for the request's duration. A
        reference obtained here stays valid and answer-correct after
        eviction, but updates applied to an already-evicted engine are
        not written back.

        Thread safety: safe from any thread; concurrent first calls for
        one venue warm-start once (catalog slot lock) and the pool
        keeps a single shared engine.
        """
        engine, _ = self._acquire(venue_id, pin=False)
        return engine

    def _acquire(self, venue_id: str, *, pin: bool) -> tuple[QueryEngine, bool]:
        """``(engine, pinned)`` — pooled lookup, else warm start.

        With ``pin=True`` the in-flight count is incremented under the
        same mutex hold that resolves the engine, closing the window in
        which an eviction could observe the engine as idle.
        """
        with self._mutex:
            slot = self._venues.get(venue_id)
            if slot is None:
                raise ServingError(f"unknown venue id {venue_id[:12]!r}")
            engine = self._engines.get(venue_id)
            if engine is not None:
                self._engines.move_to_end(venue_id)
                if pin:
                    self._inflight[venue_id] = self._inflight.get(venue_id, 0) + 1
                return engine, pin

        # Warm start outside the router mutex: the catalog slot lock
        # serializes concurrent builds of the same venue.
        fresh = self.catalog.engine_for(
            slot.space, slot.kind, objects=slot.objects, builder=slot.builder,
            mmap=self.mmap, **self._engine_kwargs,
        )
        with self._mutex:
            engine = self._engines.get(venue_id)
            if engine is None:
                engine = fresh
                self._engines[venue_id] = engine
                # the fresh engine's update counter restarts at zero:
                # reset the venue's persisted-updates watermark with it
                self._saved_updates.pop(venue_id, None)
                self._warm_starts += 1
                self._evict_idle_locked()
            else:
                self._engines.move_to_end(venue_id)  # lost the race: share theirs
            if pin:
                self._inflight[venue_id] = self._inflight.get(venue_id, 0) + 1
            return engine, pin

    def _release(self, venue_id: str) -> None:
        with self._mutex:
            left = self._inflight.get(venue_id, 0) - 1
            if left > 0:
                self._inflight[venue_id] = left
            else:
                self._inflight.pop(venue_id, None)

    def _evict_idle_locked(self) -> None:
        """Evict least-recently-used idle engines down to capacity.

        Caller holds the mutex. Engines that served updates are
        snapshotted back into their catalog slot first (write-back), so
        no object state is lost; the save happens synchronously — the
        caller that triggered the eviction pays it, keeping the pool
        bound honest.
        """
        if self.capacity <= 0:
            return
        while len(self._engines) > self.capacity:
            victim = None
            for vid in self._engines:  # oldest first
                if self._inflight.get(vid, 0) == 0:
                    victim = vid
                    break
            if victim is None:
                return  # everything busy: soft bound, retry on next insert
            engine = self._engines.pop(victim)
            self._evictions += 1
            if self._write_back(victim, engine):
                self._write_backs += 1

    def _write_back(self, venue_id: str, engine: QueryEngine) -> bool:
        """Persist ``engine`` to its catalog slot if it is dirty —
        i.e. has served updates since its last write-back. Runs under
        the engine's read lock, so the saved state is point-in-time
        consistent: concurrent updates wait, concurrent queries do not.
        Returns whether a snapshot was written.
        """
        with engine.lock.read():
            updates = engine.stats().updates
            if updates <= self._saved_updates.get(venue_id, 0):
                return False
            self.catalog.save(
                engine.index,
                engine.object_index if engine.object_index is not None else engine.objects,
            )
        self._saved_updates[venue_id] = updates
        return True

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def execute(self, request: ServingRequest):
        """Dispatch one :class:`ServingRequest` to its venue's engine.

        Returns the engine's answer (``float`` / ``PathResult`` /
        ``list[Neighbor]`` / update return value). The engine is pinned
        for the duration — it cannot be evicted mid-request, so updates
        are never silently dropped by a concurrent eviction.

        Raises:
            ServingError: unknown venue id or unknown request kind.

        Thread safety: safe from any thread — this is the method the
        :class:`~repro.serving.frontend.ServingFrontend` workers call
        concurrently.
        """
        engine, pinned = self._acquire(request.venue, pin=True)
        try:
            with self._mutex:
                self._requests += 1
                self._by_venue[request.venue] = self._by_venue.get(request.venue, 0) + 1
            kind = request.kind
            if kind == "distance":
                return engine.distance(request.source, request.target)
            if kind == "path":
                return engine.path(request.source, request.target)
            if kind == "knn":
                return engine.knn(request.source, request.k)
            if kind == "range":
                return engine.range_query(request.source, request.radius)
            if kind == "update":
                return engine.update(request.op)
            raise ServingError(
                f"unknown request kind {kind!r}; expected one of {REQUEST_KINDS}"
            )
        finally:
            if pinned:
                self._release(request.venue)

    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Write every *dirty* pooled engine back to the catalog.

        Dirty means updated since its last write-back — repeat flushes
        of an unchanged engine are no-ops, so periodic background
        flushes cost nothing at steady state. Returns the number of
        snapshots written. Call during shutdown (the frontend's
        ``shutdown`` does not flush automatically) or periodically for
        durability. Engines stay pooled.

        Thread safety: safe concurrently with requests. Each engine is
        serialized under its read lock, so every written snapshot is
        point-in-time consistent (concurrent updates briefly wait;
        queries do not). Like eviction write-back, the save runs under
        the router mutex — other venues' dispatch stalls for the
        duration of each dirty engine's save.
        """
        with self._mutex:
            items = list(self._engines.items())
            written = 0
            for venue_id, engine in items:
                if self._write_back(venue_id, engine):
                    written += 1
                    self._write_backs += 1
        return written

    # ------------------------------------------------------------------
    # Background durability
    # ------------------------------------------------------------------
    def start_auto_flush(
        self, interval: float = 30.0, *, jitter: float = 0.1,
        seed: int | None = None,
    ) -> "PeriodicFlusher":
        """Start (or return) this router's background periodic flusher.

        A daemon :class:`PeriodicFlusher` thread calls :meth:`flush`
        every ``interval`` seconds (randomized by ``±jitter`` so a
        fleet of routers/shards started together does not flush in
        lock-step). Idempotent while a flusher is running; a stopped
        flusher is replaced. This bounds the durability window of the
        serving layer: after a crash, at most one interval's worth of
        updates has not been written back to the catalog.

        Thread safety: safe from any thread.
        """
        with self._mutex:
            if self._flusher is not None and self._flusher.running:
                return self._flusher
            flusher = PeriodicFlusher(self, interval, jitter=jitter, seed=seed)
            self._flusher = flusher
        flusher.start()
        return flusher

    def stop_auto_flush(self) -> None:
        """Stop the background flusher, if one is running (idempotent).

        Blocks until the flusher thread has exited — a flush already in
        progress completes first.
        """
        with self._mutex:
            flusher, self._flusher = self._flusher, None
        if flusher is not None:
            flusher.stop()

    def stats(self) -> RouterStats:
        """A consistent snapshot of router counters.

        Thread safety: taken under the router mutex — safe and
        consistent at any time.
        """
        with self._mutex:
            return RouterStats(
                venues=len(self._venues),
                pooled=len(self._engines),
                requests=self._requests,
                warm_starts=self._warm_starts,
                evictions=self._evictions,
                write_backs=self._write_backs,
                by_venue=dict(self._by_venue),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"VenueRouter(venues={s.venues}, pooled={s.pooled}/"
            f"{self.capacity or '∞'}, requests={s.requests})"
        )


class PeriodicFlusher:
    """Background durability: a daemon thread flushing a router.

    Calls ``router.flush()`` every ``interval`` seconds, each cycle's
    sleep randomized to ``interval * (1 ± jitter)`` so many flushers
    started together (one per shard process) spread their catalog
    writes instead of stampeding. :meth:`~VenueRouter.flush` is a no-op
    for engines that have not been updated since their last save, so an
    idle flusher costs one counter comparison per pooled engine per
    cycle.

    A flush that raises (e.g. the catalog directory became unwritable)
    is recorded in :attr:`last_error` and counted in :attr:`errors`;
    the thread keeps running — transient I/O failures must not silently
    end durability.

    Prefer :meth:`VenueRouter.start_auto_flush` over constructing this
    directly. :meth:`stop` is idempotent and joins the thread, letting
    an in-progress flush finish.
    """

    def __init__(self, router: VenueRouter, interval: float = 30.0, *,
                 jitter: float = 0.1, seed: int | None = None) -> None:
        if interval <= 0:
            raise ServingError(f"flush interval must be > 0, got {interval}")
        if not 0.0 <= jitter < 1.0:
            raise ServingError(f"jitter must be in [0, 1), got {jitter}")
        self.router = router
        self.interval = float(interval)
        self.jitter = float(jitter)
        self._rng = random.Random(seed)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: completed flush cycles (including no-op ones)
        self.cycles = 0
        #: snapshots written across all cycles
        self.written = 0
        #: flush cycles that raised
        self.errors = 0
        #: the most recent flush exception, if any
        self.last_error: BaseException | None = None

    @property
    def running(self) -> bool:
        """``True`` from construction until :meth:`stop`."""
        return not self._stop.is_set()

    def start(self) -> "PeriodicFlusher":
        """Start the daemon thread (idempotent until :meth:`stop`)."""
        if self._thread is None and not self._stop.is_set():
            self._thread = threading.Thread(
                target=self._run, name="router-flusher", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, *, final_flush: bool = False) -> None:
        """Stop and join the thread; optionally flush once more.

        ``final_flush=True`` runs one last synchronous ``flush()``
        after the thread exits — what a shard worker does on graceful
        drain so the durability window closes at zero.
        """
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()
        if final_flush:
            self.written += self.router.flush()
            self.cycles += 1

    def _delay(self) -> float:
        return self.interval * (1.0 + self._rng.uniform(-self.jitter, self.jitter))

    def _run(self) -> None:
        while not self._stop.wait(self._delay()):
            try:
                self.written += self.router.flush()
            except BaseException as exc:  # noqa: BLE001 - keep flushing
                self.errors += 1
                self.last_error = exc
            finally:
                self.cycles += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return (
            f"PeriodicFlusher({state}, interval={self.interval:g}s, "
            f"cycles={self.cycles}, written={self.written})"
        )
