"""Synchronous TCP client for the serving front door.

A thin, dependency-free wrapper over the framed wire protocol that
handles the bookkeeping every ad-hoc client was re-implementing:
request-id assignment, frame encode/decode, batch envelope pairing and
typed error materialization. One instance owns one socket; it is **not
thread-safe** — use one client per thread (the async front door
multiplexes any number of connections on one loop, so clients are
cheap).

Quickstart::

    from repro.serving import FrontDoorClient, Request

    with FrontDoorClient(("127.0.0.1", 9042)) as client:
        listing = client.call(Request(venue="", kind="venues"))
        answers = client.call_batch([
            Request(venue=vid, kind="distance", source=a, target=b),
            Request(venue=vid, kind="knn", source=a, k=5),
        ])  # values in request order; error slots are exception instances

``call`` raises the typed exception an error reply carries — including
:class:`~repro.exceptions.OverloadedError` with its ``retry_after``
hint when admission control shed the request. ``call_batch`` never
raises for per-slot failures (batch semantics isolate them); slots come
back as exception *instances* for the caller to inspect.
"""

from __future__ import annotations

import socket

from ..exceptions import ProtocolError
from .protocol import (
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    Request,
    Response,
    batch_reply_from_doc,
    batch_request_to_doc,
    is_batch_doc,
    recv_doc,
    reply_from_doc,
    request_to_doc,
    send_doc,
)
from .shard import _no_delay

__all__ = ["FrontDoorClient"]


class FrontDoorClient:
    """One framed-protocol connection to a serving front door.

    Args:
        address: ``(host, port)`` of the front door.
        timeout: socket timeout in seconds for connect and each
            receive (a wedged server surfaces as ``socket.timeout``
            instead of a silent hang).

    Pipelining is explicit: :meth:`send`/:meth:`send_batch` write
    frames without waiting, :meth:`recv`/:meth:`recv_batch` read the
    next reply frame; :meth:`call`/:meth:`call_batch` are the
    send-then-receive conveniences. Replies on one connection arrive
    in completion order for single frames (match by ``request_id``)
    while batch replies are one frame each, matched positionally.
    """

    def __init__(self, address, *, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection(address, timeout=timeout)
        _no_delay(self._sock)
        self._next_id = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def __enter__(self) -> "FrontDoorClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def send(self, request: Request) -> int:
        """Write one request frame; returns its assigned request id."""
        request_id = self._next_id
        self._next_id += 1
        send_doc(self._sock, request_to_doc(request, request_id))
        return request_id

    def send_batch(self, requests) -> list[int]:
        """Write one batch frame; returns the per-element request ids
        (replies come back positionally in one frame)."""
        requests = tuple(requests)
        request_ids = list(range(self._next_id, self._next_id + len(requests)))
        self._next_id += len(requests)
        send_doc(self._sock, batch_request_to_doc(
            BatchRequest(requests), request_ids))
        return request_ids

    def recv(self) -> Response | ErrorResponse:
        """Read the next single-reply frame."""
        doc = self._recv_doc()
        return reply_from_doc(doc)

    def recv_batch(self) -> BatchResponse:
        """Read the next batch-reply frame."""
        doc = self._recv_doc()
        if not is_batch_doc(doc):
            raise ProtocolError(
                "expected a batch reply frame, got a single reply"
            )
        return batch_reply_from_doc(doc)

    def _recv_doc(self) -> dict:
        doc = recv_doc(self._sock)
        if doc is None:
            raise ProtocolError("server closed the connection")
        return doc

    # ------------------------------------------------------------------
    def call(self, request: Request):
        """Send one request and return its decoded value; error replies
        raise their typed exception."""
        self.send(request)
        reply = self.recv()
        if isinstance(reply, ErrorResponse):
            raise reply.exception()
        return reply.value()

    def call_reply(self, request: Request) -> Response | ErrorResponse:
        """Send one request and return the raw reply envelope (for
        callers that want stats/trace riders or non-raising errors)."""
        self.send(request)
        return self.recv()

    def call_batch(self, requests) -> list:
        """Send one batch and return per-slot values in request order;
        failed slots come back as exception instances (not raised)."""
        self.send_batch(requests)
        return self.recv_batch().values()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        try:
            peer = self._sock.getpeername()
        except OSError:
            peer = "closed"
        return f"FrontDoorClient({peer})"
