"""ClusterFrontend: replicated, consistent-hash-sharded serving.

The top layer of the sharded serving stack. A
:class:`ClusterFrontend` runs N :class:`~repro.serving.shard.
ShardProcess` workers — each a separate OS process owning a
:class:`~repro.serving.router.VenueRouter` over the shared snapshot
catalog — and places venue fingerprints on them with a
**consistent-hash ring** (:class:`~repro.serving.ring.HashRing`):
each venue's first ring successor is its **primary**, the next
``replication - 1`` distinct successors its **replicas**. Requests are
venue-tagged :class:`~repro.serving.protocol.Request` objects (the
same protocol the in-thread frontend speaks), answered through
per-request futures; because shards are processes, the CPU-bound index
math of different venues runs on different cores.

Replication and durability (``replication`` / ``oplog``):

* **Single-writer updates** — every update goes to the venue's
  primary, which applies it and appends it to the venue's durable
  operation log (:mod:`repro.storage.oplog`) *before acknowledging* —
  an acked update survives any crash.
* **Read fan-out** — kNN/range/distance/path reads rotate across the
  venue's live primary + replicas; replicas tail the log, so their
  answers reflect every acknowledged update (the submit-side happens-
  before: an update is acked before any later read is submitted).
* **Failover** — when a primary dies, the next read or update for its
  venues promotes the first live replica (it catches up from the log
  tail, so zero acknowledged updates are lost); the dead shard
  respawns lazily as a trailing replica.
* **Elastic membership** — :meth:`add_shard` / :meth:`remove_shard`
  re-ring under traffic: only ~1/N of venues move (the consistent-hash
  property), each moved venue is re-replicated onto its new placement
  while reads keep flowing (updates for a venue pause briefly while it
  moves — the single-writer handoff).

Operational behavior (unchanged from the unreplicated cluster):

* **Backpressure** — each shard bounds its in-flight window
  (``max_inflight``); ``submit`` blocks while the target shard is
  saturated and raises :class:`~repro.exceptions.ServingError` after
  ``timeout`` seconds.
* **Crash restart** — a dead shard fails its in-flight futures; the
  next request for one of its venues respawns the process, which
  warm-starts from the catalog's snapshots **plus each venue's log
  tail**. With ``oplog=False`` the old durability window applies
  (updates since the last flush are lost).
* **Graceful drain/shutdown** — :meth:`drain` barriers on every shard;
  :meth:`shutdown` drains, flushes dirty engines, and joins every
  worker process.

Thread safety: every public method may be called from any number of
threads. Venue registration state lives under one cluster mutex; each
shard has its own restart lock, so a crashed shard's respawn never
blocks traffic to healthy shards.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from time import perf_counter

from ..exceptions import OverloadedError, ServingError
from ..model.indoor_space import IndoorSpace
from ..model.io_json import objects_to_dict, space_to_dict
from ..obs import (
    MetricsRegistry,
    StatsDoc,
    counter_entry,
    gauge_entry,
    merge_snapshots,
    summarize,
)
from ..storage.snapshot import venue_fingerprint
from .admission import AdmissionController
from .protocol import FAULT_KINDS, QUERY_KINDS, READ_KINDS, Request
from .ring import DEFAULT_VNODES, HashRing
from .shard import (
    DEFAULT_FLUSH_INTERVAL,
    DEFAULT_MAX_INFLIGHT,
    ShardProcess,
)

#: how long an update waits for an in-progress venue move before
#: giving up (the single-writer handoff window; normally milliseconds)
_MOVE_WAIT = 60.0


def _collect_cluster_stats(cluster: "ClusterFrontend"):
    """Registry collector: cluster counters as metric fragments."""
    s = cluster.stats()
    yield counter_entry("cluster_submitted_total", s.submitted)
    yield counter_entry("cluster_rejected_total", s.rejected)
    yield counter_entry("cluster_restarts_total", s.restarts)
    yield counter_entry("cluster_promotions_total", s.promotions)
    yield counter_entry("cluster_moves_total", s.moves)
    yield gauge_entry("cluster_shards_alive", float(s.alive), agg="sum")
    yield gauge_entry("cluster_venues", float(s.venues), agg="sum")


@dataclass(slots=True)
class ClusterStats(StatsDoc):
    """Point-in-time cluster counters.

    ``submitted``, ``restarts``, ``promotions`` and ``moves`` are
    monotone; ``alive`` counts currently-running shard processes
    (never-started shards are spawned lazily and count as not alive).
    """

    shards: int = 0
    alive: int = 0
    venues: int = 0
    submitted: int = 0
    #: requests shed by per-venue admission control (OverloadedError)
    rejected: int = 0
    restarts: int = 0
    #: replication factor venues are placed with
    replication: int = 1
    #: replica-to-primary promotions after a primary death
    promotions: int = 0
    #: venue relocations applied by add_shard/remove_shard
    moves: int = 0
    #: *primary* venue count per shard index
    by_shard: dict = field(default_factory=dict)


@dataclass(slots=True)
class _Registration:
    """What it takes to (re-)register one venue on its shards.

    ``nodes[0]`` is the venue's current primary, the rest its replicas
    in ring order — promotion and relocation rewrite this list under
    the cluster mutex. ``rr`` is the venue's read round-robin cursor;
    ``moving`` gates updates while the venue is being re-placed (set
    means released)."""

    nodes: list[int]
    payload: dict
    rr: int = 0
    moving: threading.Event | None = None


class ClusterFrontend:
    """Serve many venues across N venue-router shard processes.

    Args:
        catalog_root: snapshot catalog directory shared by all shards —
            warm-start source, write-back/flush target, and home of the
            per-venue operation logs.
        shards: number of worker processes (the parallelism).
        replication: copies of each venue (1 = no replicas). Capped by
            the live shard count; replicas serve reads and take over as
            primary when theirs dies.
        kind: default index kind for :meth:`add_venue`.
        capacity: per-shard engine-pool bound.
        flush_interval: per-shard background flush period (seconds).
            With the log enabled this bounds log *length* (flush
            compacts), not durability; with ``oplog=False`` it is the
            durability window. ``0`` disables periodic flushing.
        max_inflight: per-shard bound on concurrently in-flight
            requests (the backpressure knob).
        mmap: shard workers memory-map snapshot binary sections on warm
            start (default ``True``).
        restart: respawn crashed shards on the next request for one of
            their venues (on by default; ``False`` turns a crash into a
            permanent ``ServingError`` for that shard's venues once no
            live replica remains).
        oplog: durable per-venue operation logs (default on): acked
            updates survive crashes, replicas tail the log. ``False``
            restores the snapshot-only durability window (and degrades
            replicas to frozen snapshots — only meaningful with
            ``replication=1``).
        vnodes: virtual points per shard on the placement ring.
        registry: :class:`~repro.obs.MetricsRegistry` for the cluster's
            own series (submission counters, respawn/move durations).
            A private one is created when not given; :meth:`metrics`
            merges it with every live shard's registry snapshot.
        admission: optional per-venue
            :class:`~repro.serving.admission.AdmissionController`.
            When set, engine-backed requests pass it before any shard
            work: a venue over its rate allowance or queue-depth bound
            is shed with a typed
            :class:`~repro.exceptions.OverloadedError` (retry-after
            hint attached) instead of being queued — one pathological
            venue then cannot starve the rest. A controller without
            its own registry inherits the cluster's, so its
            counters/gauges surface in :meth:`metrics`.
        slow_query_threshold: seconds; forwarded to every shard worker
            — requests slower than this land in the shard's structured
            slow-query log under ``<catalog_root>/obs/``. ``None``
            disables slow-query logging.
        mp_context: optional :mod:`multiprocessing` context.

    Usable as a context manager: ``with ClusterFrontend(...) as c:``
    pre-spawns every shard and shuts down gracefully on exit.
    """

    def __init__(
        self,
        catalog_root,
        *,
        shards: int = 4,
        replication: int = 1,
        kind: str = "VIP-Tree",
        capacity: int = 8,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        restart: bool = True,
        mmap: bool = True,
        oplog: bool = True,
        vnodes: int = DEFAULT_VNODES,
        registry: MetricsRegistry | None = None,
        admission: AdmissionController | None = None,
        slow_query_threshold: float | None = None,
        mp_context=None,
    ) -> None:
        if shards < 1:
            raise ServingError(f"shards must be >= 1, got {shards}")
        if replication < 1:
            raise ServingError(f"replication must be >= 1, got {replication}")
        if replication > 1 and not oplog:
            raise ServingError(
                "replication needs the operation log: replicas tail it — "
                "pass oplog=True (the default) or replication=1"
            )
        self.catalog_root = str(catalog_root)
        self.replication = int(replication)
        self.default_kind = kind
        self.capacity = int(capacity)
        self.flush_interval = float(flush_interval)
        self.max_inflight = int(max_inflight)
        self.mmap = bool(mmap)
        self.restart = bool(restart)
        self.oplog = bool(oplog)
        self.slow_query_threshold = (
            float(slow_query_threshold)
            if slow_query_threshold is not None else None
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.registry.register_collector(self, _collect_cluster_stats)
        self.admission = admission
        if admission is not None and admission.registry is None:
            admission.registry = self.registry
        self._respawn_timer = self.registry.histogram("cluster_respawn_seconds")
        self._move_timer = self.registry.histogram("cluster_move_seconds")
        self._mp_context = mp_context
        self._handles: dict[int, ShardProcess | None] = {
            idx: None for idx in range(int(shards))
        }
        self._shard_locks: dict[int, threading.Lock] = {
            idx: threading.Lock() for idx in range(int(shards))
        }
        self._next_shard_id = int(shards)
        self.ring = HashRing(range(int(shards)), vnodes=vnodes)
        self._mutex = threading.Lock()
        self._registrations: dict[str, _Registration] = {}
        self._reg_order: list[str] = []
        self._accepting = True
        self._submitted = 0
        self._rejected = 0
        self._restarts = 0
        self._promotions = 0
        self._moves = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        """Current shard count (grows/shrinks with
        :meth:`add_shard`/:meth:`remove_shard`)."""
        with self._mutex:
            return len(self._handles)

    def start(self) -> "ClusterFrontend":
        """Pre-spawn every shard process (otherwise lazy per shard)."""
        for idx in self._shard_ids():
            self._shard(idx)
        return self

    def __enter__(self) -> "ClusterFrontend":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop intake, drain + flush every shard, join the processes.

        Each live worker answers its ``shutdown`` request only after
        everything submitted before it, flushes its dirty engines, and
        exits. Idempotent.
        """
        with self._mutex:
            self._accepting = False
        for idx in self._shard_ids():
            lock = self._shard_locks.get(idx)
            if lock is None:
                continue
            with lock:
                handle = self._handles.get(idx)
                if handle is not None:
                    handle.shutdown(timeout=timeout)

    def _shard_ids(self) -> list[int]:
        with self._mutex:
            return list(self._handles)

    def _handle(self, idx: int) -> ShardProcess | None:
        with self._mutex:
            return self._handles.get(idx)

    # ------------------------------------------------------------------
    # Partitioning & registration
    # ------------------------------------------------------------------
    def shard_for(self, venue_id: str) -> int:
        """The shard currently acting as ``venue_id``'s primary.

        For a registered venue this reflects promotions and
        relocations; otherwise it is the ring placement — a pure
        function of the shard ids and the fingerprint, identical across
        processes and runs.
        """
        return self.placement(venue_id)[0]

    def placement(self, venue_id: str) -> list[int]:
        """``[primary, replica, ...]`` shard ids for ``venue_id``."""
        with self._mutex:
            reg = self._registrations.get(venue_id)
            if reg is not None:
                return list(reg.nodes)
            return self.ring.nodes_for(venue_id, self.replication)

    def add_venue(self, space: IndoorSpace, *, kind: str | None = None,
                  objects=None) -> str:
        """Register a venue on its primary + replicas; returns the
        venue fingerprint.

        The venue document (and the optional initial object set, used
        only if a shard cold-builds) travels to each worker over the
        protocol — a shard needs nothing but the catalog directory.
        The registration is remembered so a restarted shard re-registers
        its venues automatically. Idempotent per venue revision.
        """
        venue_id = venue_fingerprint(space)
        payload = {
            "space": space_to_dict(space),
            "objects": objects_to_dict(objects) if objects is not None else None,
            "kind": kind or self.default_kind,
        }
        with self._mutex:
            if not self._accepting:
                raise ServingError("cluster is shut down")
            existing = self._registrations.get(venue_id)
            nodes = (list(existing.nodes) if existing is not None
                     else self.ring.nodes_for(venue_id, self.replication))
            if existing is None:
                self._reg_order.append(venue_id)
            self._registrations[venue_id] = _Registration(nodes=nodes,
                                                          payload=payload)
        for position, idx in enumerate(nodes):
            echoed = self._shard(idx).call(
                Request(venue=venue_id, kind="add_venue",
                        payload=self._role_payload(payload, position))
            )
            if echoed != venue_id:  # pragma: no cover - codec regression guard
                raise ServingError(
                    f"shard {idx} registered fingerprint {echoed[:12]!r}, "
                    f"expected {venue_id[:12]!r} — venue document did not "
                    "round-trip canonically"
                )
        return venue_id

    @staticmethod
    def _role_payload(payload: dict, position: int) -> dict:
        return {**payload, "role": "primary" if position == 0 else "replica"}

    def venue_ids(self) -> list[str]:
        """Registered venue ids, in registration order."""
        with self._mutex:
            return list(self._reg_order)

    # ------------------------------------------------------------------
    # Shard management
    # ------------------------------------------------------------------
    def _shard(self, idx: int) -> ShardProcess:
        """The live handle for shard ``idx``, (re)spawning if needed."""
        handle = self._handle(idx)
        if handle is not None and handle.alive:
            return handle
        with self._mutex:
            lock = self._shard_locks.get(idx)
        if lock is None:
            raise ServingError(f"no such shard {idx}")
        with lock:
            handle = self._handle(idx)
            if handle is not None and handle.alive:
                return handle
            with self._mutex:
                if not self._accepting:
                    raise ServingError("cluster is shut down")
                if idx not in self._handles:
                    raise ServingError(f"no such shard {idx}")
                crashed = handle is not None
                if crashed and not self.restart:
                    raise ServingError(
                        f"shard {idx} died and restart is disabled"
                    )
                if crashed:
                    self._restarts += 1
                regs = [
                    (vid, self._role_payload(reg.payload,
                                             reg.nodes.index(idx)))
                    for vid in self._reg_order
                    for reg in (self._registrations[vid],)
                    if idx in reg.nodes
                ]
            if crashed:
                handle.kill()  # reap whatever is left of the old process
            spawn_start = perf_counter()
            fresh = ShardProcess(
                self.catalog_root,
                shard_id=idx,
                kind=self.default_kind,
                capacity=self.capacity,
                flush_interval=self.flush_interval,
                max_inflight=self.max_inflight,
                mmap=self.mmap,
                oplog=self.oplog,
                slow_query_threshold=self.slow_query_threshold,
                mp_context=self._mp_context,
            ).start()
            # Re-register this shard's venues with their current roles.
            # Pipelined: every registration is submitted before any
            # result is awaited, so the venues' (lazy) recoveries are
            # not serialized behind one round-trip each — an 8-venue
            # restart costs one round-trip, not eight.
            pending = [
                (vid, fresh.submit(Request(venue=vid, kind="add_venue",
                                           payload=payload)))
                for vid, payload in regs
            ]
            for vid, future in pending:
                future.result()
            self._respawn_timer.observe(perf_counter() - spawn_start)
            self._handles[idx] = fresh
            return fresh

    def add_shard(self) -> int:
        """Grow the cluster by one shard, live; returns its id.

        The new shard joins the ring, which relocates only the venues
        whose arcs it now owns (~``1/N`` of them); each is re-registered
        on its new placement under traffic (reads keep flowing; a moved
        venue's updates pause for the single-writer handoff).
        """
        with self._mutex:
            if not self._accepting:
                raise ServingError("cluster is shut down")
            idx = self._next_shard_id
            self._next_shard_id += 1
            self._handles[idx] = None
            self._shard_locks[idx] = threading.Lock()
            self.ring.add_node(idx)
            moves = self._replan_locked()
        self._apply_moves(moves)
        return idx

    def remove_shard(self, idx: int, timeout: float = 30.0) -> None:
        """Shrink the cluster by one shard, live.

        The shard leaves the ring, its venues are re-replicated onto
        their new placements (again only ~``1/N`` of all venues move),
        and the process is gracefully drained, flushed and joined.
        """
        with self._mutex:
            if idx not in self._handles:
                raise ServingError(f"no such shard {idx}")
            if len(self._handles) == 1:
                raise ServingError("cannot remove the last shard")
            self.ring.remove_node(idx)
            moves = self._replan_locked()
        self._apply_moves(moves)
        with self._shard_locks[idx]:
            with self._mutex:
                handle = self._handles.pop(idx)
            if handle is not None:
                handle.shutdown(timeout=timeout)
        with self._mutex:
            self._shard_locks.pop(idx, None)

    def _replan_locked(self) -> list[tuple[str, list[int]]]:
        """Venues whose ring placement no longer matches their
        registration (caller holds the mutex)."""
        moves = []
        for vid in self._reg_order:
            reg = self._registrations[vid]
            nodes = self.ring.nodes_for(vid, self.replication)
            if nodes != reg.nodes:
                moves.append((vid, nodes))
        return moves

    def _apply_moves(self, moves: list[tuple[str, list[int]]]) -> None:
        for venue_id, nodes in moves:
            self._move_venue(venue_id, nodes)

    def _move_venue(self, venue_id: str, new_nodes: list[int]) -> None:
        """Re-place one venue: the single-writer handoff.

        Updates for the venue are gated while the old primary is
        retired (drained, demoted, its log handle closed via
        ``remove_venue``) and the new placement registered; reads keep
        being served throughout — by the old nodes until the swap, by
        the new ones after. The operation log makes the handoff
        lossless: every update acked on the old primary is in the log
        the new primary replays.
        """
        move_start = perf_counter()
        with self._mutex:
            reg = self._registrations.get(venue_id)
            if reg is None or reg.nodes == new_nodes:
                return
            old_nodes = list(reg.nodes)
            gate = threading.Event()
            reg.moving = gate
            payload = dict(reg.payload)
        try:
            # Register on the new placement first (lazy warm starts):
            # reads on old nodes continue while this happens.
            for position, idx in enumerate(new_nodes):
                try:
                    self._shard(idx).call(
                        Request(venue=venue_id, kind="add_venue",
                                payload=self._role_payload(payload, position)))
                except ServingError:
                    pass  # dead node: it re-registers on respawn
            # Swap the registration before retiring anything: from here
            # reads route to the new placement, so dropping the venue
            # from the old nodes can never strand a concurrent read on
            # a node that just forgot it. Updates are still gated.
            with self._mutex:
                reg.nodes = list(new_nodes)
                self._moves += 1
            # Retire the old primary if it lost the role: demote first
            # (a replica never compacts — compacting a log another
            # process is appending to would orphan its writes), then
            # drop the venue so its log handle closes.
            for idx in old_nodes:
                if idx in new_nodes:
                    continue
                handle = self._handle(idx)
                if handle is None or not handle.alive:
                    continue
                try:
                    if idx == old_nodes[0]:
                        handle.call(Request(
                            venue=venue_id, kind="add_venue",
                            payload={**payload, "role": "replica"}))
                    handle.call(Request(venue=venue_id, kind="remove_venue"))
                except ServingError:
                    pass  # died mid-handoff: nothing left to retire
        finally:
            with self._mutex:
                reg.moving = None
            gate.set()
            self._move_timer.observe(perf_counter() - move_start)

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, request: Request, *, timeout: float | None = None,
               raw_reply: bool = False) -> Future:
        """Route one request; returns its future.

        Reads (:data:`~repro.serving.protocol.READ_KINDS`) rotate
        across the venue's live primary + replicas; updates go to the
        primary — promoting a live replica first if the primary is
        dead. Blocks while the target shard's in-flight window is full
        (backpressure); ``timeout`` turns saturation into a
        :class:`ServingError`. ``raw_reply`` resolves the future to the
        shard's :class:`~repro.serving.protocol.Response` envelope
        (with any ``stats``/``trace`` riders) instead of the decoded
        value — see :meth:`ShardProcess.submit
        <repro.serving.shard.ShardProcess.submit>`.

        Raises:
            OverloadedError: the venue was shed by admission control
                (rate allowance or queue-depth bound) — the request was
                not executed; retry after the attached hint.
            ServingError: unknown venue id, cluster shut down, dead
                shard with restart disabled, or backpressure timeout.
        """
        is_read = request.kind in READ_KINDS
        while True:
            with self._mutex:
                if not self._accepting:
                    raise ServingError("cluster is shut down")
                reg = self._registrations.get(request.venue)
                gate = reg.moving if reg is not None else None
            if reg is None:
                raise ServingError(f"unknown venue id {request.venue[:12]!r}")
            if is_read or gate is None:
                break
            # The venue is mid-move: updates wait out the single-writer
            # handoff, then re-resolve the (new) primary.
            if not gate.wait(_MOVE_WAIT):  # pragma: no cover - stuck move
                raise ServingError(
                    f"venue {request.venue[:12]!r} move did not finish "
                    f"within {_MOVE_WAIT}s"
                )
        # Admission control guards engine-backed work only: control
        # kinds (stats/flush/add_venue/...) are operational traffic a
        # shed venue must still be able to answer.
        admission = self.admission
        admitted = admission is not None and request.kind in QUERY_KINDS
        if admitted:
            try:
                admission.admit(request.venue)
            except OverloadedError:
                with self._mutex:
                    self._rejected += 1
                raise
        try:
            handle = (self._read_handle(reg) if is_read
                      else self._primary_handle(request.venue, reg))
            # Keep the plain call signature-stable (tests wrap submit).
            future = (handle.submit(request, timeout=timeout, raw_reply=True)
                      if raw_reply else handle.submit(request, timeout=timeout))
        except BaseException:
            if admitted:
                admission.release(request.venue)
            raise
        if admitted:
            future.add_done_callback(
                lambda _f, venue=request.venue: admission.release(venue))
        with self._mutex:
            self._submitted += 1
        return future

    def _primary_handle(self, venue_id: str, reg: _Registration) -> ShardProcess:
        """The venue's primary shard handle — promoting the first live
        replica when the primary is dead (failover), else respawning
        the primary (restart policy applies)."""
        with self._mutex:
            nodes = list(reg.nodes)
        head = self._handle(nodes[0])
        if head is None or head.alive:
            return self._shard(nodes[0])
        for idx in nodes[1:]:
            handle = self._handle(idx)
            if handle is not None and handle.alive:
                self._promote(venue_id, dead=nodes[0], target=idx)
                return handle
        return self._shard(nodes[0])

    def _promote(self, venue_id: str, *, dead: int, target: int) -> None:
        """Make ``target`` the venue's primary after ``dead`` crashed.

        The registration is reordered under the mutex (concurrent
        promoters race benignly — first one wins, the rest see the new
        order and do nothing); the surviving shard is told its new role
        so its router starts accepting updates, catching up from the
        log tail first — which is why no acknowledged update is lost.
        """
        with self._mutex:
            reg = self._registrations.get(venue_id)
            if reg is None or reg.nodes[0] != dead or target not in reg.nodes:
                return  # raced with another promoter or a relocation
            reg.nodes = [target] + [n for n in reg.nodes if n != target]
            self._promotions += 1
            payload = self._role_payload(reg.payload, 0)
        handle = self._handle(target)
        if handle is not None and handle.alive:
            try:
                handle.call(Request(venue=venue_id, kind="add_venue",
                                    payload=payload))
            except ServingError:  # pragma: no cover - died mid-promotion
                pass  # the next request retries against the reordered list

    def _read_handle(self, reg: _Registration) -> ShardProcess:
        """A live shard holding the venue, rotating reads across its
        primary + replicas. Never-started shards spawn lazily in
        rotation; crashed ones are skipped (failover) until every node
        is dead — then the restart policy decides on the first one."""
        with self._mutex:
            cursor = reg.rr
            reg.rr += 1
            nodes = list(reg.nodes)
        order = [nodes[(cursor + j) % len(nodes)] for j in range(len(nodes))]
        for idx in order:
            handle = self._handle(idx)
            if handle is None or handle.alive:
                return self._shard(idx)
        return self._shard(order[0])

    def request(self, venue: str, kind: str, **fields) -> Future:
        """Convenience: build a :class:`Request` and submit it."""
        return self.submit(Request(venue=venue, kind=kind, **fields))

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def inject_fault(self, shard: int, kind: str = "crash",
                     payload: dict | None = None) -> Future:
        """Send a fault-injection request to one shard (test/chaos
        hook). ``crash`` kills it on receipt; ``crash_after_n_ops``
        (``payload={"updates": n}``) arms a delayed mid-update-stream
        death; ``drop_connection`` simulates a partition. The returned
        future fails once the worker dies — except an armed
        ``crash_after_n_ops``, which is acknowledged normally.
        """
        if kind not in FAULT_KINDS:
            raise ServingError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        return self._shard(shard).submit(
            Request(venue="", kind=kind, payload=payload)
        )

    # ------------------------------------------------------------------
    # Cluster-wide operations
    # ------------------------------------------------------------------
    def _live_handles(self) -> list[ShardProcess]:
        with self._mutex:
            handles = list(self._handles.values())
        return [h for h in handles if h is not None and h.alive]

    def drain(self) -> None:
        """Block until every request submitted *so far* has completed.

        Workers answer strictly in order, so one ``ping`` per live
        shard is a complete barrier. Concurrent submitters may keep
        shards busy past this call — drain is a point-in-time barrier,
        not an intake stop (that is :meth:`shutdown`).
        """
        for handle in self._live_handles():
            handle.call(Request(venue="", kind="ping"))

    def flush(self) -> int:
        """Flush dirty primary engines on every live shard; returns
        snapshots written. With the log enabled this also compacts the
        flushed venues' logs (durability does not depend on it — acked
        updates are already logged)."""
        written = 0
        for handle in self._live_handles():
            written += handle.call(Request(venue="", kind="flush"))
        return written

    def stats(self) -> ClusterStats:
        """Local cluster counters (no worker round-trips — see
        :meth:`shard_stats` for the workers' own view)."""
        with self._mutex:
            by_shard: dict[int, int] = {}
            for reg in self._registrations.values():
                primary = reg.nodes[0]
                by_shard[primary] = by_shard.get(primary, 0) + 1
            return ClusterStats(
                shards=len(self._handles),
                alive=sum(1 for h in self._handles.values()
                          if h is not None and h.alive),
                venues=len(self._registrations),
                submitted=self._submitted,
                rejected=self._rejected,
                restarts=self._restarts,
                replication=self.replication,
                promotions=self._promotions,
                moves=self._moves,
                by_shard=by_shard,
            )

    def shard_stats(self) -> list[dict]:
        """Each live shard's own stats document (pid, request counts,
        router counters, per-venue log positions, flusher progress),
        via a ``stats`` request."""
        return [handle.call(Request(venue="", kind="stats"))
                for handle in self._live_handles()]

    def shard_metrics(self) -> list[dict]:
        """Each live shard's registry snapshot, via a ``metrics``
        request. A shard that dies mid-collection is skipped — the
        scrape reflects whoever answered."""
        snapshots = []
        for handle in self._live_handles():
            try:
                snapshots.append(handle.call(Request(venue="", kind="metrics")))
            except ServingError:
                continue  # died mid-scrape: its series retire with it
        return snapshots

    def metrics(self) -> dict:
        """One merged, summarized metrics snapshot for the cluster.

        Merges the frontend's own registry (cluster counters,
        respawn/move durations) with every live shard's registry
        (engine/router/oplog/shard series) — counters and histogram
        buckets add, gauges combine by their aggregation policy — and
        annotates each histogram with ``p50``/``p95``/``p99``/``mean``.
        The result is JSON-safe: ship it, or render it with
        :func:`~repro.obs.render_prometheus`.
        """
        return summarize(merge_snapshots(
            [self.registry.snapshot()] + self.shard_metrics()
        ))

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Shard-process count — the cluster's parallelism. Named for
        drop-in use where a :class:`ServingFrontend` is expected
        (:func:`~repro.serving.replay.concurrent_replay` reports it)."""
        return self.shards

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"ClusterFrontend(shards={s.alive}/{s.shards}, "
            f"replication={s.replication}, venues={s.venues}, "
            f"submitted={s.submitted}, restarts={s.restarts}, "
            f"promotions={s.promotions})"
        )
