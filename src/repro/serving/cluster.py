"""ClusterFrontend: hash-sharded multi-process serving.

The top layer of the sharded serving stack. A
:class:`ClusterFrontend` runs N :class:`~repro.serving.shard.
ShardProcess` workers — each a separate OS process owning a
:class:`~repro.serving.router.VenueRouter` over the shared snapshot
catalog — and **hash-partitions venue fingerprints** across them:
venue ``v`` always lives on shard ``int(v[:16], 16) % shards``.
Requests are venue-tagged :class:`~repro.serving.protocol.Request`
objects (the same protocol the in-thread frontend speaks), answered
through per-request futures; because shards are processes, the
CPU-bound index math of different venues runs on different cores —
the scaling CPython's GIL denies to threads
(``benchmarks/bench_serving.py`` CI-asserts ≥2x single-process
throughput at 4 shards on the mix threads could not scale).

Operational behavior:

* **Backpressure** — each shard bounds its in-flight window
  (``max_inflight``); ``submit`` blocks while the target shard is
  saturated and raises :class:`~repro.exceptions.ServingError` after
  ``timeout`` seconds.
* **Crash restart** — a dead shard (crash, kill, framing error) fails
  its in-flight futures; the next request for one of its venues
  respawns the process, which **warm-starts from the catalog's
  snapshots and replays nothing**. Updates applied since the shard's
  last flush are lost — that is the documented durability window,
  bounded by the worker's background flush interval (and zero after a
  graceful drain).
* **Graceful drain/shutdown** — :meth:`drain` barriers on every shard
  (workers answer strictly in order, so a drained ping proves
  everything before it completed); :meth:`shutdown` drains, flushes
  dirty engines, and joins every worker process.

Thread safety: every public method may be called from any number of
threads. Venue registration state lives under one cluster mutex; each
shard has its own restart lock, so a crashed shard's respawn never
blocks traffic to healthy shards.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field

from ..exceptions import ServingError
from ..model.indoor_space import IndoorSpace
from ..model.io_json import objects_to_dict, space_to_dict
from ..storage.snapshot import venue_fingerprint
from .protocol import Request
from .shard import (
    DEFAULT_FLUSH_INTERVAL,
    DEFAULT_MAX_INFLIGHT,
    ShardProcess,
)


@dataclass(slots=True)
class ClusterStats:
    """Point-in-time cluster counters.

    ``submitted`` and ``restarts`` are monotone; ``alive`` counts
    currently-running shard processes (never started shards are
    spawned lazily and count as not alive).
    """

    shards: int = 0
    alive: int = 0
    venues: int = 0
    submitted: int = 0
    restarts: int = 0
    #: venue count per shard index
    by_shard: dict = field(default_factory=dict)


@dataclass(slots=True)
class _Registration:
    """What it takes to (re-)register one venue on its shard."""

    shard: int
    payload: dict


class ClusterFrontend:
    """Serve many venues across N single-venue-router shard processes.

    Args:
        catalog_root: snapshot catalog directory shared by all shards —
            both the warm-start source and the write-back/flush target.
        shards: number of worker processes (the parallelism).
        kind: default index kind for :meth:`add_venue`.
        capacity: per-shard engine-pool bound.
        flush_interval: per-shard background flush period (seconds);
            the durability window after a crash. ``0`` disables
            periodic flushing (graceful shutdown still flushes).
        max_inflight: per-shard bound on concurrently in-flight
            requests (the backpressure knob).
        mmap: shard workers memory-map snapshot binary sections on warm
            start (default ``True``) — all shards of a host share the
            catalog's bulk index pages through the OS page cache.
        restart: respawn crashed shards on the next request for one of
            their venues (on by default; ``False`` turns a crash into a
            permanent ``ServingError`` for that shard's venues).
        mp_context: optional :mod:`multiprocessing` context (e.g.
            ``multiprocessing.get_context("spawn")``).

    Usable as a context manager: ``with ClusterFrontend(...) as c:``
    pre-spawns every shard and shuts down gracefully on exit.
    """

    def __init__(
        self,
        catalog_root,
        *,
        shards: int = 4,
        kind: str = "VIP-Tree",
        capacity: int = 8,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        restart: bool = True,
        mmap: bool = True,
        mp_context=None,
    ) -> None:
        if shards < 1:
            raise ServingError(f"shards must be >= 1, got {shards}")
        self.catalog_root = str(catalog_root)
        self.shards = int(shards)
        self.default_kind = kind
        self.capacity = int(capacity)
        self.flush_interval = float(flush_interval)
        self.max_inflight = int(max_inflight)
        self.mmap = bool(mmap)
        self.restart = bool(restart)
        self._mp_context = mp_context
        self._handles: list[ShardProcess | None] = [None] * self.shards
        self._shard_locks = [threading.Lock() for _ in range(self.shards)]
        self._mutex = threading.Lock()
        self._registrations: dict[str, _Registration] = {}
        self._reg_order: list[str] = []
        self._accepting = True
        self._submitted = 0
        self._restarts = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClusterFrontend":
        """Pre-spawn every shard process (otherwise lazy per shard)."""
        for idx in range(self.shards):
            self._shard(idx)
        return self

    def __enter__(self) -> "ClusterFrontend":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop intake, drain + flush every shard, join the processes.

        Each live worker answers its ``shutdown`` request only after
        everything submitted before it, flushes its dirty engines, and
        exits — so a clean shutdown closes the durability window to
        zero. Idempotent.
        """
        with self._mutex:
            self._accepting = False
        for idx in range(self.shards):
            with self._shard_locks[idx]:
                handle = self._handles[idx]
                if handle is not None:
                    handle.shutdown(timeout=timeout)

    # ------------------------------------------------------------------
    # Partitioning & registration
    # ------------------------------------------------------------------
    def shard_for(self, venue_id: str) -> int:
        """The shard index owning ``venue_id`` (hash partitioning).

        Stable for the cluster's lifetime: derived from the leading 64
        bits of the venue fingerprint, so the same venue always maps to
        the same shard — across restarts and across processes.
        """
        return int(venue_id[:16], 16) % self.shards

    def add_venue(self, space: IndoorSpace, *, kind: str | None = None,
                  objects=None) -> str:
        """Register a venue on its shard; returns the venue fingerprint.

        The venue document (and the optional initial object set, used
        only if the shard cold-builds) travels to the worker over the
        protocol — a shard needs nothing but the catalog directory.
        The registration is remembered so a restarted shard re-registers
        its venues automatically. Idempotent per venue revision.
        """
        venue_id = venue_fingerprint(space)
        payload = {
            "space": space_to_dict(space),
            "objects": objects_to_dict(objects) if objects is not None else None,
            "kind": kind or self.default_kind,
        }
        shard = self.shard_for(venue_id)
        with self._mutex:
            if not self._accepting:
                raise ServingError("cluster is shut down")
            if venue_id not in self._registrations:
                self._reg_order.append(venue_id)
            self._registrations[venue_id] = _Registration(shard, payload)
        echoed = self._shard(shard).call(
            Request(venue=venue_id, kind="add_venue", payload=payload)
        )
        if echoed != venue_id:  # pragma: no cover - codec regression guard
            raise ServingError(
                f"shard {shard} registered fingerprint {echoed[:12]!r}, "
                f"expected {venue_id[:12]!r} — venue document did not "
                "round-trip canonically"
            )
        return venue_id

    def venue_ids(self) -> list[str]:
        """Registered venue ids, in registration order."""
        with self._mutex:
            return list(self._reg_order)

    # ------------------------------------------------------------------
    # Shard management
    # ------------------------------------------------------------------
    def _shard(self, idx: int) -> ShardProcess:
        """The live handle for shard ``idx``, (re)spawning if needed."""
        handle = self._handles[idx]
        if handle is not None and handle.alive:
            return handle
        with self._shard_locks[idx]:
            handle = self._handles[idx]
            if handle is not None and handle.alive:
                return handle
            with self._mutex:
                if not self._accepting:
                    raise ServingError("cluster is shut down")
                crashed = handle is not None
                if crashed and not self.restart:
                    raise ServingError(
                        f"shard {idx} died and restart is disabled"
                    )
                if crashed:
                    self._restarts += 1
                regs = [
                    (vid, self._registrations[vid])
                    for vid in self._reg_order
                    if self._registrations[vid].shard == idx
                ]
            if crashed:
                handle.kill()  # reap whatever is left of the old process
            fresh = ShardProcess(
                self.catalog_root,
                shard_id=idx,
                kind=self.default_kind,
                capacity=self.capacity,
                flush_interval=self.flush_interval,
                max_inflight=self.max_inflight,
                mmap=self.mmap,
                mp_context=self._mp_context,
            ).start()
            # Re-register this shard's venues: the worker warm-starts
            # each from its catalog snapshot — no replay, the snapshot
            # state *is* the recovery point (durability window).
            for vid, reg in regs:
                fresh.call(Request(venue=vid, kind="add_venue",
                                   payload=reg.payload))
            self._handles[idx] = fresh
            return fresh

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, request: Request, *, timeout: float | None = None) -> Future:
        """Route one request to its venue's shard; returns its future.

        Blocks while the target shard's in-flight window is full
        (backpressure); ``timeout`` turns saturation into a
        :class:`ServingError`. A request hitting a crashed shard
        triggers the restart (snapshot warm start) before being sent.

        Raises:
            ServingError: unknown venue id, cluster shut down, dead
                shard with restart disabled, or backpressure timeout.
        """
        with self._mutex:
            if not self._accepting:
                raise ServingError("cluster is shut down")
            reg = self._registrations.get(request.venue)
        if reg is None:
            raise ServingError(f"unknown venue id {request.venue[:12]!r}")
        future = self._shard(reg.shard).submit(request, timeout=timeout)
        with self._mutex:
            self._submitted += 1
        return future

    def request(self, venue: str, kind: str, **fields) -> Future:
        """Convenience: build a :class:`Request` and submit it."""
        return self.submit(Request(venue=venue, kind=kind, **fields))

    # ------------------------------------------------------------------
    # Cluster-wide operations
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Block until every request submitted *so far* has completed.

        Workers answer strictly in order, so one ``ping`` per live
        shard is a complete barrier. Concurrent submitters may keep
        shards busy past this call — drain is a point-in-time barrier,
        not an intake stop (that is :meth:`shutdown`).
        """
        for handle in list(self._handles):
            if handle is not None and handle.alive:
                handle.call(Request(venue="", kind="ping"))

    def flush(self) -> int:
        """Flush dirty engines on every live shard; returns snapshots
        written. Closes the durability window at the moment of the
        call (new updates re-open it until the next flush)."""
        written = 0
        for handle in list(self._handles):
            if handle is not None and handle.alive:
                written += handle.call(Request(venue="", kind="flush"))
        return written

    def stats(self) -> ClusterStats:
        """Local cluster counters (no worker round-trips — see
        :meth:`shard_stats` for the workers' own view)."""
        with self._mutex:
            by_shard: dict[int, int] = {}
            for reg in self._registrations.values():
                by_shard[reg.shard] = by_shard.get(reg.shard, 0) + 1
            return ClusterStats(
                shards=self.shards,
                alive=sum(1 for h in self._handles if h is not None and h.alive),
                venues=len(self._registrations),
                submitted=self._submitted,
                restarts=self._restarts,
                by_shard=by_shard,
            )

    def shard_stats(self) -> list[dict]:
        """Each live shard's own stats document (pid, request counts,
        router counters, flusher progress), via a ``stats`` request."""
        out = []
        for handle in list(self._handles):
            if handle is not None and handle.alive:
                out.append(handle.call(Request(venue="", kind="stats")))
        return out

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Shard-process count — the cluster's parallelism. Named for
        drop-in use where a :class:`ServingFrontend` is expected
        (:func:`~repro.serving.replay.concurrent_replay` reports it)."""
        return self.shards

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"ClusterFrontend(shards={s.alive}/{s.shards}, "
            f"venues={s.venues}, submitted={s.submitted}, "
            f"restarts={s.restarts})"
        )
