"""Serving CLI: ``python -m repro.serving serve`` — a sharded cluster
over TCP.

Spins up a :class:`~repro.serving.cluster.ClusterFrontend` (one
process per shard, warm-started from a snapshot catalog) and a TCP
front door speaking the length-prefixed wire protocol of
:mod:`repro.serving.protocol`: clients send framed request documents
and receive framed replies, matched by request id.

Examples:
    # serve two venues on an ephemeral port, 4 shard processes
    python -m repro.serving serve --catalog .snapshots \\
        --venue MC --venue Men-2 --profile tiny --shards 4 --port 0

    # one-shot self test: serve, replay 200 events per venue through a
    # real TCP client, print throughput, shut down
    python -m repro.serving serve --catalog .snapshots --venue MC \\
        --profile tiny --shards 2 --port 0 --events 200

    # 2-way replication: each venue gets a primary plus a log-tailing
    # read replica on another shard; reads fan out across both
    python -m repro.serving serve --catalog .snapshots --venue MC \\
        --venue Men-2 --shards 4 --replication 2 --port 0

``--venue`` accepts a generator name (MC, MC-2, Men, Men-2, CL, CL-2)
or a path to a venue JSON file written by ``repro.model.save_space``;
repeat the flag to serve several venues. ``--workers`` bounds the
number of concurrently served client connections (each connection gets
one handler thread; request order within a connection is preserved
end-to-end, so per-venue update/query ordering holds for any single
client). Venue-less control requests (``ping``/``stats``/``flush``/
``venues``/``metrics``) are answered by the front door itself;
everything else is routed to the owning shard.

Observability: ``--metrics-port`` starts an HTTP sidecar serving the
merged cluster metrics (``/metrics`` in Prometheus text format,
``/metrics.json`` as a summarized JSON snapshot — also reachable over
the wire protocol as the ``metrics`` request kind, which is what
``python -m repro.obs dump`` speaks). ``--slow-query-ms`` turns on
per-shard structured slow-query logs under ``<catalog>/obs/``.
Requests carrying a ``trace`` id get their span timings (including the
front door's ``frontend.total``) echoed on the reply.
"""

from __future__ import annotations

import argparse
import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import perf_counter

from ..datasets.multi_venue import multi_venue_streams
from ..datasets.venues import VENUE_NAMES, load_venue
from ..datasets.workloads import random_objects
from ..exceptions import ProtocolError, ServingError
from ..model.io_json import load_space
from ..obs import render_prometheus
from .cluster import ClusterFrontend
from .shard import _no_delay
from .protocol import (
    Request,
    Response,
    error_reply,
    recv_doc,
    reply_from_doc,
    reply_to_doc,
    request_from_doc,
    request_to_doc,
    result_to_doc,
    send_doc,
)

#: front-door request kinds answered without touching a shard
_LOCAL_KINDS = ("venues", "ping", "stats", "flush", "metrics")


def _resolve_venue(name: str, profile: str, seed: int | None):
    if name.endswith(".json"):
        return load_space(name)
    return load_venue(name, profile, seed=seed)


# ----------------------------------------------------------------------
# Front door: one handler thread per client connection
# ----------------------------------------------------------------------
def _handle_local(cluster: ClusterFrontend, names: dict[str, str],
                  request: Request):
    if request.kind == "venues":
        return {"venues": [
            {"id": vid, "name": names.get(vid, "")}
            for vid in cluster.venue_ids()
        ]}
    if request.kind == "ping":
        cluster.drain()  # a front-door ping is a cluster-wide barrier
        return {"ok": True}
    if request.kind == "stats":
        # StatsDoc.to_doc stringifies the by_shard keys for the wire
        return cluster.stats().to_doc()
    if request.kind == "metrics":
        return cluster.metrics()
    if request.kind == "flush":
        return cluster.flush()
    raise ServingError(f"unhandled local kind {request.kind!r}")


def _serve_connection(cluster: ClusterFrontend, names: dict[str, str],
                      conn: socket.socket) -> None:
    send_lock = threading.Lock()

    def reply(request_id: int, doc: dict) -> None:
        try:
            with send_lock:
                send_doc(conn, doc)
        except OSError:
            pass  # client went away; its shard work still completes

    def on_done(request_id: int, future, start: float) -> None:
        try:
            got = future.result()
        except Exception as exc:  # noqa: BLE001 - travels as a reply
            reply(request_id, reply_to_doc(error_reply(request_id, exc)))
        else:
            # ``got`` is the shard's Response envelope (raw_reply):
            # re-emit its result under the client's request id, with
            # the front door's own span appended to any trace.
            trace_doc = got.trace
            if trace_doc is not None:
                trace_doc = {
                    **trace_doc,
                    "spans": list(trace_doc.get("spans", ())) + [
                        {"name": "frontend.total",
                         "seconds": perf_counter() - start}
                    ],
                }
            reply(request_id, reply_to_doc(
                Response(request_id, got.result, stats=got.stats,
                         trace=trace_doc)))

    try:
        while True:
            doc = recv_doc(conn)
            if doc is None:
                break
            request, request_id = request_from_doc(doc)
            start = perf_counter()
            try:
                if request.venue == "" and request.kind in _LOCAL_KINDS:
                    value = _handle_local(cluster, names, request)
                    reply(request_id, reply_to_doc(
                        Response(request_id, result_to_doc(value))))
                    continue
                future = cluster.submit(request, raw_reply=True)
            except Exception as exc:  # noqa: BLE001 - travels as a reply
                reply(request_id, reply_to_doc(error_reply(request_id, exc)))
                continue
            future.add_done_callback(
                lambda f, rid=request_id, t0=start: on_done(rid, f, t0))
    except (ProtocolError, OSError):
        pass  # malformed client / reset: drop the connection
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Self-test client (also the example/CI driver for the CLI)
# ----------------------------------------------------------------------
def _self_test(address, venues, events: int, seed: int, window: int = 64) -> int:
    """Replay ``events`` query events per venue through a real TCP
    client, pipelining up to ``window`` requests, and print throughput.

    Queries only (``update_ratio=0``): the self test must be safe to
    run against a pre-existing catalog whose object state has drifted
    from this process's freshly generated sets.
    """
    sock = socket.create_connection(address, timeout=60.0)
    _no_delay(sock)
    try:
        next_id = 0

        def call(request: Request):
            nonlocal next_id
            send_doc(sock, request_to_doc(request, next_id))
            next_id += 1
            return reply_from_doc(recv_doc(sock))

        listing = call(Request(venue="", kind="venues")).value()
        print(f"self-test: server lists {len(listing['venues'])} venue(s)")

        streams = multi_venue_streams(
            [(space, objects) for space, objects, _ in venues],
            events, update_ratio=0.0, seed=seed,
        )
        flat: list[Request] = []
        for (_, _, vid), stream in zip(venues, streams):
            flat.extend(Request.from_event(vid, e) for e in stream)

        pending: set[int] = set()
        errors: dict[str, int] = {}

        def account(got) -> None:
            pending.discard(got.request_id)
            if not isinstance(got, Response):
                key = f"{got.error}: {got.message}"
                errors[key] = errors.get(key, 0) + 1

        start = time.perf_counter()
        for request in flat:
            while len(pending) >= window:
                account(reply_from_doc(recv_doc(sock)))
            send_doc(sock, request_to_doc(request, next_id))
            pending.add(next_id)
            next_id += 1
        while pending:
            account(reply_from_doc(recv_doc(sock)))
        seconds = time.perf_counter() - start
        failed = sum(errors.values())

        stats = call(Request(venue="", kind="stats")).value()
        print(
            f"self-test: {len(flat)} events over TCP in {seconds:.3f}s "
            f"({len(flat) / seconds:,.0f} events/s, window={window}, "
            f"{failed} failed)"
        )
        for key, n in sorted(errors.items(), key=lambda kv: -kv[1]):
            print(f"self-test: {n}x {key}")
        print(f"self-test: cluster stats {stats}")
        return 1 if failed else 0
    finally:
        sock.close()


# ----------------------------------------------------------------------
# Metrics HTTP sidecar (Prometheus scrape target)
# ----------------------------------------------------------------------
def _start_metrics_server(cluster: ClusterFrontend, port: int):
    """Serve ``/metrics`` (Prometheus text) and ``/metrics.json``
    (summarized snapshot) on ``port``; returns the running server."""

    class MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
            try:
                if self.path.startswith("/metrics.json"):
                    body = json.dumps(cluster.metrics(),
                                      sort_keys=True).encode("utf-8")
                    ctype = "application/json"
                elif self.path.startswith("/metrics"):
                    body = render_prometheus(
                        cluster.metrics()).encode("utf-8")
                    ctype = "text/plain; version=0.0.4"
                else:
                    self.send_error(404, "try /metrics or /metrics.json")
                    return
            except Exception as exc:  # noqa: BLE001 - scrape must not kill
                self.send_error(500, str(exc))
                return
            self.send_response(200)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *_args):  # quiet: scrapes are periodic
            pass

    server = ThreadingHTTPServer(("127.0.0.1", port), MetricsHandler)
    threading.Thread(target=server.serve_forever,
                     name="metrics-http", daemon=True).start()
    return server


# ----------------------------------------------------------------------
def _cmd_serve(args) -> int:
    catalog = Path(args.catalog)
    catalog.mkdir(parents=True, exist_ok=True)
    venues = []
    names: dict[str, str] = {}
    slow_threshold = (args.slow_query_ms / 1000.0
                      if args.slow_query_ms > 0 else None)
    with ClusterFrontend(
        catalog, shards=args.shards, replication=args.replication,
        flush_interval=args.flush_interval, oplog=not args.no_oplog,
        slow_query_threshold=slow_threshold,
    ) as cluster:
        for i, name in enumerate(args.venue):
            space = _resolve_venue(name, args.profile, args.seed)
            objects = (random_objects(space, args.objects, seed=args.seed + i)
                       if args.objects > 0 else None)
            vid = cluster.add_venue(space, objects=objects)
            names[vid] = space.name
            venues.append((space, objects, vid))
            placement = cluster.placement(vid)
            print(f"registered {space.name!r} -> primary shard "
                  f"{placement[0]}, replicas {placement[1:] or '[]'} "
                  f"({vid[:12]})")

        server = socket.create_server(("127.0.0.1", args.port))
        host, port = server.getsockname()
        print(f"serving {len(venues)} venue(s) on {host}:{port} "
              f"({args.shards} shard(s), replication={args.replication}, "
              f"{args.workers} connection worker(s))")

        metrics_server = None
        if args.metrics_port is not None:
            metrics_server = _start_metrics_server(cluster, args.metrics_port)
            mhost, mport = metrics_server.server_address[:2]
            print(f"metrics on http://{mhost}:{mport}/metrics "
                  "(and /metrics.json)")

        stopping = threading.Event()
        connection_slots = threading.Semaphore(args.workers)

        def handle(conn: socket.socket) -> None:
            try:
                _serve_connection(cluster, names, conn)
            finally:
                connection_slots.release()

        def accept_loop() -> None:
            while not stopping.is_set():
                try:
                    conn, _ = server.accept()
                except OSError:
                    break  # listener closed: shutting down
                _no_delay(conn)
                connection_slots.acquire()
                threading.Thread(target=handle, args=(conn,),
                                 daemon=True).start()

        acceptor = threading.Thread(target=accept_loop, daemon=True)
        acceptor.start()
        try:
            if args.events > 0:
                return _self_test((host, port), venues, args.events, args.seed)
            while acceptor.is_alive():
                acceptor.join(timeout=1.0)
            return 0
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            print("shutting down")
            return 0
        finally:
            stopping.set()
            server.close()
            if metrics_server is not None:
                metrics_server.shutdown()
                metrics_server.server_close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="serve a snapshot catalog as a sharded cluster over TCP"
    )
    serve.add_argument("--catalog", required=True, metavar="DIR",
                       help="snapshot catalog directory (created if missing)")
    serve.add_argument("--venue", action="append", default=None,
                       metavar="NAME",
                       help=f"venue to serve: one of {', '.join(VENUE_NAMES)} "
                            "or a venue JSON path; repeatable (default: MC)")
    serve.add_argument("--profile", default="tiny",
                       choices=("tiny", "small", "paper"))
    serve.add_argument("--objects", type=int, default=20,
                       help="objects per venue on cold build (0: none)")
    serve.add_argument("--shards", type=int, default=4,
                       help="shard processes (the parallelism)")
    serve.add_argument("--replication", type=int, default=1,
                       help="copies of each venue: 1 primary plus N-1 "
                            "log-tailing read replicas (default 1)")
    serve.add_argument("--no-oplog", action="store_true",
                       help="disable the per-venue operation log "
                            "(restores the snapshot-only durability "
                            "window; incompatible with --replication > 1)")
    serve.add_argument("--workers", type=int, default=8,
                       help="max concurrently served client connections")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0: ephemeral, printed on startup)")
    serve.add_argument("--flush-interval", type=float, default=30.0,
                       help="per-shard background flush period in seconds "
                            "(with the oplog: bounds log length; without: "
                            "the durability window; 0 disables)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="also serve merged cluster metrics over HTTP: "
                            "/metrics (Prometheus text) and /metrics.json "
                            "(0: ephemeral, printed on startup)")
    serve.add_argument("--slow-query-ms", type=float, default=0.0,
                       metavar="MS",
                       help="structured slow-query logging: requests slower "
                            "than this land in per-shard JSONL logs under "
                            "<catalog>/obs/ (0: disabled)")
    serve.add_argument("--events", type=int, default=0,
                       help="self-test mode: replay N query events per venue "
                            "through a TCP client, print throughput, exit")
    serve.add_argument("--seed", type=int, default=17)
    serve.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    if getattr(args, "venue", None) in (None, []):
        args.venue = ["MC"]
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
