"""Serving CLI: ``python -m repro.serving serve`` — a sharded cluster
over TCP.

Spins up a :class:`~repro.serving.cluster.ClusterFrontend` (one
process per shard, warm-started from a snapshot catalog) behind an
:class:`~repro.serving.async_frontend.AsyncFrontDoor`: a single
asyncio event loop multiplexing every client connection, speaking the
length-prefixed wire protocol of :mod:`repro.serving.protocol` —
single-request frames exactly as before, plus multi-request **batch
frames** (one frame in, one frame of ordered replies out, errors
isolated per element).

Examples:
    # serve two venues on an ephemeral port, 4 shard processes
    python -m repro.serving serve --catalog .snapshots \\
        --venue MC --venue Men-2 --profile tiny --shards 4 --port 0

    # one-shot self test: serve, replay 200 events per venue through a
    # real TCP client, print throughput, shut down
    python -m repro.serving serve --catalog .snapshots --venue MC \\
        --profile tiny --shards 2 --port 0 --events 200

    # same, but batched 32 requests per frame
    python -m repro.serving serve --catalog .snapshots --venue MC \\
        --profile tiny --shards 2 --port 0 --events 200 --batch 32

    # per-venue admission control: 500 req/s token buckets (burst
    # 1000) and at most 256 in-flight requests per venue; shed
    # requests get a typed Overloaded reply with a retry-after hint
    python -m repro.serving serve --catalog .snapshots --venue MC \\
        --shards 4 --port 0 --admission-rate 500 --shed-depth 256

``--venue`` accepts a generator name (MC, MC-2, Men, Men-2, CL, CL-2)
or a path to a venue JSON file written by ``repro.model.save_space``;
repeat the flag to serve several venues. Connections are no longer
capped (the event loop multiplexes them); ``--workers`` now sizes the
front door's submission executor — the number of clients that can be
stalled on shard backpressure before further submissions queue.
Request order within a connection is preserved end-to-end, so
per-venue update/query ordering holds for any single client.
Venue-less control requests (``ping``/``stats``/``flush``/``venues``/
``metrics``) are answered by the front door itself; everything else is
routed to the owning shard.

Observability: ``--metrics-port`` starts an HTTP sidecar serving the
merged cluster metrics (``/metrics`` in Prometheus text format,
``/metrics.json`` as a summarized JSON snapshot — also reachable over
the wire protocol as the ``metrics`` request kind, which is what
``python -m repro.obs dump`` speaks). Admission rejections surface
there as ``admission_rejected_total{venue=...,reason=...}`` next to
the front door's per-venue latency histograms
(``frontdoor_request_seconds``). ``--slow-query-ms`` turns on
per-shard structured slow-query logs under ``<catalog>/obs/``.
Requests carrying a ``trace`` id get their span timings (including the
front door's ``frontend.total``) echoed on the reply.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from ..datasets.multi_venue import multi_venue_streams
from ..datasets.venues import VENUE_NAMES, load_venue
from ..datasets.workloads import random_objects
from ..model.io_json import load_space
from ..obs import render_prometheus
from .admission import AdmissionController
from .async_frontend import AsyncFrontDoor
from .client import FrontDoorClient
from .cluster import ClusterFrontend
from .protocol import Request, Response


def _resolve_venue(name: str, profile: str, seed: int | None):
    if name.endswith(".json"):
        return load_space(name)
    return load_venue(name, profile, seed=seed)


# ----------------------------------------------------------------------
# Self-test client (also the example/CI driver for the CLI)
# ----------------------------------------------------------------------
def _self_test(address, venues, events: int, seed: int, *,
               window: int = 64, batch: int = 0) -> int:
    """Replay ``events`` query events per venue through a real TCP
    client and print throughput: pipelined single frames (up to
    ``window`` in flight) by default, or ``batch``-sized batch frames
    when ``batch > 1``.

    Queries only (``update_ratio=0``): the self test must be safe to
    run against a pre-existing catalog whose object state has drifted
    from this process's freshly generated sets.
    """
    with FrontDoorClient(address, timeout=60.0) as client:
        listing = client.call(Request(venue="", kind="venues"))
        print(f"self-test: server lists {len(listing['venues'])} venue(s)")

        streams = multi_venue_streams(
            [(space, objects) for space, objects, _ in venues],
            events, update_ratio=0.0, seed=seed,
        )
        flat: list[Request] = []
        for (_, _, vid), stream in zip(venues, streams):
            flat.extend(Request.from_event(vid, e) for e in stream)

        errors: dict[str, int] = {}

        def account(got) -> None:
            if not isinstance(got, Response):
                key = f"{got.error}: {got.message}"
                errors[key] = errors.get(key, 0) + 1

        start = time.perf_counter()
        if batch > 1:
            for at in range(0, len(flat), batch):
                client.send_batch(flat[at:at + batch])
                for reply in client.recv_batch().replies:
                    account(reply)
            mode = f"batch={batch}"
        else:
            pending = 0
            for request in flat:
                while pending >= window:
                    account(client.recv())
                    pending -= 1
                client.send(request)
                pending += 1
            while pending:
                account(client.recv())
                pending -= 1
            mode = f"window={window}"
        seconds = time.perf_counter() - start
        failed = sum(errors.values())

        stats = client.call(Request(venue="", kind="stats"))
        print(
            f"self-test: {len(flat)} events over TCP in {seconds:.3f}s "
            f"({len(flat) / seconds:,.0f} events/s, {mode}, "
            f"{failed} failed)"
        )
        for key, n in sorted(errors.items(), key=lambda kv: -kv[1]):
            print(f"self-test: {n}x {key}")
        print(f"self-test: cluster stats {stats}")
        return 1 if failed else 0


# ----------------------------------------------------------------------
# Metrics HTTP sidecar (Prometheus scrape target)
# ----------------------------------------------------------------------
def _start_metrics_server(cluster: ClusterFrontend, port: int):
    """Serve ``/metrics`` (Prometheus text) and ``/metrics.json``
    (summarized snapshot) on ``port``; returns the running server."""

    class MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
            try:
                if self.path.startswith("/metrics.json"):
                    body = json.dumps(cluster.metrics(),
                                      sort_keys=True).encode("utf-8")
                    ctype = "application/json"
                elif self.path.startswith("/metrics"):
                    body = render_prometheus(
                        cluster.metrics()).encode("utf-8")
                    ctype = "text/plain; version=0.0.4"
                else:
                    self.send_error(404, "try /metrics or /metrics.json")
                    return
            except Exception as exc:  # noqa: BLE001 - scrape must not kill
                self.send_error(500, str(exc))
                return
            self.send_response(200)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *_args):  # quiet: scrapes are periodic
            pass

    server = ThreadingHTTPServer(("127.0.0.1", port), MetricsHandler)
    threading.Thread(target=server.serve_forever,
                     name="metrics-http", daemon=True).start()
    return server


# ----------------------------------------------------------------------
def _admission_from_args(args) -> AdmissionController | None:
    if args.admission_rate <= 0.0 and args.shed_depth <= 0:
        return None
    return AdmissionController(
        rate=args.admission_rate if args.admission_rate > 0.0 else None,
        burst=args.admission_burst if args.admission_burst > 0.0 else None,
        max_queue_depth=args.shed_depth if args.shed_depth > 0 else None,
        idle_timeout=(args.admission_idle_timeout
                      if args.admission_idle_timeout > 0.0 else None),
    )


def _cmd_serve(args) -> int:
    catalog = Path(args.catalog)
    catalog.mkdir(parents=True, exist_ok=True)
    venues = []
    names: dict[str, str] = {}
    slow_threshold = (args.slow_query_ms / 1000.0
                      if args.slow_query_ms > 0 else None)
    with ClusterFrontend(
        catalog, shards=args.shards, replication=args.replication,
        flush_interval=args.flush_interval, oplog=not args.no_oplog,
        slow_query_threshold=slow_threshold,
        admission=_admission_from_args(args),
    ) as cluster:
        for i, name in enumerate(args.venue):
            space = _resolve_venue(name, args.profile, args.seed)
            objects = (random_objects(space, args.objects, seed=args.seed + i)
                       if args.objects > 0 else None)
            vid = cluster.add_venue(space, objects=objects)
            names[vid] = space.name
            venues.append((space, objects, vid))
            placement = cluster.placement(vid)
            print(f"registered {space.name!r} -> primary shard "
                  f"{placement[0]}, replicas {placement[1:] or '[]'} "
                  f"({vid[:12]})")

        with AsyncFrontDoor(
            cluster, port=args.port, names=names,
            submit_workers=args.workers,
        ) as door:
            host, port = door.address
            admission = cluster.admission
            policy = (
                "admission off" if admission is None else
                f"admission rate={admission.rate or '-'}/s "
                f"burst={admission.burst or '-'} "
                f"depth={admission.max_queue_depth or '-'}"
            )
            print(f"serving {len(venues)} venue(s) on {host}:{port} "
                  f"({args.shards} shard(s), replication={args.replication}, "
                  f"async front door, {args.workers} submit worker(s), "
                  f"{policy})")

            metrics_server = None
            if args.metrics_port is not None:
                metrics_server = _start_metrics_server(
                    cluster, args.metrics_port)
                mhost, mport = metrics_server.server_address[:2]
                print(f"metrics on http://{mhost}:{mport}/metrics "
                      "(and /metrics.json)")

            try:
                if args.events > 0:
                    return _self_test((host, port), venues, args.events,
                                      args.seed, batch=args.batch)
                threading.Event().wait()  # serve until interrupted
                return 0  # pragma: no cover - unreachable
            except KeyboardInterrupt:  # pragma: no cover - interactive
                print("shutting down")
                return 0
            finally:
                if metrics_server is not None:
                    metrics_server.shutdown()
                    metrics_server.server_close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="serve a snapshot catalog as a sharded cluster over TCP"
    )
    serve.add_argument("--catalog", required=True, metavar="DIR",
                       help="snapshot catalog directory (created if missing)")
    serve.add_argument("--venue", action="append", default=None,
                       metavar="NAME",
                       help=f"venue to serve: one of {', '.join(VENUE_NAMES)} "
                            "or a venue JSON path; repeatable (default: MC)")
    serve.add_argument("--profile", default="tiny",
                       choices=("tiny", "small", "paper"))
    serve.add_argument("--objects", type=int, default=20,
                       help="objects per venue on cold build (0: none)")
    serve.add_argument("--shards", type=int, default=4,
                       help="shard processes (the parallelism)")
    serve.add_argument("--replication", type=int, default=1,
                       help="copies of each venue: 1 primary plus N-1 "
                            "log-tailing read replicas (default 1)")
    serve.add_argument("--no-oplog", action="store_true",
                       help="disable the per-venue operation log "
                            "(restores the snapshot-only durability "
                            "window; incompatible with --replication > 1)")
    serve.add_argument("--workers", type=int, default=8,
                       help="submission executor threads in the async front "
                            "door (clients that can be stalled on shard "
                            "backpressure before submissions queue)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0: ephemeral, printed on startup)")
    serve.add_argument("--admission-rate", type=float, default=0.0,
                       metavar="N",
                       help="per-venue token-bucket rate limit in "
                            "requests/second; venues over their allowance "
                            "get typed Overloaded replies with a "
                            "retry-after hint (0: disabled)")
    serve.add_argument("--admission-burst", type=float, default=0.0,
                       metavar="N",
                       help="per-venue token-bucket capacity "
                            "(0: defaults to 2x --admission-rate)")
    serve.add_argument("--shed-depth", type=int, default=0, metavar="N",
                       help="per-venue bound on concurrently in-flight "
                            "requests; venues piling up beyond it are shed "
                            "(0: disabled)")
    serve.add_argument("--admission-idle-timeout", type=float,
                       default=3600.0, metavar="SECONDS",
                       help="evict a venue's admission state (bucket, "
                            "depth slot, counters) after this long with no "
                            "activity and nothing in flight, so venue churn "
                            "cannot grow the controller unboundedly "
                            "(0: keep every venue forever)")
    serve.add_argument("--flush-interval", type=float, default=30.0,
                       help="per-shard background flush period in seconds "
                            "(with the oplog: bounds log length; without: "
                            "the durability window; 0 disables)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="also serve merged cluster metrics over HTTP: "
                            "/metrics (Prometheus text) and /metrics.json "
                            "(0: ephemeral, printed on startup)")
    serve.add_argument("--slow-query-ms", type=float, default=0.0,
                       metavar="MS",
                       help="structured slow-query logging: requests slower "
                            "than this land in per-shard JSONL logs under "
                            "<catalog>/obs/ (0: disabled)")
    serve.add_argument("--events", type=int, default=0,
                       help="self-test mode: replay N query events per venue "
                            "through a TCP client, print throughput, exit")
    serve.add_argument("--batch", type=int, default=0, metavar="N",
                       help="self-test mode: send N requests per batch frame "
                            "instead of pipelined single frames")
    serve.add_argument("--seed", type=int, default=17)
    serve.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    if getattr(args, "venue", None) in (None, []):
        args.venue = ["MC"]
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
