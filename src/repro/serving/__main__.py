"""Serving CLI: ``python -m repro.serving serve`` — a sharded cluster
over TCP.

Spins up a :class:`~repro.serving.cluster.ClusterFrontend` (one
process per shard, warm-started from a snapshot catalog) and a TCP
front door speaking the length-prefixed wire protocol of
:mod:`repro.serving.protocol`: clients send framed request documents
and receive framed replies, matched by request id.

Examples:
    # serve two venues on an ephemeral port, 4 shard processes
    python -m repro.serving serve --catalog .snapshots \\
        --venue MC --venue Men-2 --profile tiny --shards 4 --port 0

    # one-shot self test: serve, replay 200 events per venue through a
    # real TCP client, print throughput, shut down
    python -m repro.serving serve --catalog .snapshots --venue MC \\
        --profile tiny --shards 2 --port 0 --events 200

    # 2-way replication: each venue gets a primary plus a log-tailing
    # read replica on another shard; reads fan out across both
    python -m repro.serving serve --catalog .snapshots --venue MC \\
        --venue Men-2 --shards 4 --replication 2 --port 0

``--venue`` accepts a generator name (MC, MC-2, Men, Men-2, CL, CL-2)
or a path to a venue JSON file written by ``repro.model.save_space``;
repeat the flag to serve several venues. ``--workers`` bounds the
number of concurrently served client connections (each connection gets
one handler thread; request order within a connection is preserved
end-to-end, so per-venue update/query ordering holds for any single
client). Venue-less control requests (``ping``/``stats``/``flush``/
``venues``) are answered by the front door itself; everything else is
routed to the owning shard.
"""

from __future__ import annotations

import argparse
import socket
import threading
import time
from dataclasses import asdict
from pathlib import Path

from ..datasets.multi_venue import multi_venue_streams
from ..datasets.venues import VENUE_NAMES, load_venue
from ..datasets.workloads import random_objects
from ..exceptions import ProtocolError, ServingError
from ..model.io_json import load_space
from .cluster import ClusterFrontend
from .shard import _no_delay
from .protocol import (
    Request,
    Response,
    error_reply,
    recv_doc,
    reply_from_doc,
    reply_to_doc,
    request_from_doc,
    request_to_doc,
    result_to_doc,
    send_doc,
)

#: front-door request kinds answered without touching a shard
_LOCAL_KINDS = ("venues", "ping", "stats", "flush")


def _resolve_venue(name: str, profile: str, seed: int | None):
    if name.endswith(".json"):
        return load_space(name)
    return load_venue(name, profile, seed=seed)


# ----------------------------------------------------------------------
# Front door: one handler thread per client connection
# ----------------------------------------------------------------------
def _handle_local(cluster: ClusterFrontend, names: dict[str, str],
                  request: Request):
    if request.kind == "venues":
        return {"venues": [
            {"id": vid, "name": names.get(vid, "")}
            for vid in cluster.venue_ids()
        ]}
    if request.kind == "ping":
        cluster.drain()  # a front-door ping is a cluster-wide barrier
        return {"ok": True}
    if request.kind == "stats":
        stats = asdict(cluster.stats())
        stats["by_shard"] = {str(k): v for k, v in stats["by_shard"].items()}
        return stats
    if request.kind == "flush":
        return cluster.flush()
    raise ServingError(f"unhandled local kind {request.kind!r}")


def _serve_connection(cluster: ClusterFrontend, names: dict[str, str],
                      conn: socket.socket) -> None:
    send_lock = threading.Lock()

    def reply(request_id: int, doc: dict) -> None:
        try:
            with send_lock:
                send_doc(conn, doc)
        except OSError:
            pass  # client went away; its shard work still completes

    def on_done(request_id: int, future) -> None:
        try:
            value = future.result()
        except Exception as exc:  # noqa: BLE001 - travels as a reply
            reply(request_id, reply_to_doc(error_reply(request_id, exc)))
        else:
            reply(request_id, reply_to_doc(
                Response(request_id, result_to_doc(value))))

    try:
        while True:
            doc = recv_doc(conn)
            if doc is None:
                break
            request, request_id = request_from_doc(doc)
            try:
                if request.venue == "" and request.kind in _LOCAL_KINDS:
                    value = _handle_local(cluster, names, request)
                    reply(request_id, reply_to_doc(
                        Response(request_id, result_to_doc(value))))
                    continue
                future = cluster.submit(request)
            except Exception as exc:  # noqa: BLE001 - travels as a reply
                reply(request_id, reply_to_doc(error_reply(request_id, exc)))
                continue
            future.add_done_callback(
                lambda f, rid=request_id: on_done(rid, f))
    except (ProtocolError, OSError):
        pass  # malformed client / reset: drop the connection
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Self-test client (also the example/CI driver for the CLI)
# ----------------------------------------------------------------------
def _self_test(address, venues, events: int, seed: int, window: int = 64) -> int:
    """Replay ``events`` query events per venue through a real TCP
    client, pipelining up to ``window`` requests, and print throughput.

    Queries only (``update_ratio=0``): the self test must be safe to
    run against a pre-existing catalog whose object state has drifted
    from this process's freshly generated sets.
    """
    sock = socket.create_connection(address, timeout=60.0)
    _no_delay(sock)
    try:
        next_id = 0

        def call(request: Request):
            nonlocal next_id
            send_doc(sock, request_to_doc(request, next_id))
            next_id += 1
            return reply_from_doc(recv_doc(sock))

        listing = call(Request(venue="", kind="venues")).value()
        print(f"self-test: server lists {len(listing['venues'])} venue(s)")

        streams = multi_venue_streams(
            [(space, objects) for space, objects, _ in venues],
            events, update_ratio=0.0, seed=seed,
        )
        flat: list[Request] = []
        for (_, _, vid), stream in zip(venues, streams):
            flat.extend(Request.from_event(vid, e) for e in stream)

        pending: set[int] = set()
        errors: dict[str, int] = {}

        def account(got) -> None:
            pending.discard(got.request_id)
            if not isinstance(got, Response):
                key = f"{got.error}: {got.message}"
                errors[key] = errors.get(key, 0) + 1

        start = time.perf_counter()
        for request in flat:
            while len(pending) >= window:
                account(reply_from_doc(recv_doc(sock)))
            send_doc(sock, request_to_doc(request, next_id))
            pending.add(next_id)
            next_id += 1
        while pending:
            account(reply_from_doc(recv_doc(sock)))
        seconds = time.perf_counter() - start
        failed = sum(errors.values())

        stats = call(Request(venue="", kind="stats")).value()
        print(
            f"self-test: {len(flat)} events over TCP in {seconds:.3f}s "
            f"({len(flat) / seconds:,.0f} events/s, window={window}, "
            f"{failed} failed)"
        )
        for key, n in sorted(errors.items(), key=lambda kv: -kv[1]):
            print(f"self-test: {n}x {key}")
        print(f"self-test: cluster stats {stats}")
        return 1 if failed else 0
    finally:
        sock.close()


# ----------------------------------------------------------------------
def _cmd_serve(args) -> int:
    catalog = Path(args.catalog)
    catalog.mkdir(parents=True, exist_ok=True)
    venues = []
    names: dict[str, str] = {}
    with ClusterFrontend(
        catalog, shards=args.shards, replication=args.replication,
        flush_interval=args.flush_interval, oplog=not args.no_oplog,
    ) as cluster:
        for i, name in enumerate(args.venue):
            space = _resolve_venue(name, args.profile, args.seed)
            objects = (random_objects(space, args.objects, seed=args.seed + i)
                       if args.objects > 0 else None)
            vid = cluster.add_venue(space, objects=objects)
            names[vid] = space.name
            venues.append((space, objects, vid))
            placement = cluster.placement(vid)
            print(f"registered {space.name!r} -> primary shard "
                  f"{placement[0]}, replicas {placement[1:] or '[]'} "
                  f"({vid[:12]})")

        server = socket.create_server(("127.0.0.1", args.port))
        host, port = server.getsockname()
        print(f"serving {len(venues)} venue(s) on {host}:{port} "
              f"({args.shards} shard(s), replication={args.replication}, "
              f"{args.workers} connection worker(s))")

        stopping = threading.Event()
        connection_slots = threading.Semaphore(args.workers)

        def handle(conn: socket.socket) -> None:
            try:
                _serve_connection(cluster, names, conn)
            finally:
                connection_slots.release()

        def accept_loop() -> None:
            while not stopping.is_set():
                try:
                    conn, _ = server.accept()
                except OSError:
                    break  # listener closed: shutting down
                _no_delay(conn)
                connection_slots.acquire()
                threading.Thread(target=handle, args=(conn,),
                                 daemon=True).start()

        acceptor = threading.Thread(target=accept_loop, daemon=True)
        acceptor.start()
        try:
            if args.events > 0:
                return _self_test((host, port), venues, args.events, args.seed)
            while acceptor.is_alive():
                acceptor.join(timeout=1.0)
            return 0
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            print("shutting down")
            return 0
        finally:
            stopping.set()
            server.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="serve a snapshot catalog as a sharded cluster over TCP"
    )
    serve.add_argument("--catalog", required=True, metavar="DIR",
                       help="snapshot catalog directory (created if missing)")
    serve.add_argument("--venue", action="append", default=None,
                       metavar="NAME",
                       help=f"venue to serve: one of {', '.join(VENUE_NAMES)} "
                            "or a venue JSON path; repeatable (default: MC)")
    serve.add_argument("--profile", default="tiny",
                       choices=("tiny", "small", "paper"))
    serve.add_argument("--objects", type=int, default=20,
                       help="objects per venue on cold build (0: none)")
    serve.add_argument("--shards", type=int, default=4,
                       help="shard processes (the parallelism)")
    serve.add_argument("--replication", type=int, default=1,
                       help="copies of each venue: 1 primary plus N-1 "
                            "log-tailing read replicas (default 1)")
    serve.add_argument("--no-oplog", action="store_true",
                       help="disable the per-venue operation log "
                            "(restores the snapshot-only durability "
                            "window; incompatible with --replication > 1)")
    serve.add_argument("--workers", type=int, default=8,
                       help="max concurrently served client connections")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0: ephemeral, printed on startup)")
    serve.add_argument("--flush-interval", type=float, default=30.0,
                       help="per-shard background flush period in seconds "
                            "(with the oplog: bounds log length; without: "
                            "the durability window; 0 disables)")
    serve.add_argument("--events", type=int, default=0,
                       help="self-test mode: replay N query events per venue "
                            "through a TCP client, print throughput, exit")
    serve.add_argument("--seed", type=int, default=17)
    serve.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    if getattr(args, "venue", None) in (None, []):
        args.venue = ["MC"]
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
