"""Shard worker: one process owning a VenueRouter behind a socket.

The worker layer of the sharded serving stack. A
:class:`ShardWorker` runs inside a **child process**, owns a
:class:`~repro.serving.router.VenueRouter` over (a subset of) a
snapshot catalog, and serves the wire protocol of
:mod:`repro.serving.protocol` over one connected socket. Because each
shard is a separate process with its own interpreter, the CPU-bound
index math of different shards runs truly in parallel — the scaling
the GIL denies to the in-thread :class:`ServingFrontend`.

:class:`ShardProcess` is the **parent-side handle**: it spawns the
child, connects the socket, and multiplexes concurrent requests over
it — each request gets a wire id and a
:class:`~concurrent.futures.Future`; a reader thread matches replies
(the worker answers strictly in order, ids make the pairing robust)
and a bounded in-flight window (``max_inflight``) provides
backpressure exactly like the frontend's bounded queue.

Lifecycle and durability:

* venues are registered over the wire (``add_venue`` requests carry
  the venue document), so a shard starts empty and needs nothing but
  the catalog directory — which is also everything a *restarted* shard
  needs: it warm-starts from the snapshots, replaying nothing,
* the worker runs a background :class:`~repro.serving.router.
  PeriodicFlusher` by default (interval + jitter, stoppable), and
  flushes dirty engines once more on graceful drain/shutdown — so the
  **durability window** is at most one flush interval of updates, zero
  after a clean drain,
* the fault-injection kinds (:data:`~repro.serving.protocol.
  FAULT_KINDS`) make the worker die *without* flushing: ``crash``
  immediately, ``crash_after_n_ops`` mid-update-stream after letting
  ``n`` more updates through (the fatal update is neither applied nor
  acknowledged), ``drop_connection`` after closing the socket first —
  a partition as the parent sees it. Tests use them to prove restart,
  failover and log-recovery behavior,
* with ``oplog=True`` the router keeps a durable per-venue operation
  log: primaries append each acked update, replicas (``add_venue``
  with ``role: "replica"`` in the payload) tail it — a restarted shard
  then recovers every acknowledged update (snapshot + log tail), not
  just the last flush,
* when the connection drops or the process dies, the handle fails
  every in-flight future with :class:`~repro.exceptions.ServingError`
  — the cluster layer restarts the shard and callers retry.
"""

from __future__ import annotations

import os
import socket
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

from ..exceptions import ProtocolError, ServingError
from ..model.io_json import objects_from_dict, space_from_dict
from ..obs import MetricsRegistry, Observation, StatsDoc, Trace, observing
from ..storage.catalog import SnapshotCatalog
from .protocol import (
    CONTROL_KINDS,
    FAULT_KINDS,
    Request,
    Response,
    encode_frame,
    error_reply,
    recv_doc,
    reply_from_doc,
    reply_to_doc,
    request_from_doc,
    request_to_doc,
    result_to_doc,
    send_doc,
    stats_to_doc,
)
from .router import RouterStats, VenueRouter

#: default background flush interval for shard workers (seconds)
DEFAULT_FLUSH_INTERVAL = 30.0
#: default bound on concurrently in-flight requests per shard handle
DEFAULT_MAX_INFLIGHT = 128
#: how long the parent waits for a spawned shard to connect (seconds)
_CONNECT_TIMEOUT = 60.0

#: reusable no-op context for untraced requests (stateless, reentrant)
_NO_SPAN = nullcontext()


@dataclass(slots=True)
class FlusherStats(StatsDoc):
    """Point-in-time counters of a shard's background flusher."""

    interval: float = 0.0
    cycles: int = 0
    written: int = 0
    errors: int = 0


@dataclass(slots=True)
class ShardStats(StatsDoc):
    """The typed schema behind a shard's ``stats`` control reply.

    ``log_positions`` maps venue id to the object-set version this
    shard has applied — replica lag is visible by diffing these across
    a venue's shards. ``flusher`` is ``None`` when the periodic flusher
    is disabled.
    """

    shard: int
    pid: int
    requests: int
    router: RouterStats
    log_positions: dict
    flusher: FlusherStats | None


class ShardWorker:
    """The child-process side: a venue router serving the wire protocol.

    Args:
        catalog_root: snapshot catalog directory this shard warm-starts
            its venues from (and flushes updated object state back to).
        shard_id: this shard's index (diagnostics only).
        kind: default index kind for venues registered without one.
        capacity: engine-pool bound of the underlying router.
        flush_interval: background flush period in seconds; ``0``
            disables the periodic flusher (a graceful shutdown still
            flushes).
        mmap: memory-map snapshot binary sections on warm start
            (default ``True``): shard processes of one host serving the
            same catalog then share the bulk index pages through the OS
            page cache instead of each holding a private copy.
        oplog: enable the per-venue operation log (see
            :mod:`repro.storage.oplog`): primaries append every acked
            update, replicas tail, warm starts replay the tail. The
            cluster turns this on for replication and zero-ack-loss
            recovery.
        slow_query_threshold: seconds; requests slower than this are
            recorded in the shard's structured slow-query log (a JSONL
            file under ``<catalog_root>/obs/``). ``None`` disables the
            slow log.

    Every worker owns a :class:`~repro.obs.MetricsRegistry`: the
    router/engine stack below records into it, the serve loop times
    each request into ``shard_request_seconds``, and the ``metrics``
    control kind ships a snapshot to the parent — which is how
    :meth:`ClusterFrontend.metrics
    <repro.serving.cluster.ClusterFrontend.metrics>` merges the whole
    cluster's series.

    Single-threaded by design: one shard process serves one request at
    a time, and CPU parallelism comes from running many shard
    processes. The worker therefore needs no locking of its own — the
    router/engine stack below is thread-safe anyway.
    """

    def __init__(
        self,
        catalog_root,
        *,
        shard_id: int = 0,
        kind: str = "VIP-Tree",
        capacity: int = 8,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        mmap: bool = True,
        oplog: bool = False,
        slow_query_threshold: float | None = None,
    ) -> None:
        self.shard_id = int(shard_id)
        self.registry = MetricsRegistry()
        slowlog_path = (
            Path(catalog_root) / "obs" / f"slowlog-shard{self.shard_id}.jsonl"
            if slow_query_threshold is not None else None
        )
        self.router = VenueRouter(SnapshotCatalog(catalog_root), capacity=capacity,
                                  kind=kind, mmap=mmap, oplog=oplog,
                                  registry=self.registry,
                                  slow_query_threshold=slow_query_threshold,
                                  slowlog_path=slowlog_path)
        #: per-kind ``shard_request_seconds`` timers (single-threaded
        #: worker — a plain dict is enough)
        self._request_timers: dict = {}
        self.requests = 0
        #: armed ``crash_after_n_ops`` countdown (``None`` = disarmed):
        #: how many more updates to serve before dying on the next one
        self.crash_after: int | None = None
        self._flusher = (
            self.router.start_auto_flush(flush_interval, seed=shard_id)
            if flush_interval > 0 else None
        )

    # ------------------------------------------------------------------
    def handle(self, request: Request):
        """Execute one protocol request, returning its result value.

        Query/update kinds go to the router; control kinds are handled
        here. Raises on failure — the serve loop turns exceptions into
        :class:`~repro.serving.protocol.ErrorResponse` frames.
        """
        self.requests += 1
        kind = request.kind
        if kind not in CONTROL_KINDS:
            return self.router.execute(request)
        if kind == "add_venue":
            payload = request.payload or {}
            if "space" not in payload:
                raise ProtocolError("add_venue request carries no venue document")
            space = space_from_dict(payload["space"])
            objects_doc = payload.get("objects")
            objects = objects_from_dict(objects_doc) if objects_doc else None
            return self.router.add_venue(space, kind=payload.get("kind"),
                                         objects=objects,
                                         role=payload.get("role", "primary"))
        if kind == "remove_venue":
            return self.router.remove_venue(request.venue)
        if kind == "crash_after_n_ops":
            # Arm the countdown; the serve loop enforces it (the fatal
            # update must die before being applied or acknowledged).
            self.crash_after = int((request.payload or {}).get("updates", 0))
            return self.crash_after
        if kind == "ping":
            return {"shard": self.shard_id, "pid": os.getpid(),
                    "venues": len(self.router.venue_ids())}
        if kind == "stats":
            flusher = self._flusher
            return ShardStats(
                shard=self.shard_id,
                pid=os.getpid(),
                requests=self.requests,
                router=self.router.stats(),
                log_positions=self.router.log_positions(),
                flusher=None if flusher is None else FlusherStats(
                    interval=flusher.interval,
                    cycles=flusher.cycles,
                    written=flusher.written,
                    errors=flusher.errors,
                ),
            ).to_doc()
        if kind == "metrics":
            return self.registry.snapshot()
        if kind == "inject_latency":
            payload = request.payload or {}
            return self.router.inject_latency(
                float(payload.get("seconds", 0.0)),
                count=int(payload.get("count", 1)),
            )
        if kind == "flush":
            return self.router.flush()
        if kind == "shutdown":
            return self.router.flush()
        if kind in FAULT_KINDS:  # pragma: no cover - serve() intercepts
            raise ServingError(
                f"fault kind {kind!r} is only meaningful over a socket"
            )
        raise ServingError(f"control kind {kind!r} not servable by a shard")

    def serve(self, sock) -> None:
        """Serve framed requests on ``sock`` until EOF or ``shutdown``.

        Every decodable request gets exactly one reply (success or
        error); framing errors are fatal for the connection — the
        parent treats them like a crash. On exit the worker stops its
        flusher and flushes dirty engines one final time, so a graceful
        drain loses nothing.
        """
        try:
            while True:
                doc = recv_doc(sock)
                if doc is None:
                    break
                request, request_id = request_from_doc(doc)
                if request.kind == "crash":
                    # Fault injection: die *without* flushing, exactly
                    # like a SIGKILL — the durability window applies.
                    os._exit(2)
                if request.kind == "drop_connection":
                    # Partition-style fault: the parent sees a clean
                    # EOF (not a crash exit), then the process dies
                    # without flushing.
                    try:
                        sock.shutdown(socket.SHUT_RDWR)
                        sock.close()
                    except OSError:  # pragma: no cover - already gone
                        pass
                    os._exit(3)
                if self.crash_after is not None and request.kind == "update":
                    if self.crash_after <= 0:
                        # The armed op: die before applying or acking —
                        # mid-update-stream, exactly the window where a
                        # lost ack would show up as divergence.
                        os._exit(2)
                    self.crash_after -= 1
                timer = self._request_timers.get(request.kind)
                if timer is None:
                    timer = self.registry.histogram(
                        "shard_request_seconds", kind=request.kind)
                    self._request_timers[request.kind] = timer
                obs = (
                    Observation(Trace(request.trace) if request.trace else None,
                                want_stats=request.include_stats)
                    if request.trace or request.include_stats else None
                )
                start = perf_counter()
                try:
                    if obs is None:
                        value = self.handle(request)
                    else:
                        span = (obs.trace.span(f"shard.{request.kind}")
                                if obs.trace is not None else _NO_SPAN)
                        with observing(obs), span:
                            value = self.handle(request)
                    reply = Response(
                        request_id,
                        result_to_doc(value),
                        stats=stats_to_doc(obs.stats) if obs is not None else None,
                        trace=(obs.trace.to_doc()
                               if obs is not None and obs.trace is not None
                               else None),
                    )
                except Exception as exc:  # noqa: BLE001 - travels as a reply
                    reply = error_reply(request_id, exc)
                finally:
                    timer.observe(perf_counter() - start)
                send_doc(sock, reply_to_doc(reply))
                if request.kind == "shutdown":
                    break
        finally:
            self.close()

    def close(self) -> None:
        """Stop the flusher and flush dirty engines (idempotent)."""
        if self._flusher is not None:
            self._flusher.stop()
            self._flusher = None
        self.router.flush()


def _no_delay(sock: socket.socket) -> None:
    """Disable Nagle: protocol frames are small and latency-critical —
    batching them behind delayed ACKs costs ~40ms stalls per exchange,
    which would swamp the index math the cluster exists to parallelize."""
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


def _shard_entry(port: int, catalog_root: str, shard_id: int, kind: str,
                 capacity: int, flush_interval: float, mmap: bool = True,
                 oplog: bool = False,
                 slow_query_threshold: float | None = None) -> None:
    """Child-process entry point: connect back to the parent and serve."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=_CONNECT_TIMEOUT)
    sock.settimeout(None)  # the timeout is for the connect, not the serve
    _no_delay(sock)
    try:
        worker = ShardWorker(
            catalog_root, shard_id=shard_id, kind=kind, capacity=capacity,
            flush_interval=flush_interval, mmap=mmap, oplog=oplog,
            slow_query_threshold=slow_query_threshold,
        )
        worker.serve(sock)
    finally:
        sock.close()


class ShardProcess:
    """Parent-side handle: spawn a shard process and multiplex requests.

    :meth:`submit` assigns each request a wire id, registers a
    :class:`Future`, and writes the frame; a daemon reader thread
    resolves futures as replies arrive. A bounded semaphore caps the
    in-flight window (**backpressure**): ``submit`` blocks while the
    shard is ``max_inflight`` requests behind and raises
    :class:`~repro.exceptions.ServingError` after ``timeout`` seconds.

    When the connection dies — worker crash, kill, or framing error —
    every in-flight future fails with ``ServingError`` and the handle
    goes permanently dead (:attr:`alive` is ``False``); restarting
    means creating a fresh handle, which the
    :class:`~repro.serving.cluster.ClusterFrontend` does automatically.

    Thread safety: ``submit``/``call`` are safe from any number of
    threads (one send lock serializes frame writes; ids and the pending
    table live under a state lock).
    """

    def __init__(
        self,
        catalog_root,
        *,
        shard_id: int = 0,
        kind: str = "VIP-Tree",
        capacity: int = 8,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        mmap: bool = True,
        oplog: bool = False,
        slow_query_threshold: float | None = None,
        mp_context=None,
    ) -> None:
        if max_inflight < 1:
            raise ServingError(f"max_inflight must be >= 1, got {max_inflight}")
        self.catalog_root = str(catalog_root)
        self.shard_id = int(shard_id)
        self.kind = kind
        self.capacity = int(capacity)
        self.flush_interval = float(flush_interval)
        self.mmap = bool(mmap)
        self.oplog = bool(oplog)
        self.slow_query_threshold = (
            float(slow_query_threshold)
            if slow_query_threshold is not None else None
        )
        self.max_inflight = int(max_inflight)
        self._mp_context = mp_context
        self.process = None
        self._sock: socket.socket | None = None
        self._reader: threading.Thread | None = None
        self._send_lock = threading.Lock()
        self._state = threading.Lock()
        #: request id -> (future, wants the raw Response envelope)
        self._pending: dict[int, tuple[Future, bool]] = {}
        self._next_id = 0
        self._sem = threading.Semaphore(self.max_inflight)
        self._alive = False
        self._death_reason: str | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardProcess":
        """Spawn the worker process and accept its connection."""
        if self.process is not None:
            raise ServingError(
                f"shard {self.shard_id} already started; restart means a new handle"
            )
        import multiprocessing

        ctx = self._mp_context or multiprocessing.get_context()
        listener = socket.create_server(("127.0.0.1", 0))
        try:
            port = listener.getsockname()[1]
            self.process = ctx.Process(
                target=_shard_entry,
                args=(port, self.catalog_root, self.shard_id, self.kind,
                      self.capacity, self.flush_interval, self.mmap,
                      self.oplog, self.slow_query_threshold),
                name=f"repro-shard-{self.shard_id}",
                daemon=True,
            )
            self.process.start()
            listener.settimeout(_CONNECT_TIMEOUT)
            self._sock, _ = listener.accept()
            _no_delay(self._sock)
        finally:
            listener.close()
        self._alive = True
        self._reader = threading.Thread(
            target=self._read_loop, name=f"shard-{self.shard_id}-reader",
            daemon=True,
        )
        self._reader.start()
        return self

    @property
    def alive(self) -> bool:
        """Connection up *and* the worker process still running."""
        return (self._alive and self.process is not None
                and self.process.is_alive())

    @property
    def inflight(self) -> int:
        """Requests currently awaiting a reply."""
        with self._state:
            return len(self._pending)

    def shutdown(self, timeout: float = 30.0) -> None:
        """Gracefully stop the worker: drain, flush, exit, join.

        The ``shutdown`` request is answered only after everything
        submitted before it completed (the worker is single-threaded
        and in-order), and its reply carries the final flush count. A
        dead shard is reaped without ceremony. Idempotent.
        """
        if self.alive:
            try:
                self.call(Request(venue="", kind="shutdown"), timeout=timeout)
            except (ServingError, FutureTimeoutError, TimeoutError):
                pass  # died or stalled while draining — reap below
        self._mark_dead("shut down")
        if self.process is not None:
            self.process.join(timeout=timeout)
            if self.process.is_alive():  # pragma: no cover - stuck worker
                self.process.terminate()
                self.process.join(timeout=timeout)

    def kill(self) -> None:
        """Hard-kill the worker process (no flush — test/chaos hook)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=_CONNECT_TIMEOUT)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def submit(self, request: Request, *, timeout: float | None = None,
               raw_reply: bool = False) -> Future:
        """Send one request; returns the future its reply will resolve.

        Blocks while the in-flight window is full (backpressure); with
        a ``timeout``, raises :class:`ServingError` instead of blocking
        past it. Raises immediately if the shard is dead.

        With ``raw_reply=True`` the future resolves to the
        :class:`~repro.serving.protocol.Response` envelope itself
        (result document plus the optional ``stats``/``trace`` riders)
        instead of the decoded result value — how the TCP front door
        forwards trace spans and per-query stats without re-encoding.
        """
        if not self.alive:
            raise ServingError(
                f"shard {self.shard_id} is not running"
                + (f" ({self._death_reason})" if self._death_reason else "")
            )
        if not self._sem.acquire(timeout=timeout):
            raise ServingError(
                f"shard {self.shard_id} backpressure: {self.max_inflight} "
                f"requests in flight for {timeout}s"
            )
        future: Future = Future()
        with self._state:
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = (future, bool(raw_reply))
        try:
            # Encode before touching the wire: an unencodable request
            # (oversized venue doc, non-JSON payload) fails only its
            # own future — the connection carried no partial frame and
            # stays healthy.
            frame = encode_frame(request_to_doc(request, request_id))
        except Exception as exc:  # noqa: BLE001 - travels via the future
            self._settle(request_id, error=ServingError(
                f"shard {self.shard_id} request not encodable: {exc}"))
            return future
        try:
            with self._send_lock:
                sock = self._sock
                if sock is None:
                    raise OSError("connection already closed")
                sock.sendall(frame)
        except OSError as exc:
            # A failed sendall may have written part of the frame —
            # the stream is unrecoverable, so the handle dies.
            self._settle(request_id, error=ServingError(
                f"shard {self.shard_id} send failed: {exc}"))
            self._mark_dead(f"send failed: {exc}")
        return future

    def call(self, request: Request, *, timeout: float | None = None):
        """Synchronous convenience: ``submit(...).result(timeout)``."""
        return self.submit(request, timeout=timeout).result(timeout)

    # ------------------------------------------------------------------
    def _settle(self, request_id: int, *, value=None,
                error: BaseException | None = None) -> bool:
        """Resolve one pending future and release its window slot."""
        with self._state:
            entry = self._pending.pop(request_id, None)
        if entry is None:
            return False
        future = entry[0]
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(value)
        self._sem.release()
        return True

    def _wants_raw(self, request_id: int) -> bool:
        with self._state:
            entry = self._pending.get(request_id)
        return entry is not None and entry[1]

    def _mark_dead(self, reason: str) -> None:
        with self._state:
            if not self._alive and self._death_reason is not None:
                pending = {}
            else:
                self._alive = False
                self._death_reason = reason
                pending = dict(self._pending)
        for request_id in pending:
            self._settle(request_id, error=ServingError(
                f"shard {self.shard_id} connection lost ({reason}); "
                "the request may or may not have been applied"
            ))
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def _read_loop(self) -> None:
        sock = self._sock
        reason = "connection closed by worker"
        try:
            while True:
                try:
                    doc = recv_doc(sock)
                except (ProtocolError, OSError) as exc:
                    reason = str(exc)
                    doc = None
                if doc is None:
                    break
                try:
                    reply = reply_from_doc(doc)
                except ProtocolError as exc:
                    reason = str(exc)
                    break
                if isinstance(reply, Response):
                    try:
                        value = (reply if self._wants_raw(reply.request_id)
                                 else reply.value())
                        self._settle(reply.request_id, value=value)
                    except Exception as exc:  # noqa: BLE001 - corrupt result
                        # e.g. ProtocolError, or ValueError from packed
                        # numerics — fail this request, keep reading
                        self._settle(reply.request_id, error=exc)
                else:
                    self._settle(reply.request_id, error=reply.exception())
        finally:
            # Whatever ends this thread — clean EOF, framing error, or
            # an unexpected exception — the handle must die loudly so
            # in-flight and future submitters fail fast instead of
            # hanging on futures nobody will resolve.
            self._mark_dead(reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return (
            f"ShardProcess(id={self.shard_id}, {state}, "
            f"inflight={self.inflight}/{self.max_inflight})"
        )
