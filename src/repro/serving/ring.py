"""HashRing: consistent-hash placement of venues onto shards.

Modulo partitioning (``int(fp[:16], 16) % shards``) reshuffles almost
every venue when the shard count changes — growing a 4-shard cluster
to 5 would invalidate every shard's warm engine pool and snapshot
locality at once. The ring fixes that the standard way: each shard
(node) owns many pseudo-random **virtual points** on a 64-bit circle,
and a venue lands on the first node point at or clockwise-after its
own hash. Adding or removing one node then moves only the venues whose
arcs it gains or loses — about ``1/N`` of them — while every other
placement is untouched.

Replication falls out of the same walk: the venue's primary is the
first distinct node clockwise from its hash, its replicas the next
distinct nodes — so a venue's N copies always land on N *different*
shards, and when a node dies its venues' successors are already spread
across the survivors.

Placement is a pure function of (node ids, vnodes, key): blake2b is
keyed by nothing, so two processes — or two runs months apart — agree
on every placement without coordination. That is what lets a restarted
cluster find its venues' logs and snapshots where it left them.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b

from ..exceptions import ServingError

#: virtual points per node. 64 keeps the max/mean arc-load ratio near
#: 1.2 for small clusters and bounds relocation on resize near the
#: ideal 1/N (the ring tests assert <= 2/N).
DEFAULT_VNODES = 64


def _hash64(data: str) -> int:
    return int.from_bytes(blake2b(data.encode("utf-8"), digest_size=8).digest(),
                          "big")


class HashRing:
    """A consistent-hash ring over integer node ids.

    Args:
        nodes: initial node ids (shard indices).
        vnodes: virtual points per node — more points, smoother load,
            linearly slower membership changes.

    Thread safety: **none**. The cluster mutates and reads its ring
    under its own mutex; standalone users must do the same.
    """

    def __init__(self, nodes=(), *, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ServingError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._nodes: set[int] = set()
        self._points: list[int] = []       # sorted vnode hashes
        self._owners: dict[int, int] = {}  # vnode hash -> node id
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_node(self, node: int) -> None:
        """Add a node's virtual points (idempotent)."""
        node = int(node)
        if node in self._nodes:
            return
        self._nodes.add(node)
        for v in range(self.vnodes):
            point = _hash64(f"shard-{node}#{v}")
            # 64-bit collisions across vnode labels are ~impossible at
            # this scale; deterministic tie-break keeps runs identical
            # if one ever happens.
            if point in self._owners:
                self._owners[point] = min(self._owners[point], node)
                continue
            bisect.insort(self._points, point)
            self._owners[point] = node

    def remove_node(self, node: int) -> None:
        """Remove a node's virtual points (idempotent)."""
        node = int(node)
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        for v in range(self.vnodes):
            point = _hash64(f"shard-{node}#{v}")
            if self._owners.get(point) == node:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    @property
    def nodes(self) -> set[int]:
        """Current node ids (a copy)."""
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def nodes_for(self, key: str, count: int = 1) -> list[int]:
        """The first ``count`` *distinct* nodes clockwise from ``key``.

        ``nodes_for(fp, n)[0]`` is the venue's primary, the rest its
        replicas — each on a different shard by construction. ``count``
        above the node population returns every node (a 2-shard ring
        cannot 3-replicate). Deterministic across processes and runs.

        Raises:
            ServingError: the ring is empty.
        """
        if not self._nodes:
            raise ServingError("hash ring has no nodes")
        count = min(int(count), len(self._nodes))
        start = bisect.bisect_right(self._points, _hash64(f"venue-{key}"))
        chosen: list[int] = []
        seen: set[int] = set()
        for step in range(len(self._points)):
            owner = self._owners[self._points[(start + step) % len(self._points)]]
            if owner not in seen:
                seen.add(owner)
                chosen.append(owner)
                if len(chosen) == count:
                    break
        return chosen

    def node_for(self, key: str) -> int:
        """The single owning node for ``key`` (the primary)."""
        return self.nodes_for(key, 1)[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HashRing(nodes={sorted(self._nodes)}, "
                f"vnodes={self.vnodes})")
