"""Async front door: one event loop multiplexing every client.

Replaces the thread-per-connection TCP intake. An
:class:`AsyncFrontDoor` runs a single :mod:`asyncio` event loop (in a
daemon thread, so the rest of the stack stays synchronous) that speaks
the framed wire protocol of :mod:`repro.serving.protocol` — unchanged
for single-request frames, plus the multi-request **batch frames**
(:class:`~repro.serving.protocol.BatchRequest` /
:class:`~repro.serving.protocol.BatchResponse`) that amortize the
measured ~75µs/event parent-side wire cost: one frame in, one frame
out, N answers, order preserved, errors isolated per element.

Dispatch model (the part that keeps answers equal to sequential
replay):

* frames are **read and submitted in arrival order** per connection —
  the handler awaits the submission of everything in a frame before
  reading the next frame, so per-venue update/query ordering holds for
  any single client exactly as it did with a dedicated thread;
* submission happens on a small executor (``cluster.submit`` may
  block on a shard's in-flight window — backpressure must stall *that
  client*, never the event loop); one batch costs one executor hop,
  which is where the amortization comes from;
* replies complete out of band: one task per frame awaits the shard
  futures and writes the reply frame (batch replies in request
  order), so slow venues never block other connections' intake.

Admission control is the cluster's
(:class:`~repro.serving.admission.AdmissionController`, wired into
:meth:`ClusterFrontend.submit
<repro.serving.cluster.ClusterFrontend.submit>`): a shed request
surfaces here as a typed ``OverloadedError`` reply frame carrying its
retry-after hint — batchmates of a shed request are unaffected.

Observability: the front door records per-venue end-to-end latency
histograms (``frontdoor_request_seconds{venue=...}`` — the series
per-venue p99s come from), frame/batch counters, and protocol-error
counters into the cluster's registry, so everything surfaces in
``/metrics`` alongside the shard series.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from ..exceptions import ProtocolError, ServingError
from .protocol import (
    _HEADER,
    MAX_FRAME_BYTES,
    BatchResponse,
    ErrorResponse,
    Request,
    Response,
    batch_reply_to_doc,
    batch_request_from_doc,
    decode_frame,
    encode_frame,
    error_reply,
    is_batch_doc,
    reply_to_doc,
    request_from_doc,
    result_to_doc,
)

__all__ = ["AsyncFrontDoor", "LOCAL_KINDS"]

#: request kinds the front door answers itself (venue must be ``""``)
#: instead of routing to a shard
LOCAL_KINDS = ("venues", "ping", "stats", "flush", "metrics")

#: how long :meth:`AsyncFrontDoor.start` waits for the loop to bind
_STARTUP_TIMEOUT = 30.0


def _no_delay(sock) -> None:
    # Same rationale as the shard sockets: frames are small and
    # latency-critical; Nagle+delayed-ACK stalls would swamp them.
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except (OSError, AttributeError):  # pragma: no cover - non-TCP transport
        pass


class AsyncFrontDoor:
    """Serve a :class:`~repro.serving.cluster.ClusterFrontend` over TCP
    with one asyncio event loop.

    Args:
        cluster: the shard cluster requests are routed to (its
            admission controller, if any, guards intake).
        host / port: bind address (``port=0`` picks an ephemeral port;
            :attr:`address` holds the bound ``(host, port)`` after
            :meth:`start`).
        names: optional venue-id → display-name mapping echoed by the
            ``venues`` control kind.
        registry: metrics registry for the front door's series;
            defaults to the cluster's own, so the series surface in the
            merged ``/metrics`` view.
        submit_workers: executor threads submissions run on. Each
            thread can be parked by shard backpressure, so this bounds
            how many clients may be stalled on saturated shards before
            further submissions queue behind them.
        submit_timeout: seconds a submission may block on a saturated
            shard before failing with ``ServingError`` (backpressure
            made visible to the client).
        max_frame_bytes: per-frame payload ceiling.

    Lifecycle is synchronous on the outside: :meth:`start` spawns the
    loop thread and blocks until the socket is bound; :meth:`stop`
    closes the listener, cancels live connections, and joins the
    thread. Usable as a context manager.
    """

    def __init__(
        self,
        cluster,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        names: dict | None = None,
        registry=None,
        submit_workers: int = 8,
        submit_timeout: float = 30.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        if submit_workers < 1:
            raise ServingError(
                f"submit_workers must be >= 1, got {submit_workers}"
            )
        self.cluster = cluster
        self.host = host
        self.port = int(port)
        self.names = dict(names or {})
        self.registry = registry if registry is not None else cluster.registry
        self.submit_timeout = float(submit_timeout)
        self.max_frame_bytes = int(max_frame_bytes)
        self.address: tuple[str, int] | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=int(submit_workers),
            thread_name_prefix="frontdoor-submit",
        )
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._tasks: set = set()  # connection handlers + reply finishers
        self._latency_timers: dict[str, object] = {}
        self._timer_lock = threading.Lock()
        self._frames = {
            "single": self.registry.counter("frontdoor_frames_total",
                                            type="single"),
            "batch": self.registry.counter("frontdoor_frames_total",
                                           type="batch"),
        }
        self._batched_requests = self.registry.counter(
            "frontdoor_batched_requests_total")
        self._connections = self.registry.counter(
            "frontdoor_connections_total")
        self._protocol_errors = self.registry.counter(
            "frontdoor_protocol_errors_total")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AsyncFrontDoor":
        """Spawn the event-loop thread; returns once the socket is
        bound (:attr:`address` is then set). Raises the bind error on
        failure."""
        if self._thread is not None:
            raise ServingError("front door already started")
        self._thread = threading.Thread(
            target=self._run, name="frontdoor-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(_STARTUP_TIMEOUT):  # pragma: no cover
            raise ServingError("front door event loop did not start")
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Close the listener, cancel live connections, join the loop
        thread, and shut the submit executor down. Idempotent."""
        loop, self._loop = self._loop, None
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "AsyncFrontDoor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - loop crash
            if self._startup_error is None:
                self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._on_connection, self.host, self.port)
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.address = server.sockets[0].getsockname()[:2]
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            for task in list(self._tasks):
                task.cancel()
            if self._tasks:
                await asyncio.gather(*self._tasks, return_exceptions=True)

    def _track(self, task) -> None:
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._track(task)
        self._connections.inc()
        sock = writer.get_extra_info("socket")
        if sock is not None:
            _no_delay(sock)
        send_lock = asyncio.Lock()
        try:
            while True:
                try:
                    doc = await self._read_doc(reader)
                except (ProtocolError, OSError, ConnectionError):
                    self._protocol_errors.inc()
                    break
                if doc is None:
                    break  # clean EOF between frames
                if not await self._dispatch(doc, writer, send_lock):
                    self._protocol_errors.inc()
                    break  # fatal frame damage: close the connection
        except asyncio.CancelledError:
            pass  # front door stopping: close without ceremony
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError, asyncio.CancelledError):
                pass

    async def _read_doc(self, reader) -> dict | None:
        """One framed document; ``None`` on clean EOF between frames.

        Raises :class:`ProtocolError` on truncation (EOF inside the
        header or payload), an oversized declared length, or an
        undecodable payload — all fatal for the connection, exactly
        like the synchronous :func:`~repro.serving.protocol.recv_doc`.
        """
        try:
            header = await reader.readexactly(_HEADER.size)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise ProtocolError(
                f"truncated frame: connection closed after "
                f"{len(exc.partial)} of {_HEADER.size} header bytes"
            ) from None
        (length,) = _HEADER.unpack(header)
        if length > self.max_frame_bytes:
            raise ProtocolError(
                f"oversized frame: declared payload of {length} bytes "
                f"exceeds the {self.max_frame_bytes}-byte frame limit"
            )
        try:
            payload = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(
                f"truncated frame: connection closed after "
                f"{len(exc.partial)} of {length} payload bytes"
            ) from None
        return decode_frame(payload)

    async def _send(self, writer, send_lock, doc: dict) -> None:
        try:
            frame = encode_frame(doc, max_bytes=self.max_frame_bytes)
        except ProtocolError:  # pragma: no cover - result not encodable
            self._protocol_errors.inc()
            return
        try:
            async with send_lock:
                writer.write(frame)
                await writer.drain()
        except (OSError, ConnectionError):
            pass  # client went away; its shard work still completes

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, doc, writer, send_lock) -> bool:
        """Submit one frame's worth of requests (in order) and schedule
        its reply; ``False`` means the frame was damaged beyond
        replying and the connection must close."""
        loop = asyncio.get_running_loop()
        start = perf_counter()
        if is_batch_doc(doc):
            try:
                slots = batch_request_from_doc(doc)
            except ProtocolError:
                return False
            self._frames["batch"].inc()
            self._batched_requests.inc(len(slots))
            entries = await loop.run_in_executor(
                self._executor, self._submit_batch, slots)
            self._track(loop.create_task(
                self._finish_batch(entries, writer, send_lock, start)))
            return True
        try:
            request, request_id = request_from_doc(doc)
        except ProtocolError as exc:
            # Salvage the id for a typed error reply; a document too
            # broken to even carry one closes the connection.
            try:
                request_id = int(doc.get("id"))
            except (TypeError, ValueError):
                return False
            await self._send(writer, send_lock,
                             reply_to_doc(error_reply(request_id, exc)))
            return True
        self._frames["single"].inc()
        entry = await loop.run_in_executor(
            self._executor, self._submit_one, request, request_id)
        if isinstance(entry, (Response, ErrorResponse)):
            await self._send(writer, send_lock, reply_to_doc(entry))
        else:
            self._track(loop.create_task(
                self._finish_single(entry, writer, send_lock, start)))
        return True

    def _submit_one(self, request: Request, request_id: int):
        """Executor-side: submit one request to the cluster.

        Returns either an immediate reply envelope (local kinds,
        rejections, submission failures) or ``(id, venue, future)``
        for the reply finisher to await.
        """
        try:
            if request.venue == "" and request.kind in LOCAL_KINDS:
                value = self._handle_local(request)
                return Response(request_id, result_to_doc(value))
            future = self.cluster.submit(
                request, timeout=self.submit_timeout, raw_reply=True)
        except Exception as exc:  # noqa: BLE001 - travels as a reply
            return error_reply(request_id, exc)
        return (request_id, request.venue, future)

    def _submit_batch(self, slots) -> list:
        """Executor-side: submit a whole batch in one hop, preserving
        element order (and therefore per-venue submission order)."""
        entries = []
        for slot in slots:
            if isinstance(slot, ErrorResponse):
                entries.append(slot)
                continue
            request, request_id = slot
            entries.append(self._submit_one(request, request_id))
        return entries

    def _handle_local(self, request: Request):
        if request.kind == "venues":
            return {"venues": [
                {"id": vid, "name": self.names.get(vid, "")}
                for vid in self.cluster.venue_ids()
            ]}
        if request.kind == "ping":
            self.cluster.drain()  # a front-door ping is a cluster barrier
            return {"ok": True}
        if request.kind == "stats":
            # StatsDoc.to_doc stringifies the by_shard keys for the wire
            return self.cluster.stats().to_doc()
        if request.kind == "metrics":
            return self.cluster.metrics()
        if request.kind == "flush":
            return self.cluster.flush()
        raise ServingError(f"unhandled local kind {request.kind!r}")

    # ------------------------------------------------------------------
    # Reply finishers
    # ------------------------------------------------------------------
    async def _await_entry(self, entry, start: float):
        """Resolve one submitted entry into its reply envelope,
        recording the venue's end-to-end latency."""
        request_id, venue, future = entry
        try:
            got = await asyncio.wrap_future(future)
        except Exception as exc:  # noqa: BLE001 - travels as a reply
            reply = error_reply(request_id, exc)
        else:
            reply = Response(request_id, got.result, stats=got.stats,
                             trace=self._extend_trace(got.trace, start))
        self._observe_latency(venue, perf_counter() - start)
        return reply

    async def _finish_single(self, entry, writer, send_lock,
                             start: float) -> None:
        reply = await self._await_entry(entry, start)
        await self._send(writer, send_lock, reply_to_doc(reply))

    async def _finish_batch(self, entries, writer, send_lock,
                            start: float) -> None:
        replies = []
        for entry in entries:
            if isinstance(entry, (Response, ErrorResponse)):
                replies.append(entry)
                continue
            replies.append(await self._await_entry(entry, start))
        await self._send(writer, send_lock,
                         batch_reply_to_doc(BatchResponse(tuple(replies))))

    def _extend_trace(self, trace_doc, start: float):
        if trace_doc is None:
            return None
        return {
            **trace_doc,
            "spans": list(trace_doc.get("spans", ())) + [
                {"name": "frontend.total",
                 "seconds": perf_counter() - start}
            ],
        }

    def _observe_latency(self, venue: str, seconds: float) -> None:
        label = venue[:12]
        timer = self._latency_timers.get(label)
        if timer is None:
            with self._timer_lock:
                timer = self._latency_timers.get(label)
                if timer is None:
                    timer = self.registry.histogram(
                        "frontdoor_request_seconds", venue=label)
                    self._latency_timers[label] = timer
        timer.observe(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "bound" if self.address else "new"
        return f"AsyncFrontDoor({state}, address={self.address})"
