"""Concurrent multi-venue serving layer.

The production-shaped top of the stack: many venues (airport terminals,
malls, campuses), many concurrent users. Three explicit layers, each
usable alone:

* **Protocol** (:mod:`~repro.serving.protocol`) — the one request/
  response shape every transport speaks: :class:`Request` (exported as
  ``ServingRequest`` too) / :class:`Response` / :class:`ErrorResponse`
  plus a length-prefixed canonical-JSON wire codec with bit-exact
  packed numerics. A query answered over a socket is element-wise
  identical to the same query answered in-process.
* **Workers** — two transports behind that protocol:

  * :class:`ServingFrontend` — **in-thread**: a worker-thread pool
    draining a bounded request queue (backpressure) over a
    :class:`VenueRouter`, one :class:`~concurrent.futures.Future` per
    request. Threads overlap the blocking share of requests but the
    GIL serializes the CPU-bound index math.
  * :class:`~repro.serving.shard.ShardWorker` /
    :class:`~repro.serving.shard.ShardProcess` — **one process per
    shard**: the same router behind a socket, requests multiplexed
    with per-request futures, a background
    :class:`~repro.serving.router.PeriodicFlusher` for durability, and
    flush-on-drain.
* **Cluster** (:class:`ClusterFrontend`) — hash-partitions venue
  fingerprints across N shard processes: true multi-core scaling for
  the CPU-bound query math, crash restart from catalog snapshots (the
  flush interval bounds the durability window), backpressure, graceful
  drain, and optional per-venue **admission control**
  (:class:`AdmissionController`: token-bucket rate limiting +
  queue-depth shedding; shed requests raise a typed
  :class:`~repro.exceptions.OverloadedError` with a retry-after hint).
* **Front door** (:class:`AsyncFrontDoor`) — one asyncio event loop
  multiplexing every TCP client over the framed protocol: single
  frames exactly as before, plus multi-request **batch frames**
  (:class:`~repro.serving.protocol.BatchRequest`) answered in order
  with per-element error isolation. :class:`FrontDoorClient` is the
  matching synchronous client. ``python -m repro.serving`` serves a
  catalog this way over TCP.

:class:`VenueRouter` — a bounded LRU pool of **thread-safe**
:class:`~repro.engine.engine.QueryEngine` instances keyed by venue
fingerprint, lazily warm-started from a
:class:`~repro.storage.catalog.SnapshotCatalog` with eviction
write-back — is the per-process serving unit both transports share.
:func:`concurrent_replay` / :func:`sequential_replay` drive multi-venue
workloads through either frontend; concurrent replay is guaranteed (and
CI-checked by ``benchmarks/bench_serving.py``) to return element-wise
identical answers to sequential replay, in-thread and across the
cluster alike.

Thread-safety model (details in ``docs/serving.md``): engines guard
object updates with a :class:`~repro.engine.locking.RWLock` (queries
read-side, updates write-side) and their caches with a mutex; the
router and frontend each add one mutex of their own. Lock ordering is
frontend -> router -> engine/catalog, strictly acyclic. Every public
method in this package is safe to call from any thread; per-method
guarantees are documented on the methods themselves.

Quickstart (in-thread)::

    from repro.serving import ServingFrontend, VenueRouter
    from repro.storage import SnapshotCatalog

    router = VenueRouter(SnapshotCatalog("snapshots/"), capacity=8)
    vid = router.add_venue(space, objects=objects)
    with ServingFrontend(router, workers=4) as frontend:
        future = frontend.request(vid, "knn", source=point, k=5)
        neighbors = future.result()

Quickstart (sharded cluster — same requests, N processes)::

    from repro.serving import ClusterFrontend

    with ClusterFrontend("snapshots/", shards=4) as cluster:
        vid = cluster.add_venue(space, objects=objects)
        neighbors = cluster.request(vid, "knn", source=point, k=5).result()
"""

from .admission import AdmissionController, AdmissionStats, TokenBucket
from .async_frontend import AsyncFrontDoor
from .client import FrontDoorClient
from .cluster import ClusterFrontend, ClusterStats
from .frontend import FrontendStats, ServingFrontend
from .protocol import (
    CONTROL_KINDS,
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    FAULT_KINDS,
    MAX_BATCH_REQUESTS,
    QUERY_KINDS,
    READ_KINDS,
    Request,
    Response,
    stats_from_doc,
    stats_to_doc,
)
from .replay import ServingReport, concurrent_replay, sequential_replay
from .ring import DEFAULT_VNODES, HashRing
from .router import (
    PeriodicFlusher,
    REQUEST_KINDS,
    RouterStats,
    ServingRequest,
    VENUE_ROLES,
    VenueRouter,
)
from .shard import ShardProcess, ShardStats, ShardWorker

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AsyncFrontDoor",
    "BatchRequest",
    "BatchResponse",
    "CONTROL_KINDS",
    "ClusterFrontend",
    "ClusterStats",
    "DEFAULT_VNODES",
    "ErrorResponse",
    "FAULT_KINDS",
    "FrontDoorClient",
    "FrontendStats",
    "HashRing",
    "MAX_BATCH_REQUESTS",
    "PeriodicFlusher",
    "QUERY_KINDS",
    "READ_KINDS",
    "REQUEST_KINDS",
    "Request",
    "Response",
    "RouterStats",
    "ServingFrontend",
    "ServingReport",
    "ServingRequest",
    "ShardProcess",
    "ShardStats",
    "ShardWorker",
    "TokenBucket",
    "VENUE_ROLES",
    "VenueRouter",
    "concurrent_replay",
    "sequential_replay",
    "stats_from_doc",
    "stats_to_doc",
]
