"""Concurrent multi-venue serving layer.

The production-shaped top of the stack: many venues (airport terminals,
malls, campuses), many concurrent users, one process. Built from three
pieces, each usable alone:

* :class:`VenueRouter` — a bounded LRU pool of **thread-safe**
  :class:`~repro.engine.engine.QueryEngine` instances, one per venue
  fingerprint, lazily warm-started from a
  :class:`~repro.storage.catalog.SnapshotCatalog`
  (:meth:`~repro.storage.catalog.SnapshotCatalog.engine_for`); evicted
  engines that served updates are snapshotted back (write-back) so no
  object state is lost,
* :class:`ServingFrontend` — a worker-thread pool draining a bounded
  request queue (backpressure) with one
  :class:`~concurrent.futures.Future` per request and graceful
  drain/shutdown,
* :func:`concurrent_replay` / :func:`sequential_replay` — multi-venue
  workload drivers; concurrent replay is guaranteed (and CI-checked by
  ``benchmarks/bench_serving.py``) to return element-wise identical
  answers to sequential replay.

Requests are :class:`ServingRequest` values tagged with a venue id (the
venue fingerprint returned by :meth:`VenueRouter.add_venue`).

Thread-safety model (details in ``docs/serving.md``): engines guard
object updates with a :class:`~repro.engine.locking.RWLock` (queries
read-side, updates write-side) and their caches with a mutex; the
router and frontend each add one mutex of their own. Lock ordering is
frontend -> router -> engine/catalog, strictly acyclic. Every public
method in this package is safe to call from any thread; per-method
guarantees are documented on the methods themselves.

Quickstart::

    from repro.serving import ServingFrontend, VenueRouter
    from repro.storage import SnapshotCatalog

    router = VenueRouter(SnapshotCatalog("snapshots/"), capacity=8)
    vid = router.add_venue(space, objects=objects)
    with ServingFrontend(router, workers=4) as frontend:
        future = frontend.request(vid, "knn", source=point, k=5)
        neighbors = future.result()
"""

from .frontend import FrontendStats, ServingFrontend
from .replay import ServingReport, concurrent_replay, sequential_replay
from .router import REQUEST_KINDS, RouterStats, ServingRequest, VenueRouter

__all__ = [
    "FrontendStats",
    "REQUEST_KINDS",
    "RouterStats",
    "ServingFrontend",
    "ServingReport",
    "ServingRequest",
    "VenueRouter",
    "concurrent_replay",
    "sequential_replay",
]
