"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single type at API boundaries while tests can assert the precise
failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class VenueError(ReproError):
    """An indoor venue description is structurally invalid.

    Raised when doors reference unknown partitions, a door is attached to
    more than two partitions, a partition has no doors, or ids collide.
    """


class DisconnectedVenueError(VenueError):
    """The door-to-door graph of a venue is not connected.

    The paper's indexes (and the baselines) assume a connected indoor
    space: every pair of doors must be mutually reachable.
    """


class QueryError(ReproError):
    """A query is malformed (unknown partition/door, non-positive k, ...)."""


class ConstructionError(ReproError):
    """Index construction failed (e.g. invalid minimum degree)."""


class ServingError(ReproError):
    """The serving layer rejected or could not dispatch a request.

    Raised by :mod:`repro.serving` for unknown venue ids, malformed
    requests, submissions to a stopped/draining frontend, and
    backpressure timeouts (the bounded request queue stayed full).
    """


class OverloadedError(ServingError):
    """The serving layer shed this request to protect everyone else.

    Raised by per-venue admission control
    (:mod:`repro.serving.admission`): the venue exhausted its
    token-bucket rate allowance or its queue-depth bound. The request
    was **not** executed — retrying after :attr:`retry_after` seconds
    (when known) is safe and expected. Crosses the wire as a typed
    error response carrying the hint, so remote clients can back off
    exactly as in-process callers do.
    """

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        super().__init__(message)
        #: seconds until the venue's token bucket next admits a request
        #: (``None`` when the rejection was queue-depth shedding — retry
        #: once in-flight requests drain, which has no fixed horizon)
        self.retry_after = retry_after


class ProtocolError(ServingError):
    """A serving-protocol frame or document is malformed.

    Raised by :mod:`repro.serving.protocol` for oversized frames
    (declared length above the reader's limit), truncated frames (the
    peer closed mid-frame), undecodable payloads, and request/response
    documents with unknown shapes. A :class:`ProtocolError` on a shard
    connection is fatal for that connection — the cluster treats it
    like a crashed shard and restarts it from its snapshots.
    """


class SnapshotError(ReproError):
    """An index snapshot cannot be written, read or trusted.

    Raised by :mod:`repro.storage` on unknown index kinds, corrupted or
    truncated snapshot files, format-version mismatches, and
    venue-fingerprint mismatches (loading a snapshot against a different
    venue than the one it was built for).
    """
