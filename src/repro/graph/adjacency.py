"""Weighted undirected graph used across the library.

The door-to-door graph, the level-l graphs of the IP-Tree, the assembly
graphs of the G-tree baseline, and the shortcut graphs of ROAD are all
instances of this structure. It is intentionally simple: adjacency lists
of ``(neighbour, weight)`` pairs with parallel-edge de-duplication keeping
the minimum weight.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator


class Graph:
    """Undirected weighted graph over dense integer vertices ``0..n-1``."""

    def __init__(self, num_vertices: int):
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.num_vertices = num_vertices
        self._adj: list[dict[int, float]] = [dict() for _ in range(num_vertices)]
        self._num_edges = 0

    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add an undirected edge; parallel edges keep the minimum weight.

        Self-loops are ignored (they can never be on a shortest path with
        non-negative weights).
        """
        if u == v:
            return
        if weight < 0:
            raise ValueError(f"negative edge weight {weight} on ({u}, {v})")
        adj_u = self._adj[u]
        existing = adj_u.get(v)
        if existing is None:
            adj_u[v] = weight
            self._adj[v][u] = weight
            self._num_edges += 1
        elif weight < existing:
            adj_u[v] = weight
            self._adj[v][u] = weight

    def neighbors(self, u: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(neighbour, weight)`` pairs of ``u``."""
        return iter(self._adj[u].items())

    def neighbor_map(self, u: int) -> dict[int, float]:
        return self._adj[u]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u]

    def edge_weight(self, u: int, v: int) -> float:
        return self._adj[u][v]

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate each undirected edge once as ``(u, v, w)`` with u < v."""
        for u in range(self.num_vertices):
            for v, w in self._adj[u].items():
                if u < v:
                    yield (u, v, w)

    # ------------------------------------------------------------------
    def connected_components(self) -> list[list[int]]:
        """Connected components as vertex lists (BFS)."""
        seen = [False] * self.num_vertices
        components = []
        for start in range(self.num_vertices):
            if seen[start]:
                continue
            seen[start] = True
            comp = [start]
            queue = deque([start])
            while queue:
                u = queue.popleft()
                for v in self._adj[u]:
                    if not seen[v]:
                        seen[v] = True
                        comp.append(v)
                        queue.append(v)
            components.append(comp)
        return components

    def is_connected(self) -> bool:
        if self.num_vertices == 0:
            return True
        return len(self.connected_components()) == 1

    def subgraph(self, vertices: list[int]) -> tuple["Graph", dict[int, int]]:
        """Induced subgraph plus the old->new vertex id mapping."""
        mapping = {v: i for i, v in enumerate(vertices)}
        sub = Graph(len(vertices))
        for v in vertices:
            nv = mapping[v]
            for u, w in self._adj[v].items():
                nu = mapping.get(u)
                if nu is not None and nv < nu:
                    sub.add_edge(nv, nu, w)
        return sub, mapping

    def memory_bytes(self) -> int:
        """Rough memory estimate: 2 * edges * (int + float) + vertex dicts."""
        return self._num_edges * 2 * 16 + self.num_vertices * 64

    # ------------------------------------------------------------------
    # Serialized state (snapshots, :mod:`repro.storage`)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-safe serialized state: vertex count + packed edge arrays.

        Edges are emitted sorted by ``(u, v)`` and packed column-wise
        (:mod:`repro.model.packing`) so the byte-level encoding is
        identical across runs — snapshot hashes must be reproducible.
        """
        from ..model.packing import pack_f64, pack_i64

        es = sorted(self.edges())
        return {
            "n": self.num_vertices,
            "u": pack_i64([u for u, _, _ in es]),
            "v": pack_i64([v for _, v, _ in es]),
            "w": pack_f64([w for _, _, w in es]),
        }

    @classmethod
    def from_state(cls, state: dict) -> "Graph":
        """Rebuild a graph from :meth:`to_state` output.

        The edge list was written deduplicated with ``u < v``, so the
        adjacency maps are filled directly instead of re-running
        :meth:`add_edge`'s parallel-edge handling per edge.
        """
        from ..model.packing import unpack_f64, unpack_i64

        g = cls(state["n"])
        adj = g._adj
        edges = 0
        for u, v, w in zip(
            unpack_i64(state["u"]), unpack_i64(state["v"]), unpack_f64(state["w"])
        ):
            adj[u][v] = w
            adj[v][u] = w
            edges += 1
        g._num_edges = edges
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(V={self.num_vertices}, E={self._num_edges})"
