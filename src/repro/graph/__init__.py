"""Graph algorithms substrate: adjacency lists, Dijkstra, partitioning."""

from .adjacency import Graph
from .dijkstra import (
    INF,
    dijkstra,
    dijkstra_first_hops,
    path_from_parents,
    pseudo_diameter,
)

__all__ = [
    "Graph",
    "INF",
    "dijkstra",
    "dijkstra_first_hops",
    "path_from_parents",
    "pseudo_diameter",
]
