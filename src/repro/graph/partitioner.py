"""Balanced graph partitioning — a METIS stand-in.

The G-tree baseline [Zhong et al. 28] uses the multilevel partitioning
algorithm of Karypis & Kumar [15]; ROAD [17] also needs a hierarchical
decomposition into "Rnets". METIS is unavailable offline, so this module
implements a deterministic multilevel-style bisection:

1. pick a pseudo-peripheral seed pair (two BFS sweeps),
2. grow two regions simultaneously, always extending the smaller-weight
   side through its cheapest frontier edge (balanced region growing),
3. refine the boundary with a few Fiduccia–Mattheyses-style passes that
   move boundary vertices with positive gain while keeping balance.

Recursive bisection yields k-way partitions. Quality is sufficient for
the baselines: on indoor D2D graphs the hallway cliques dominate and any
balanced small-cut split keeps border counts close to what METIS gives
(see DESIGN.md §5 substitution 2).
"""

from __future__ import annotations

from collections import deque

from .adjacency import Graph


def _bfs_farthest(graph: Graph, vertices: list[int], start: int) -> int:
    """Farthest vertex from ``start`` by hop count, restricted to ``vertices``."""
    allowed = set(vertices)
    seen = {start}
    queue = deque([start])
    last = start
    while queue:
        u = queue.popleft()
        last = u
        for v, _ in graph.neighbors(u):
            if v in allowed and v not in seen:
                seen.add(v)
                queue.append(v)
    return last


def bisect(graph: Graph, vertices: list[int], refine_passes: int = 4) -> tuple[list[int], list[int]]:
    """Split ``vertices`` into two balanced halves with a small cut.

    Returns two disjoint vertex lists covering ``vertices``. The split is
    deterministic for a given graph and vertex list.
    """
    n = len(vertices)
    if n <= 1:
        return list(vertices), []
    if n == 2:
        return [vertices[0]], [vertices[1]]

    allowed = set(vertices)
    seed_a = _bfs_farthest(graph, vertices, vertices[0])
    seed_b = _bfs_farthest(graph, vertices, seed_a)
    if seed_a == seed_b:
        seed_b = next(v for v in vertices if v != seed_a)

    # Balanced dual region growing by hop count.
    side: dict[int, int] = {seed_a: 0, seed_b: 1}
    frontiers = [deque([seed_a]), deque([seed_b])]
    counts = [1, 1]
    while counts[0] + counts[1] < n:
        grow = 0 if counts[0] <= counts[1] else 1
        progressed = False
        for attempt in (grow, 1 - grow):
            queue = frontiers[attempt]
            while queue:
                u = queue[0]
                advanced = False
                for v, _ in graph.neighbors(u):
                    if v in allowed and v not in side:
                        side[v] = attempt
                        counts[attempt] += 1
                        queue.append(v)
                        advanced = True
                        progressed = True
                        break
                if advanced:
                    break
                queue.popleft()
            if progressed:
                break
        if not progressed:
            # Disconnected remainder: assign leftovers to the smaller side.
            for v in vertices:
                if v not in side:
                    tgt = 0 if counts[0] <= counts[1] else 1
                    side[v] = tgt
                    counts[tgt] += 1
            break

    _refine(graph, vertices, side, counts, refine_passes)

    part_a = [v for v in vertices if side[v] == 0]
    part_b = [v for v in vertices if side[v] == 1]
    if not part_a or not part_b:  # pathological fallback: even split
        half = n // 2
        return list(vertices[:half]), list(vertices[half:])
    return part_a, part_b


def _refine(
    graph: Graph,
    vertices: list[int],
    side: dict[int, int],
    counts: list[int],
    passes: int,
) -> None:
    """FM-style boundary refinement: move positive-gain boundary vertices.

    The gain of moving v is (cut edges incident to v) - (internal edges
    incident to v), by edge count. Moves preserve a 60/40 balance bound.
    """
    n = len(vertices)
    max_side = max(2, int(n * 0.6))
    for _ in range(passes):
        moved = 0
        for v in vertices:
            s = side[v]
            other = 1 - s
            if counts[other] + 1 > max_side or counts[s] - 1 < 1:
                continue
            internal = external = 0
            for u, _ in graph.neighbors(v):
                su = side.get(u)
                if su is None:
                    continue
                if su == s:
                    internal += 1
                else:
                    external += 1
            if external > internal:
                side[v] = other
                counts[s] -= 1
                counts[other] += 1
                moved += 1
        if not moved:
            break


def partition_k(graph: Graph, vertices: list[int], k: int) -> list[list[int]]:
    """k-way partition via recursive bisection.

    Produces at most ``k`` non-empty parts (fewer when ``vertices`` is
    small). Parts are balanced to within the bisection tolerance.
    """
    if k <= 1 or len(vertices) <= 1:
        return [list(vertices)]
    half_k = k // 2
    part_a, part_b = bisect(graph, vertices)
    if not part_b:
        return [part_a]
    parts = partition_k(graph, part_a, half_k)
    parts.extend(partition_k(graph, part_b, k - half_k))
    return [p for p in parts if p]


def cut_size(graph: Graph, side_of: dict[int, int]) -> int:
    """Number of edges crossing the partition (for tests/diagnostics)."""
    cut = 0
    for u, v, _ in graph.edges():
        su, sv = side_of.get(u), side_of.get(v)
        if su is not None and sv is not None and su != sv:
            cut += 1
    return cut
