"""Dijkstra variants used throughout the library.

All index-construction steps of the paper (§2.1.2) are phrased as
"Dijkstra's like expansion until all doors in ... have been reached"; the
query baselines (DistAw) and the same-leaf fallback of the trees are
Dijkstra expansions with virtual sources. This module provides those
primitives with early termination, parent tracking (for next-hop doors)
and first-hop tracking (for the DistMx path matrix).
"""

from __future__ import annotations

import heapq
import math

from .adjacency import Graph

INF = math.inf


def dijkstra(
    graph: Graph,
    sources: dict[int, float] | int,
    targets: set[int] | None = None,
    cutoff: float | None = None,
) -> tuple[dict[int, float], dict[int, int]]:
    """Single/multi-source Dijkstra with early termination.

    Args:
        graph: the graph to search.
        sources: either a single source vertex, or a mapping
            ``vertex -> initial offset`` (virtual-source searches, e.g. a
            query point connected to the doors of its partition).
        targets: if given, the search stops once *all* targets are
            settled (paper: "until all doors in the node N are reached").
        cutoff: if given, vertices farther than this are not settled.

    Returns:
        ``(dist, parent)`` dictionaries over settled vertices. ``parent``
        maps each settled vertex to its predecessor on a shortest path
        from the source set (sources map to themselves).
    """
    if isinstance(sources, int):
        sources = {sources: 0.0}

    dist: dict[int, float] = {}
    parent: dict[int, int] = {}
    best: dict[int, float] = dict()
    pq: list[tuple[float, int, int]] = []
    for s, off in sources.items():
        if off < 0:
            raise ValueError("negative source offset")
        if off < best.get(s, INF):
            best[s] = off
            heapq.heappush(pq, (off, s, s))

    remaining = set(targets) if targets is not None else None

    while pq:
        d, u, via = heapq.heappop(pq)
        if u in dist:
            continue
        if cutoff is not None and d > cutoff:
            break
        dist[u] = d
        parent[u] = via
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, w in graph.neighbors(u):
            if v in dist:
                continue
            nd = d + w
            if nd < best.get(v, INF):
                best[v] = nd
                heapq.heappush(pq, (nd, v, u))
    return dist, parent


def dijkstra_first_hops(
    graph: Graph, source: int
) -> tuple[dict[int, float], dict[int, int]]:
    """Full Dijkstra from ``source`` tracking the *first hop* per vertex.

    ``first_hop[v]`` is the first vertex after ``source`` on a shortest
    path ``source -> v`` (``v`` itself when the edge is direct). This is
    the structure the DistMx baseline materializes for path recovery.
    """
    dist, parent = dijkstra(graph, source)
    first_hop: dict[int, int] = {}
    # Vertices settle in increasing distance order in `dist` (insertion
    # order of the dict), so parents are resolved before children.
    for v in dist:
        if v == source:
            continue
        p = parent[v]
        first_hop[v] = v if p == source else first_hop[p]
    return dist, first_hop


def path_from_parents(parent: dict[int, int], source: int, target: int) -> list[int]:
    """Reconstruct ``source -> target`` from a parent map.

    Works with the parent maps returned by :func:`dijkstra` (parents point
    toward the source).
    """
    if target not in parent:
        raise KeyError(f"target {target} was not settled")
    path = [target]
    v = target
    while v != source and parent[v] != v:
        v = parent[v]
        path.append(v)
    path.reverse()
    return path


def pseudo_diameter(graph: Graph, start: int = 0) -> float:
    """Lower bound on the graph diameter via a double Dijkstra sweep.

    Used by the workload generator to split [0, d_max] into the paper's
    Q1..Q5 distance buckets (§4.3.2).
    """
    if graph.num_vertices == 0:
        return 0.0
    dist, _ = dijkstra(graph, start)
    far = max(dist, key=dist.get)
    dist2, _ = dijkstra(graph, far)
    return max(dist2.values())
