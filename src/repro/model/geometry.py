"""Geometric primitives for indoor venues.

Indoor entities live in a 2.5-D coordinate system, following §4.1 of the
paper: the first two coordinates are planar x/y positions and the third is
the floor number. Metric distances convert the floor number to a vertical
offset via a per-venue ``floor_height``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Default vertical distance between two consecutive floors, in metres.
DEFAULT_FLOOR_HEIGHT = 4.0


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the indoor coordinate system.

    Attributes:
        x: planar x coordinate in metres.
        y: planar y coordinate in metres.
        floor: floor number (0 = ground). Fractional floors are allowed
            for entities such as mid-landing staircase doors.
    """

    x: float
    y: float
    floor: float = 0.0

    def planar_distance(self, other: "Point") -> float:
        """Euclidean distance ignoring the floor component."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance(self, other: "Point", floor_height: float = DEFAULT_FLOOR_HEIGHT) -> float:
        """3-D Euclidean distance with floors scaled by ``floor_height``."""
        dz = (self.floor - other.floor) * floor_height
        return math.sqrt(
            (self.x - other.x) ** 2 + (self.y - other.y) ** 2 + dz * dz
        )

    def translated(self, dx: float = 0.0, dy: float = 0.0, dfloor: float = 0.0) -> "Point":
        """Return a copy of this point shifted by the given offsets."""
        return Point(self.x + dx, self.y + dy, self.floor + dfloor)


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle on a single floor.

    Used by venue generators to describe partition footprints and to sample
    uniformly distributed query points inside a partition.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError(f"degenerate rectangle: {self}")

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def contains(self, x: float, y: float) -> bool:
        """Whether the point (x, y) lies inside or on the boundary."""
        return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max

    def sample(self, rng) -> tuple[float, float]:
        """Sample a uniform point inside the rectangle.

        Args:
            rng: a ``random.Random`` instance (determinism is the caller's
                responsibility — pass a seeded generator).
        """
        return (
            self.x_min + rng.random() * self.width,
            self.y_min + rng.random() * self.height,
        )

    def translated(self, dx: float = 0.0, dy: float = 0.0) -> "Rect":
        return Rect(self.x_min + dx, self.y_min + dy, self.x_max + dx, self.y_max + dy)


def euclidean(
    a: Point, b: Point, floor_height: float = DEFAULT_FLOOR_HEIGHT
) -> float:
    """Convenience wrapper for :meth:`Point.distance`."""
    return a.distance(b, floor_height)
