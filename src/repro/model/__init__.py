"""Indoor space substrate: entities, venues, D2D/AB graphs, objects, IO."""

from .ab_graph import ABGraph, build_ab_graph
from .builder import IndoorSpaceBuilder
from .d2d import average_out_degree, build_d2d_graph
from .entities import (
    DEFAULT_DELTA,
    Door,
    IndoorPoint,
    Partition,
    PartitionCategory,
    PartitionKind,
)
from .geometry import DEFAULT_FLOOR_HEIGHT, Point, Rect, euclidean
from .indoor_space import IndoorSpace, VenueStats
from .io_json import (
    canonical_dumps,
    load_objects,
    load_space,
    objects_from_dict,
    objects_to_dict,
    save_objects,
    save_space,
    space_from_dict,
    space_to_dict,
)
from .objects import IndoorObject, ObjectSet, UpdateOp, make_object_set

__all__ = [
    "ABGraph",
    "DEFAULT_DELTA",
    "DEFAULT_FLOOR_HEIGHT",
    "Door",
    "IndoorObject",
    "IndoorPoint",
    "IndoorSpace",
    "IndoorSpaceBuilder",
    "ObjectSet",
    "Partition",
    "PartitionCategory",
    "PartitionKind",
    "Point",
    "Rect",
    "UpdateOp",
    "VenueStats",
    "average_out_degree",
    "build_ab_graph",
    "build_d2d_graph",
    "canonical_dumps",
    "euclidean",
    "load_objects",
    "load_space",
    "make_object_set",
    "objects_from_dict",
    "objects_to_dict",
    "save_objects",
    "save_space",
    "space_from_dict",
    "space_to_dict",
]
