"""Fluent construction API for indoor venues.

The builder assigns dense ids, keeps the partition/door cross-references
consistent and produces a validated :class:`~repro.model.indoor_space.IndoorSpace`.
It is used by the synthetic dataset generators, the examples, and the test
suite's handcrafted venues.

Example:
    >>> b = IndoorSpaceBuilder(name="demo")
    >>> hall = b.add_partition(kind=PartitionKind.HALLWAY, floor=0, label="hall")
    >>> room = b.add_partition(kind=PartitionKind.ROOM, floor=0, label="office")
    >>> door = b.add_door(hall, room, x=1.0, y=0.0)
    >>> exit_ = b.add_exterior_door(hall, x=0.0, y=0.0)
    >>> space = b.build()
"""

from __future__ import annotations

from ..exceptions import VenueError
from .entities import Door, Partition, PartitionKind
from .geometry import DEFAULT_FLOOR_HEIGHT, Point, Rect
from .indoor_space import IndoorSpace


class IndoorSpaceBuilder:
    """Incrementally assembles an :class:`IndoorSpace`."""

    def __init__(self, name: str = "venue", floor_height: float = DEFAULT_FLOOR_HEIGHT):
        self.name = name
        self.floor_height = floor_height
        self._partitions: list[Partition] = []
        self._doors: list[Door] = []

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def add_partition(
        self,
        kind: PartitionKind = PartitionKind.ROOM,
        floor: float | None = 0.0,
        label: str = "",
        footprint: Rect | None = None,
        fixed_traversal: float | None = None,
    ) -> int:
        """Add a partition and return its id."""
        pid = len(self._partitions)
        self._partitions.append(
            Partition(
                partition_id=pid,
                kind=kind,
                floor=floor,
                door_ids=[],
                footprint=footprint,
                fixed_traversal=fixed_traversal,
                label=label or f"{kind.value}-{pid}",
            )
        )
        return pid

    def add_room(self, floor: float = 0.0, label: str = "", footprint: Rect | None = None) -> int:
        return self.add_partition(PartitionKind.ROOM, floor, label, footprint)

    def add_hallway(self, floor: float = 0.0, label: str = "", footprint: Rect | None = None) -> int:
        return self.add_partition(PartitionKind.HALLWAY, floor, label, footprint)

    def add_outdoor(self, label: str = "outdoor") -> int:
        """Add an outdoor pseudo-partition connecting building entrances.

        The Clayton dataset in the paper adds D2D edges between entry/exit
        doors of different buildings weighted by outdoor distance; we model
        the outdoor space as a partition so those edges arise uniformly.
        """
        return self.add_partition(PartitionKind.OUTDOOR, floor=0.0, label=label)

    # ------------------------------------------------------------------
    # Doors
    # ------------------------------------------------------------------
    def add_door(
        self,
        partition_a: int,
        partition_b: int,
        x: float,
        y: float,
        floor: float | None = None,
        label: str = "",
    ) -> int:
        """Add a door between two partitions; returns the door id.

        The door's floor defaults to partition_a's floor (for doors between
        floors — e.g. a staircase exit — pass ``floor`` explicitly).
        """
        if partition_a == partition_b:
            raise VenueError("a door must connect two distinct partitions")
        for pid in (partition_a, partition_b):
            if not 0 <= pid < len(self._partitions):
                raise VenueError(f"unknown partition {pid}")
        if floor is None:
            floor = self._partitions[partition_a].floor or 0.0
        did = len(self._doors)
        self._doors.append(
            Door(door_id=did, position=Point(x, y, floor), label=label or f"door-{did}")
        )
        self._partitions[partition_a].door_ids.append(did)
        self._partitions[partition_b].door_ids.append(did)
        return did

    def add_exterior_door(
        self, partition: int, x: float, y: float, floor: float | None = None, label: str = ""
    ) -> int:
        """Add a door connecting a partition to the outside world."""
        if not 0 <= partition < len(self._partitions):
            raise VenueError(f"unknown partition {partition}")
        if floor is None:
            floor = self._partitions[partition].floor or 0.0
        did = len(self._doors)
        self._doors.append(
            Door(door_id=did, position=Point(x, y, floor), label=label or f"exit-{did}")
        )
        self._partitions[partition].door_ids.append(did)
        return did

    # ------------------------------------------------------------------
    # Vertical connectors
    # ------------------------------------------------------------------
    def add_staircase(
        self,
        partition_lower: int,
        partition_upper: int,
        x: float,
        y: float,
        floor_lower: float,
        floor_upper: float,
        length_multiplier: float = 1.0,
        label: str = "",
    ) -> int:
        """Connect two partitions on consecutive floors with a staircase.

        Per §2 of the paper, a staircase is a general partition with two
        doors at its connecting floors. ``length_multiplier`` inflates the
        straight-line distance to account for the stair run; the default of
        1.0 keeps the metric Euclidean-consistent (required by the superior
        door optimization, see DESIGN.md §4).

        Returns the staircase partition id.
        """
        stair = self.add_partition(
            PartitionKind.STAIRCASE,
            floor=None,
            label=label or f"stairs-{floor_lower}-{floor_upper}",
        )
        self.add_door(stair, partition_lower, x, y, floor=floor_lower)
        self.add_door(stair, partition_upper, x, y, floor=floor_upper)
        if length_multiplier != 1.0:
            height = abs(floor_upper - floor_lower) * self.floor_height
            self._partitions[stair].fixed_traversal = height * length_multiplier
        return stair

    def add_lift(
        self,
        partitions_per_floor: list[int],
        x: float,
        y: float,
        floors: list[float],
        travel_weight: float | None = None,
        label: str = "",
    ) -> list[int]:
        """Connect ``n`` floors with a lift.

        Per §2, a lift connecting n floors is divided into n-1 general
        partitions, each connecting two consecutive floors. ``travel_weight``
        sets a fixed traversal per hop (e.g. 0 for walking distance or a
        travel time); ``None`` uses the Euclidean vertical distance.

        Returns the list of created lift partition ids.
        """
        if len(partitions_per_floor) != len(floors) or len(floors) < 2:
            raise VenueError("lift needs one partition per floor and >= 2 floors")
        created = []
        for i in range(len(floors) - 1):
            seg = self.add_partition(
                PartitionKind.LIFT,
                floor=None,
                label=f"{label or 'lift'}-{floors[i]}-{floors[i + 1]}",
                fixed_traversal=travel_weight,
            )
            self.add_door(seg, partitions_per_floor[i], x, y, floor=floors[i])
            self.add_door(seg, partitions_per_floor[i + 1], x, y, floor=floors[i + 1])
            created.append(seg)
        return created

    # ------------------------------------------------------------------
    def build(self) -> IndoorSpace:
        """Validate and return the finished venue."""
        return IndoorSpace(
            partitions=self._partitions,
            doors=self._doors,
            floor_height=self.floor_height,
            name=self.name,
        )
