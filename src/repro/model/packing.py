"""Packed numeric arrays for JSON documents (snapshot payloads).

Index snapshots are mostly numbers — distance matrices, per-door
materialized tables, edge weights. Emitting them as JSON number tokens
makes payloads big and parsing slow (the JSON float parser is the
bottleneck of a snapshot load). These helpers pack homogeneous numeric
sequences as base64-encoded **little-endian** binary inside an ordinary
JSON string:

* ``pack_f64`` / ``unpack_f64`` — IEEE-754 doubles; every float (and
  ``inf``) round-trips bit-exactly,
* ``pack_i64`` / ``unpack_i64`` — signed 64-bit integers.

The encoding is deterministic (same values -> same string, any
platform), which the snapshot layer's reproducible-hash guarantee
relies on, and ~8x denser to parse than number tokens.
"""

from __future__ import annotations

import base64
import sys
from array import array

_SWAP = sys.byteorder == "big"


def _pack(typecode: str, values) -> str:
    a = array(typecode, values)
    if a.itemsize != 8:  # pragma: no cover - no current platform hits this
        raise OverflowError(f"array({typecode!r}) is not 8 bytes on this platform")
    if _SWAP:  # pragma: no cover - little-endian on all supported platforms
        a.byteswap()
    return base64.b64encode(a.tobytes()).decode("ascii")


def _unpack(typecode: str, data: str) -> list:
    a = array(typecode)
    a.frombytes(base64.b64decode(data))
    if _SWAP:  # pragma: no cover
        a.byteswap()
    return a.tolist()


def pack_f64(values) -> str:
    """Base64 of the values as little-endian float64 (bit-exact)."""
    return _pack("d", values)


def unpack_f64(data: str) -> list[float]:
    return _unpack("d", data)


def pack_i64(values) -> str:
    """Base64 of the values as little-endian signed int64."""
    return _pack("q", values)


def unpack_i64(data: str) -> list[int]:
    return _unpack("q", data)


def pack_raw(data: bytes) -> str:
    """Base64 of raw bytes the caller already laid out deterministically
    (e.g. a numpy array exported with an explicit ``'<f8'`` dtype)."""
    return base64.b64encode(data).decode("ascii")


def unpack_raw(data: str) -> bytes:
    return base64.b64decode(data)
