"""Packed numeric arrays for JSON documents (snapshot payloads).

Index snapshots are mostly numbers — distance matrices, per-door
materialized tables, edge weights. Emitting them as JSON number tokens
makes payloads big and parsing slow (the JSON float parser is the
bottleneck of a snapshot load). These helpers pack homogeneous numeric
sequences as **little-endian** binary:

* ``pack_f64`` / ``unpack_f64`` — IEEE-754 doubles; every float (and
  ``inf``/``nan``) round-trips bit-exactly,
* ``pack_i64`` / ``unpack_i64`` — signed 64-bit integers,
* ``pack_raw`` / ``unpack_raw`` — raw bytes the caller already laid out
  deterministically (e.g. a numpy array exported with an explicit
  ``'<f8'`` dtype).

By default the binary is base64-encoded inline into an ordinary JSON
string. Inside an active :func:`binary_sink` context the bytes are
instead appended to an out-of-band **binary section** (8-byte aligned
per value array) and the JSON string becomes a compact
``"@bin:<tag>:<offset>:<count>"`` reference. The matching
:func:`binary_reader` context resolves those references on unpack —
either into plain python lists/bytes, or (``arrays=True``) into
zero-copy numpy views of the underlying buffer, which is how
``load_snapshot(mmap=True)`` serves matrices straight off the page
cache. Sink/reader state is thread-local, so concurrent packers (e.g.
serving threads encoding wire frames while another thread saves a
snapshot) never interleave.

The encoding is deterministic (same values -> same string + same
section bytes, any platform), which the snapshot layer's
reproducible-hash guarantee relies on, and far denser to parse than
number tokens.
"""

from __future__ import annotations

import base64
import sys
import threading
from array import array
from contextlib import contextmanager

_SWAP = sys.byteorder == "big"
_ACTIVE = threading.local()
_BIN_PREFIX = "@bin:"


def _le_bytes(typecode: str, values) -> tuple[bytes, int]:
    a = array(typecode, values)
    if a.itemsize != 8:  # pragma: no cover - no current platform hits this
        raise OverflowError(f"array({typecode!r}) is not 8 bytes on this platform")
    if _SWAP:  # pragma: no cover - little-endian on all supported platforms
        a.byteswap()
    return a.tobytes(), len(a)


def _pack(typecode: str, values) -> str:
    raw, _ = _le_bytes(typecode, values)
    return base64.b64encode(raw).decode("ascii")


def _unpack(typecode: str, data: str) -> list:
    a = array(typecode)
    a.frombytes(base64.b64decode(data))
    if _SWAP:  # pragma: no cover
        a.byteswap()
    return a.tolist()


# ----------------------------------------------------------------------
# Out-of-band binary section
# ----------------------------------------------------------------------
class BinarySink:
    """Accumulates packed arrays into one contiguous binary section.

    Every appended array is padded to an 8-byte-aligned offset so an
    aligned mapping of the section yields aligned numpy views.
    """

    __slots__ = ("_chunks", "_size")

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    def append(self, tag: str, raw: bytes, count: int) -> str:
        pad = (-self._size) % 8
        if pad:
            self._chunks.append(b"\x00" * pad)
            self._size += pad
        offset = self._size
        self._chunks.append(raw)
        self._size += len(raw)
        return f"{_BIN_PREFIX}{tag}:{offset}:{count}"

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class BinaryReader:
    """Resolves ``@bin:`` references against a binary section buffer.

    ``buffer`` may be ``bytes``, a ``memoryview`` or an ``mmap``. With
    ``arrays=True`` numeric references resolve to zero-copy (read-only
    when the buffer is) numpy views instead of python lists.
    """

    __slots__ = ("_buf", "arrays")

    def __init__(self, buffer, arrays: bool = False) -> None:
        self._buf = memoryview(buffer)
        self.arrays = arrays

    def _slice(self, offset: int, nbytes: int):
        if offset < 0 or nbytes < 0 or offset + nbytes > len(self._buf):
            raise ValueError(
                f"binary reference [{offset}:{offset + nbytes}] outside "
                f"{len(self._buf)}-byte binary section"
            )
        return self._buf[offset : offset + nbytes]

    def numeric(self, typecode: str, offset: int, count: int):
        chunk = self._slice(offset, count * 8)
        if self.arrays:
            import numpy as np

            return np.frombuffer(chunk, dtype="<f8" if typecode == "d" else "<i8")
        a = array(typecode)
        a.frombytes(bytes(chunk))
        if _SWAP:  # pragma: no cover
            a.byteswap()
        return a.tolist()

    def raw(self, offset: int, count: int):
        chunk = self._slice(offset, count)
        return chunk if self.arrays else bytes(chunk)


@contextmanager
def binary_sink(sink: BinarySink):
    """Divert ``pack_*`` calls on this thread into ``sink``."""
    prev = getattr(_ACTIVE, "sink", None)
    _ACTIVE.sink = sink
    try:
        yield sink
    finally:
        _ACTIVE.sink = prev


@contextmanager
def binary_reader(reader: BinaryReader | None):
    """Resolve ``@bin:`` references on this thread via ``reader``.

    ``None`` is accepted (and is a no-op) so callers can use one code
    path for payloads with and without a binary section.
    """
    prev = getattr(_ACTIVE, "reader", None)
    _ACTIVE.reader = reader
    try:
        yield reader
    finally:
        _ACTIVE.reader = prev


def _resolve_ref(data: str, expect_tag: str):
    reader = getattr(_ACTIVE, "reader", None)
    if reader is None:
        raise ValueError(
            f"packed reference {data!r} outside an active binary_reader context"
        )
    try:
        _, tag, offset, count = data.split(":")
        offset = int(offset)
        count = int(count)
    except ValueError:
        raise ValueError(f"malformed packed reference {data!r}") from None
    if tag != expect_tag:
        raise ValueError(f"packed reference {data!r}: expected tag {expect_tag!r}")
    return reader, offset, count


# ----------------------------------------------------------------------
# Public pack/unpack API
# ----------------------------------------------------------------------
def pack_f64(values) -> str:
    """The values as little-endian float64 (bit-exact): base64 inline,
    or a section reference inside :func:`binary_sink`."""
    sink = getattr(_ACTIVE, "sink", None)
    if sink is None:
        return _pack("d", values)
    raw, count = _le_bytes("d", values)
    return sink.append("d", raw, count)


def unpack_f64(data: str):
    """Inverse of :func:`pack_f64` — a list, or a numpy view for a
    section reference under ``binary_reader(..., arrays=True)``."""
    if data.startswith(_BIN_PREFIX):
        reader, offset, count = _resolve_ref(data, "d")
        return reader.numeric("d", offset, count)
    return _unpack("d", data)


def pack_i64(values) -> str:
    """The values as little-endian signed int64: base64 inline, or a
    section reference inside :func:`binary_sink`."""
    sink = getattr(_ACTIVE, "sink", None)
    if sink is None:
        return _pack("q", values)
    raw, count = _le_bytes("q", values)
    return sink.append("q", raw, count)


def unpack_i64(data: str):
    """Inverse of :func:`pack_i64` (see :func:`unpack_f64`)."""
    if data.startswith(_BIN_PREFIX):
        reader, offset, count = _resolve_ref(data, "q")
        return reader.numeric("q", offset, count)
    return _unpack("q", data)


def pack_raw(data: bytes) -> str:
    """Raw bytes the caller already laid out deterministically
    (e.g. a numpy array exported with an explicit ``'<f8'`` dtype):
    base64 inline, or a section reference inside :func:`binary_sink`."""
    sink = getattr(_ACTIVE, "sink", None)
    if sink is None:
        return base64.b64encode(data).decode("ascii")
    return sink.append("raw", bytes(data), len(data))


def unpack_raw(data: str):
    """Inverse of :func:`pack_raw` — bytes, or a zero-copy memoryview
    for a section reference under ``binary_reader(..., arrays=True)``."""
    if data.startswith(_BIN_PREFIX):
        reader, offset, count = _resolve_ref(data, "raw")
        return reader.raw(offset, count)
    return base64.b64decode(data)
