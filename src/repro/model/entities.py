"""Indoor entities: doors, partitions and their paper-defined categories.

Terminology follows §2 of the paper:

* A partition with exactly one door is a **no-through** partition (no
  shortest path can pass through it).
* A partition with more than ``delta`` doors is a **hallway** partition
  (δ is a small system parameter; the paper uses δ = 4).
* Everything else is a **general** partition. Staircases / escalators are
  general partitions with two doors on their connecting floors; a lift
  spanning n floors is modelled as n-1 general partitions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .geometry import Point

#: Paper default for the hallway threshold δ (§2: "we choose δ = 4").
DEFAULT_DELTA = 4


class PartitionKind(str, enum.Enum):
    """Physical flavour of a partition (tagging only; semantics derive
    from the door count via :class:`PartitionCategory`)."""

    ROOM = "room"
    HALLWAY = "hallway"
    STAIRCASE = "staircase"
    LIFT = "lift"
    ESCALATOR = "escalator"
    OUTDOOR = "outdoor"


class PartitionCategory(str, enum.Enum):
    """Paper §2 categories derived from the number of doors and δ."""

    NO_THROUGH = "no-through"
    GENERAL = "general"
    HALLWAY = "hallway"


@dataclass(slots=True)
class Door:
    """A door connecting one or two partitions.

    A door with a single adjacent partition is an *exterior* door: it
    connects the venue to the outside world and therefore counts as an
    access door of every tree node containing its partition (this is how
    the paper's running example obtains ``AD(N7) = {d1, d7, d20}``).

    Attributes:
        door_id: dense integer id (index into ``IndoorSpace.doors``).
        position: coordinates of the door.
        label: optional human-readable name.
    """

    door_id: int
    position: Point
    label: str = ""


@dataclass(slots=True)
class Partition:
    """An indoor partition (room, hallway, staircase, lift, outdoor area).

    Attributes:
        partition_id: dense integer id (index into
            ``IndoorSpace.partitions``).
        kind: physical flavour tag.
        floor: floor number for single-floor partitions; ``None`` for
            partitions spanning several floors (staircases, lifts).
        door_ids: ids of the doors attached to this partition.
        footprint: optional bounding rectangle (used for sampling points).
        fixed_traversal: if not ``None``, the distance between *any* two
            doors of this partition is this constant instead of the
            Euclidean distance — used for lifts (e.g. travel time) per §2
            ("set to zero for a lift/escalator ... or to a non-zero value
            if the distance is the travel time").
        label: optional human-readable name.
    """

    partition_id: int
    kind: PartitionKind = PartitionKind.ROOM
    floor: float | None = 0.0
    door_ids: list[int] = field(default_factory=list)
    footprint: object | None = None  # Optional[Rect]; kept loose for JSON IO
    fixed_traversal: float | None = None
    label: str = ""

    def category(self, delta: int = DEFAULT_DELTA) -> PartitionCategory:
        """Classify per §2 of the paper given the hallway threshold δ."""
        n = len(self.door_ids)
        if n <= 1:
            return PartitionCategory.NO_THROUGH
        if n > delta:
            return PartitionCategory.HALLWAY
        return PartitionCategory.GENERAL


@dataclass(frozen=True, slots=True)
class IndoorPoint:
    """An arbitrary location inside a partition — query source/target.

    The paper's queries take arbitrary indoor points s and t; a point is
    identified by its containing partition plus planar coordinates. The
    floor is implied by the partition.
    """

    partition_id: int
    x: float
    y: float

    def position(self, floor: float) -> Point:
        """Materialize as a :class:`Point` on the given floor."""
        return Point(self.x, self.y, floor)
