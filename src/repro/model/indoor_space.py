"""The :class:`IndoorSpace` venue container.

An :class:`IndoorSpace` owns the doors and partitions of a venue and
provides the distance primitives every index in this library builds on:

* intra-partition door-to-door distances (Euclidean or a fixed traversal
  weight for lifts/escalators),
* point-to-door distances for arbitrary query points,
* partition adjacency and paper §2 categories.

The container is immutable after :meth:`validate`; indexes hold references
to it rather than copying.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import QueryError, VenueError
from .entities import (
    DEFAULT_DELTA,
    Door,
    IndoorPoint,
    Partition,
    PartitionCategory,
    PartitionKind,
)
from .geometry import DEFAULT_FLOOR_HEIGHT, Point


@dataclass(slots=True)
class VenueStats:
    """Summary statistics of a venue (Table 2 of the paper)."""

    name: str
    num_doors: int
    num_partitions: int
    num_rooms: int
    num_d2d_edges: int
    num_floors: int
    max_partition_degree: int

    def row(self) -> tuple:
        return (
            self.name,
            self.num_doors,
            self.num_rooms,
            self.num_d2d_edges,
        )


class IndoorSpace:
    """An indoor venue: partitions connected by doors.

    Args:
        partitions: dense list of :class:`Partition` (ids must equal the
            list index).
        doors: dense list of :class:`Door` (ids must equal the list index).
        floor_height: vertical metres per floor, used by the Euclidean
            metric.
        name: optional venue name (reported in stats and benchmarks).
    """

    def __init__(
        self,
        partitions: list[Partition],
        doors: list[Door],
        floor_height: float = DEFAULT_FLOOR_HEIGHT,
        name: str = "venue",
    ) -> None:
        self.partitions = partitions
        self.doors = doors
        self.floor_height = floor_height
        self.name = name
        # door id -> tuple of adjacent partition ids (length 1 or 2)
        self.door_partitions: list[tuple[int, ...]] = []
        self._validated = False
        self.validate()

    # ------------------------------------------------------------------
    # Validation & derived structure
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants and build the door->partition map.

        Raises:
            VenueError: on dangling references, doors attached to more than
                two partitions, doorless partitions, or id mismatches.
        """
        for idx, part in enumerate(self.partitions):
            if part.partition_id != idx:
                raise VenueError(
                    f"partition id {part.partition_id} does not match index {idx}"
                )
            if not part.door_ids:
                raise VenueError(f"partition {idx} ({part.label!r}) has no doors")
            for did in part.door_ids:
                if not 0 <= did < len(self.doors):
                    raise VenueError(f"partition {idx} references unknown door {did}")
            if len(set(part.door_ids)) != len(part.door_ids):
                raise VenueError(f"partition {idx} lists door(s) twice")

        owners: list[list[int]] = [[] for _ in self.doors]
        for part in self.partitions:
            for did in part.door_ids:
                owners[did].append(part.partition_id)

        for idx, door in enumerate(self.doors):
            if door.door_id != idx:
                raise VenueError(f"door id {door.door_id} does not match index {idx}")
            if not owners[idx]:
                raise VenueError(f"door {idx} ({door.label!r}) belongs to no partition")
            if len(owners[idx]) > 2:
                raise VenueError(
                    f"door {idx} belongs to {len(owners[idx])} partitions; at most 2 allowed"
                )

        self.door_partitions = [tuple(o) for o in owners]
        self._validated = True

    # ------------------------------------------------------------------
    # Topology accessors
    # ------------------------------------------------------------------
    @property
    def num_doors(self) -> int:
        return len(self.doors)

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def partitions_of_door(self, door_id: int) -> tuple[int, ...]:
        """The one or two partitions a door connects."""
        return self.door_partitions[door_id]

    def is_exterior_door(self, door_id: int) -> bool:
        """True if the door connects the venue to the outside world."""
        return len(self.door_partitions[door_id]) == 1

    def doors_of_partition(self, partition_id: int) -> list[int]:
        return self.partitions[partition_id].door_ids

    def adjacent_partitions(self, partition_id: int) -> dict[int, list[int]]:
        """Neighbouring partitions, mapped to the shared door ids.

        Two partitions are *adjacent* when they share at least one door
        (§2.1.2 step 1 of the paper).
        """
        result: dict[int, list[int]] = {}
        for did in self.partitions[partition_id].door_ids:
            for other in self.door_partitions[did]:
                if other != partition_id:
                    result.setdefault(other, []).append(did)
        return result

    def common_doors(self, pid_a: int, pid_b: int) -> list[int]:
        """Doors shared by two partitions."""
        doors_b = set(self.partitions[pid_b].door_ids)
        return [d for d in self.partitions[pid_a].door_ids if d in doors_b]

    def category(self, partition_id: int, delta: int = DEFAULT_DELTA) -> PartitionCategory:
        """Paper §2 category of the partition (no-through/general/hallway)."""
        return self.partitions[partition_id].category(delta)

    def hallway_ids(self, delta: int = DEFAULT_DELTA) -> list[int]:
        """All hallway partitions under threshold δ."""
        return [
            p.partition_id
            for p in self.partitions
            if p.category(delta) is PartitionCategory.HALLWAY
        ]

    # ------------------------------------------------------------------
    # Metric
    # ------------------------------------------------------------------
    def door_point(self, door_id: int) -> Point:
        return self.doors[door_id].position

    def partition_door_distance(self, partition_id: int, door_a: int, door_b: int) -> float:
        """Distance between two doors *through* the given partition.

        Lifts / escalators may override the metric with a fixed traversal
        weight (paper §2: walking distance vs. travel time).
        """
        if door_a == door_b:
            return 0.0
        part = self.partitions[partition_id]
        if part.fixed_traversal is not None:
            return part.fixed_traversal
        return self.doors[door_a].position.distance(
            self.doors[door_b].position, self.floor_height
        )

    def point_position(self, point: IndoorPoint) -> Point:
        """Materialize an :class:`IndoorPoint` with its partition's floor."""
        part = self.partitions[point.partition_id]
        floor = part.floor if part.floor is not None else 0.0
        return Point(point.x, point.y, floor)

    def point_to_door_distance(self, point: IndoorPoint, door_id: int) -> float:
        """Direct (intra-partition) distance from a point to one of the
        doors of its partition.

        Raises:
            QueryError: if the door does not belong to the point's
                partition — arbitrary points can only exit their partition
                through its own doors.
        """
        part = self.partitions[point.partition_id]
        if door_id not in part.door_ids:
            raise QueryError(
                f"door {door_id} is not a door of partition {point.partition_id}"
            )
        if part.fixed_traversal is not None:
            return part.fixed_traversal / 2.0
        return self.point_position(point).distance(
            self.doors[door_id].position, self.floor_height
        )

    def direct_point_distance(self, a: IndoorPoint, b: IndoorPoint) -> float:
        """Direct distance between two points in the *same* partition."""
        if a.partition_id != b.partition_id:
            raise QueryError("direct distance requires points in the same partition")
        return self.point_position(a).distance(self.point_position(b), self.floor_height)

    def validate_point(self, point: IndoorPoint) -> None:
        if not 0 <= point.partition_id < self.num_partitions:
            raise QueryError(f"unknown partition {point.partition_id}")

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> VenueStats:
        """Compute Table-2 style statistics for this venue.

        ``num_d2d_edges`` counts *directed* edges of the door-to-door
        graph (the convention Table 2 of the paper uses, which is why MC
        has 299 doors but 8,466 edges).
        """
        directed_edges = 0
        for part in self.partitions:
            k = len(part.door_ids)
            directed_edges += k * (k - 1)
        rooms = sum(
            1 for p in self.partitions if p.kind not in (PartitionKind.OUTDOOR,)
        )
        floors = {p.floor for p in self.partitions if p.floor is not None}
        max_deg = max(len(p.door_ids) for p in self.partitions) if self.partitions else 0
        return VenueStats(
            name=self.name,
            num_doors=self.num_doors,
            num_partitions=self.num_partitions,
            num_rooms=rooms,
            num_d2d_edges=directed_edges,
            num_floors=max(1, len(floors)),
            max_partition_degree=max_deg,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndoorSpace(name={self.name!r}, partitions={self.num_partitions}, "
            f"doors={self.num_doors})"
        )
