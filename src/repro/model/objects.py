"""Indoor objects (points of interest) for kNN and range queries.

The paper's §3.4 queries operate over a set of objects O embedded in the
venue (washrooms in the experiments; ATMs, charging kiosks etc. in the
motivation). Objects are plain indoor points with labels, grouped into an
:class:`ObjectSet`.

Object sets are **dynamic**: :meth:`ObjectSet.insert`,
:meth:`ObjectSet.delete` and :meth:`ObjectSet.move` mutate the set in
place — the paper's motivation for attaching objects to tree leaves is
precisely that such updates are cheap (§3.4). Object ids are stable for
the lifetime of the set: deletion leaves a tombstone instead of
re-indexing, so ids held by callers (query results, indexes, update
streams) never shift. Every mutation bumps :attr:`ObjectSet.version`,
which caches use to detect staleness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import QueryError
from .entities import IndoorPoint
from .indoor_space import IndoorSpace

#: Update-operation kinds understood by :meth:`ObjectSet.apply` (and by
#: ``ObjectIndex.apply`` / ``QueryEngine.update`` downstream).
UPDATE_KINDS = ("insert", "delete", "move")


@dataclass(frozen=True, slots=True)
class IndoorObject:
    """A point of interest inside a partition."""

    object_id: int
    location: IndoorPoint
    label: str = ""
    category: str = ""


@dataclass(frozen=True, slots=True)
class UpdateOp:
    """One object-set mutation, replayable against any object store.

    ``kind`` selects which fields matter: ``insert`` uses ``location``
    (plus optional ``label``/``category``; the new id is assigned by the
    receiving set), ``delete`` uses ``object_id``, and ``move`` uses
    ``object_id`` + ``location``.
    """

    kind: str
    object_id: int | None = None
    location: IndoorPoint | None = None
    label: str = ""
    category: str = ""


def apply_update(target, op: UpdateOp):
    """Validate an :class:`UpdateOp` and dispatch it to ``target``.

    ``target`` is any object store exposing ``insert(location, label,
    category)``, ``delete(object_id)`` and ``move(object_id,
    location)`` — :class:`ObjectSet` and ``ObjectIndex`` both route
    their ``apply`` through this helper so every store accepts exactly
    the same ops. Returns whatever the dispatched method returns.
    """
    if op.kind == "insert":
        if op.location is None:
            raise QueryError("insert op requires a location")
        return target.insert(op.location, op.label, op.category)
    if op.kind == "delete":
        if op.object_id is None:
            raise QueryError("delete op requires an object_id")
        return target.delete(op.object_id)
    if op.kind == "move":
        if op.object_id is None or op.location is None:
            raise QueryError("move op requires object_id and location")
        return target.move(op.object_id, op.location)
    raise QueryError(f"unknown update kind {op.kind!r}; expected {UPDATE_KINDS}")


@dataclass(slots=True)
class ObjectSet:
    """A collection of indoor objects, validated against a venue.

    Storage is a dense list indexed by object id; deleted slots hold
    ``None`` (tombstones). Iteration yields live objects only and
    ``len`` counts them; ``capacity`` is the total id space including
    tombstones.
    """

    objects: list[IndoorObject | None] = field(default_factory=list)
    #: bumped on every successful insert/delete/move — consumers (e.g.
    #: the query engine's kNN/range caches) compare versions to detect
    #: that cached object-dependent results went stale.
    version: int = 0

    def __len__(self) -> int:
        return sum(1 for o in self.objects if o is not None)

    def __iter__(self):
        return (o for o in self.objects if o is not None)

    def __getitem__(self, object_id: int) -> IndoorObject:
        obj = self.objects[object_id]
        if obj is None:
            raise QueryError(f"object {object_id} has been deleted")
        return obj

    @property
    def capacity(self) -> int:
        """Total id slots (live + tombstoned); ids are ``< capacity``."""
        return len(self.objects)

    def get(self, object_id: int) -> IndoorObject | None:
        """The object, or ``None`` when deleted or out of range."""
        if 0 <= object_id < len(self.objects):
            return self.objects[object_id]
        return None

    def live_ids(self) -> list[int]:
        return [o.object_id for o in self.objects if o is not None]

    def validate(self, space: IndoorSpace) -> None:
        """Check ids match their slots and partitions exist (tombstones
        are skipped)."""
        for i, obj in enumerate(self.objects):
            if obj is None:
                continue
            if obj.object_id != i:
                raise QueryError(f"object id {obj.object_id} does not match slot {i}")
            space.validate_point(obj.location)

    # ------------------------------------------------------------------
    # Dynamic updates (paper §3.4: objects move, appear and disappear)
    # ------------------------------------------------------------------
    def insert(self, location: IndoorPoint, label: str = "", category: str = "") -> int:
        """Add a new object; returns its (freshly assigned) id."""
        oid = len(self.objects)
        self.objects.append(IndoorObject(oid, location, label or f"object-{oid}", category))
        self.version += 1
        return oid

    def delete(self, object_id: int) -> IndoorObject:
        """Remove an object (tombstoning its id); returns the removed object."""
        obj = self[object_id]
        self.objects[object_id] = None
        self.version += 1
        return obj

    def move(self, object_id: int, location: IndoorPoint) -> IndoorObject:
        """Relocate an object; returns the *previous* state of the object."""
        old = self[object_id]
        self.objects[object_id] = IndoorObject(object_id, location, old.label, old.category)
        self.version += 1
        return old

    def apply(self, op: UpdateOp):
        """Apply one :class:`UpdateOp`; returns what the matching method
        returns (the new id for inserts, the removed/previous object for
        deletes/moves)."""
        return apply_update(self, op)

    # ------------------------------------------------------------------
    def by_category(self, category: str) -> "ObjectSet":
        """Filtered (re-indexed) subset — the paper's adaptability hook
        for keyword-style filtering (§1.3 'High adaptability')."""
        subset = [o for o in self if o.category == category]
        return ObjectSet(
            [
                IndoorObject(i, o.location, o.label, o.category)
                for i, o in enumerate(subset)
            ]
        )

    def partitions(self) -> set[int]:
        return {o.location.partition_id for o in self}


def make_object_set(
    space: IndoorSpace,
    locations: list[IndoorPoint],
    labels: list[str] | None = None,
    category: str = "",
) -> ObjectSet:
    """Build and validate an :class:`ObjectSet` from raw locations."""
    objs = ObjectSet(
        [
            IndoorObject(
                i,
                loc,
                (labels[i] if labels else f"object-{i}"),
                category,
            )
            for i, loc in enumerate(locations)
        ]
    )
    objs.validate(space)
    return objs
