"""Indoor objects (points of interest) for kNN and range queries.

The paper's §3.4 queries operate over a set of objects O embedded in the
venue (washrooms in the experiments; ATMs, charging kiosks etc. in the
motivation). Objects are plain indoor points with labels, grouped into an
:class:`ObjectSet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import QueryError
from .entities import IndoorPoint
from .indoor_space import IndoorSpace


@dataclass(frozen=True, slots=True)
class IndoorObject:
    """A point of interest inside a partition."""

    object_id: int
    location: IndoorPoint
    label: str = ""
    category: str = ""


@dataclass(slots=True)
class ObjectSet:
    """A collection of indoor objects, validated against a venue."""

    objects: list[IndoorObject] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self):
        return iter(self.objects)

    def __getitem__(self, idx: int) -> IndoorObject:
        return self.objects[idx]

    def validate(self, space: IndoorSpace) -> None:
        """Check ids are dense and partitions exist."""
        for i, obj in enumerate(self.objects):
            if obj.object_id != i:
                raise QueryError(f"object id {obj.object_id} does not match index {i}")
            space.validate_point(obj.location)

    def by_category(self, category: str) -> "ObjectSet":
        """Filtered (re-indexed) subset — the paper's adaptability hook
        for keyword-style filtering (§1.3 'High adaptability')."""
        subset = [o for o in self.objects if o.category == category]
        return ObjectSet(
            [
                IndoorObject(i, o.location, o.label, o.category)
                for i, o in enumerate(subset)
            ]
        )

    def partitions(self) -> set[int]:
        return {o.location.partition_id for o in self.objects}


def make_object_set(
    space: IndoorSpace,
    locations: list[IndoorPoint],
    labels: list[str] | None = None,
    category: str = "",
) -> ObjectSet:
    """Build and validate an :class:`ObjectSet` from raw locations."""
    objs = ObjectSet(
        [
            IndoorObject(
                i,
                loc,
                (labels[i] if labels else f"object-{i}"),
                category,
            )
            for i, loc in enumerate(locations)
        ]
    )
    objs.validate(space)
    return objs
