"""JSON serialization for venues and object sets.

Venues round-trip losslessly (ids, kinds, footprints, fixed traversal
weights). The format is a stable, versioned document so saved venues can
be shared between benchmark runs.

Dumps are **deterministic**: :func:`canonical_dumps` emits sorted keys,
compact separators and shortest-round-trip float repr, so serializing
the same venue twice yields byte-identical output. The snapshot layer
(:mod:`repro.storage`) relies on this for reproducible venue
fingerprints and snapshot hashes.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exceptions import VenueError
from .entities import Door, IndoorPoint, Partition, PartitionKind
from .geometry import Point, Rect
from .indoor_space import IndoorSpace
from .objects import IndoorObject, ObjectSet, UpdateOp

FORMAT_VERSION = 1


def canonical_dumps(doc) -> str:
    """Deterministic JSON encoding of a document.

    * keys sorted, separators compact — no environment-dependent layout,
    * floats use Python's shortest round-trip ``repr`` (exact to the
      bit, stable across runs and platforms),
    * non-finite floats are **rejected** (``ValueError``): JSON has no
      ``Infinity``/``NaN`` tokens, so emitting them would make the
      "canonical JSON" claim false and the output unreadable by strict
      parsers. Non-finite values (unreachable distance-table entries)
      belong in packed sections (:mod:`repro.model.packing`), which
      round-trip every float bit-exactly.

    Fingerprints and snapshot hashes are defined over this encoding.
    (``json.loads`` still *accepts* ``Infinity`` tokens, so documents
    written before this guard existed remain readable.)
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)


def space_to_dict(space: IndoorSpace) -> dict:
    """Serialize a venue to a JSON-compatible dictionary."""
    return {
        "version": FORMAT_VERSION,
        "name": space.name,
        "floor_height": space.floor_height,
        "doors": [
            {
                "id": d.door_id,
                "x": d.position.x,
                "y": d.position.y,
                "floor": d.position.floor,
                "label": d.label,
            }
            for d in space.doors
        ],
        "partitions": [
            {
                "id": p.partition_id,
                "kind": p.kind.value,
                "floor": p.floor,
                "doors": list(p.door_ids),
                "footprint": (
                    [p.footprint.x_min, p.footprint.y_min, p.footprint.x_max, p.footprint.y_max]
                    if isinstance(p.footprint, Rect)
                    else None
                ),
                "fixed_traversal": p.fixed_traversal,
                "label": p.label,
            }
            for p in space.partitions
        ],
    }


def space_from_dict(data: dict) -> IndoorSpace:
    """Deserialize a venue; raises :class:`VenueError` on bad documents."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise VenueError(f"unsupported venue format version: {version!r}")
    doors = [
        Door(
            door_id=d["id"],
            position=Point(d["x"], d["y"], d.get("floor", 0.0)),
            label=d.get("label", ""),
        )
        for d in data["doors"]
    ]
    partitions = []
    for p in data["partitions"]:
        fp = p.get("footprint")
        partitions.append(
            Partition(
                partition_id=p["id"],
                kind=PartitionKind(p.get("kind", "room")),
                floor=p.get("floor"),
                door_ids=list(p["doors"]),
                footprint=Rect(*fp) if fp else None,
                fixed_traversal=p.get("fixed_traversal"),
                label=p.get("label", ""),
            )
        )
    return IndoorSpace(
        partitions=partitions,
        doors=doors,
        floor_height=data.get("floor_height", 4.0),
        name=data.get("name", "venue"),
    )


def save_space(space: IndoorSpace, path: str | Path) -> None:
    Path(path).write_text(canonical_dumps(space_to_dict(space)))


def load_space(path: str | Path) -> IndoorSpace:
    return space_from_dict(json.loads(Path(path).read_text()))


def objects_to_dict(objects: ObjectSet) -> dict:
    return {
        "version": FORMAT_VERSION,
        # id-space size including trailing tombstones, so a round-trip
        # never re-assigns a deleted id
        "capacity": objects.capacity,
        # mutation counter: consumers (engine caches, snapshots) compare
        # it to detect staleness, so a round-trip must not reset it
        "set_version": objects.version,
        "objects": [
            {
                "id": o.object_id,
                "partition": o.location.partition_id,
                "x": o.location.x,
                "y": o.location.y,
                "label": o.label,
                "category": o.category,
            }
            for o in objects
        ],
    }


def objects_from_dict(data: dict) -> ObjectSet:
    if data.get("version") != FORMAT_VERSION:
        raise VenueError(f"unsupported object format version: {data.get('version')!r}")
    # Ids are slot positions; sets serialized after deletions have sparse
    # ids, so rebuild with tombstones to keep every id stable. The stored
    # capacity also preserves *trailing* tombstones — without it a
    # reloaded set would re-assign the highest deleted ids.
    capacity = data.get(
        "capacity", max((o["id"] for o in data["objects"]), default=-1) + 1
    )
    slots: list[IndoorObject | None] = [None] * capacity
    for o in data["objects"]:
        slots[o["id"]] = IndoorObject(
            object_id=o["id"],
            location=IndoorPoint(o["partition"], o["x"], o["y"]),
            label=o.get("label", ""),
            category=o.get("category", ""),
        )
    return ObjectSet(slots, version=data.get("set_version", 0))


def save_objects(objects: ObjectSet, path: str | Path) -> None:
    Path(path).write_text(canonical_dumps(objects_to_dict(objects)))


def load_objects(path: str | Path) -> ObjectSet:
    return objects_from_dict(json.loads(Path(path).read_text()))


def op_to_dict(op: UpdateOp | None) -> dict | None:
    """JSON document for one :class:`UpdateOp` (``None`` passes through).

    The shared normal form for update operations at rest and on the
    wire: the serving protocol frames ops this way, and the per-venue
    operation log (:mod:`repro.storage.oplog`) persists the same
    document — so a logged op replays bit-exactly on any replica.
    """
    if op is None:
        return None
    location = op.location
    return {
        "kind": op.kind,
        "object_id": op.object_id,
        "location": None if location is None else
            [location.partition_id, location.x, location.y],
        "label": op.label,
        "category": op.category,
    }


def op_from_dict(doc: dict | None) -> UpdateOp | None:
    if doc is None:
        return None
    location = doc["location"]
    return UpdateOp(
        kind=doc["kind"],
        object_id=doc["object_id"],
        location=None if location is None else
            IndoorPoint(int(location[0]), float(location[1]), float(location[2])),
        label=doc.get("label", ""),
        category=doc.get("category", ""),
    )
