"""Door-to-door (D2D) graph construction [Yang et al., reference 25].

In a D2D graph every door is a vertex, and a weighted edge connects two
doors iff they are attached to the same indoor partition; the weight is
the indoor distance between the doors through that partition (§1.2.2 of
the paper). Hallways with many doors therefore become large cliques —
this is exactly the property that makes indoor graphs much denser than
road networks (average out-degree up to 400 vs 2-4) and motivates the
paper's indexes.
"""

from __future__ import annotations

from ..exceptions import DisconnectedVenueError
from ..graph.adjacency import Graph
from .indoor_space import IndoorSpace


def build_d2d_graph(space: IndoorSpace, require_connected: bool = True) -> Graph:
    """Build the D2D graph of a venue.

    Args:
        space: the venue.
        require_connected: raise :class:`DisconnectedVenueError` when the
            resulting graph is not connected (the paper's algorithms
            assume mutual reachability of all doors).

    Returns:
        A :class:`~repro.graph.adjacency.Graph` whose vertex ids are the
        venue's door ids.
    """
    graph = Graph(space.num_doors)
    for part in space.partitions:
        doors = part.door_ids
        for i in range(len(doors)):
            di = doors[i]
            for j in range(i + 1, len(doors)):
                dj = doors[j]
                graph.add_edge(
                    di, dj, space.partition_door_distance(part.partition_id, di, dj)
                )
    if require_connected and space.num_doors > 0 and not graph.is_connected():
        components = graph.connected_components()
        raise DisconnectedVenueError(
            f"D2D graph of {space.name!r} has {len(components)} components; "
            "the indexes require a connected venue"
        )
    return graph


def average_out_degree(graph: Graph) -> float:
    """Average directed out-degree of the D2D graph (paper §1.2.1)."""
    if graph.num_vertices == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_vertices
