"""Accessibility-base (AB) graph [Lu et al., reference 19].

In an AB graph each indoor partition is a vertex and each door is a
labelled edge between the two partitions it connects (§1.2.2, Fig. 2(b)).
The AB graph captures connectivity but not indoor distances; the library
uses it for venue analysis, the DistAw baseline's accessibility
reasoning, and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .indoor_space import IndoorSpace


@dataclass(slots=True)
class ABGraph:
    """Partition-level connectivity graph with door-labelled edges."""

    num_partitions: int
    #: adjacency: partition -> list of (neighbour partition, door id).
    #: Parallel edges are kept (two doors between the same pair of
    #: partitions produce two labelled edges, as in the paper's Fig 2(b)).
    adjacency: list[list[tuple[int, int]]] = field(default_factory=list)
    #: doors connecting a partition to the outside world
    exterior_doors: list[list[int]] = field(default_factory=list)

    def neighbors(self, partition_id: int) -> list[tuple[int, int]]:
        return self.adjacency[partition_id]

    def edge_count(self) -> int:
        """Number of door-edges (each interior door counted once)."""
        return sum(len(a) for a in self.adjacency) // 2

    def degree(self, partition_id: int) -> int:
        return len(self.adjacency[partition_id])


def build_ab_graph(space: IndoorSpace) -> ABGraph:
    """Build the AB graph of a venue."""
    adjacency: list[list[tuple[int, int]]] = [[] for _ in range(space.num_partitions)]
    exterior: list[list[int]] = [[] for _ in range(space.num_partitions)]
    for did, owners in enumerate(space.door_partitions):
        if len(owners) == 2:
            a, b = owners
            adjacency[a].append((b, did))
            adjacency[b].append((a, did))
        else:
            exterior[owners[0]].append(did)
    return ABGraph(
        num_partitions=space.num_partitions,
        adjacency=adjacency,
        exterior_doors=exterior,
    )
