"""Process-local metrics registry: counters, gauges, latency histograms.

The measurement substrate of the serving stack. One
:class:`MetricsRegistry` lives in each process (the cluster frontend
has one, every shard worker has one) and hands out three metric kinds:

* :class:`Counter` — a monotone total (``inc``),
* :class:`Gauge` — a point-in-time value with a merge policy
  (``last``/``sum``/``max``/``mean``) so per-process gauges combine
  meaningfully across shards,
* :class:`Histogram` — fixed log-spaced buckets
  (:data:`LATENCY_BUCKETS`: 1µs → 10s in 1/2.5/5 steps) plus exact
  ``count``/``sum``/``min``/``max``; p50/p95/p99 are estimated by
  linear interpolation inside the owning bucket, clamped to the
  observed ``[min, max]`` (:func:`quantile`).

Metrics are keyed by ``name`` plus sorted labels, so
``histogram("engine_query_seconds", kind="knn")`` names the same
series everywhere. All mutation goes through one registry lock —
``inc``/``observe`` are a lock acquire plus a couple of adds, cheap
enough for per-request instrumentation (CI-asserted ≤10% overhead by
``benchmarks/bench_observability.py``).

**Mergeable across processes** is the design center: :meth:`snapshot`
returns a plain JSON-safe document (no ``inf``/``nan`` — empty
histograms report ``min``/``max`` as ``None`` so snapshots survive the
canonical-JSON wire codec), and :func:`merge_snapshots` folds any
number of snapshots into one — counters and histogram buckets add,
gauges combine per their ``agg`` policy. ``ClusterFrontend.metrics()``
merges its own snapshot with one fetched from every live shard over
the ``metrics`` protocol request.

Collectors bridge the existing stats dataclasses into the registry:
:meth:`register_collector` holds a *weak* reference to an owner (an
engine, a router) and a function that converts its counters into
snapshot fragments (:func:`counter_entry`/:func:`gauge_entry`); dead
owners are pruned, so a bounded engine pool never leaks registry
entries. Collector functions run *outside* the registry lock — they
may take their owner's own locks freely.

:func:`render_prometheus` renders a snapshot in the Prometheus text
exposition format (cumulative ``_bucket{le=...}`` series), which is
what ``python -m repro.serving serve --metrics-port`` serves over
HTTP. Everything here is stdlib-only, so every layer above (engine,
storage, serving) can depend on it.
"""

from __future__ import annotations

import re
import threading
import weakref
from bisect import bisect_left
from contextlib import contextmanager
from time import perf_counter

__all__ = [
    "Counter",
    "Gauge",
    "GAUGE_AGGS",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "counter_entry",
    "gauge_entry",
    "merge_snapshots",
    "metric_key",
    "quantile",
    "render_prometheus",
    "summarize",
]


def _latency_bounds() -> tuple[float, ...]:
    bounds = [m * 10.0 ** e for e in range(-6, 1) for m in (1.0, 2.5, 5.0)]
    bounds.append(10.0)
    return tuple(bounds)


#: default histogram bucket upper bounds (seconds): log-spaced
#: 1µs → 10s in 1/2.5/5-per-decade steps (22 buckets + overflow) —
#: wide enough for a cache-hit distance lookup and a cold warm start
#: in the same series.
LATENCY_BUCKETS = _latency_bounds()

#: gauge merge policies (see :class:`Gauge`)
GAUGE_AGGS = ("last", "sum", "max", "mean")

#: quantiles :func:`summarize` annotates histograms with
SUMMARY_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def metric_key(name: str, labels: dict) -> str:
    """The snapshot key of one series: ``name|k=v|...`` with labels
    sorted, so the same series gets the same key in every process."""
    if not labels:
        return name
    return name + "".join(f"|{k}={labels[k]}" for k in sorted(labels))


def _norm_labels(labels: dict) -> dict:
    return {str(k): str(v) for k, v in labels.items()}


class Counter:
    """A monotone total. Mutate only via :meth:`inc`."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict, lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def _doc(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self.value}


class Gauge:
    """A point-in-time value plus the policy merges combine it under.

    ``agg`` decides what the value of the series means across
    processes: ``"last"`` (an arbitrary representative), ``"sum"``
    (per-process quantities — pooled engines, queue depths), ``"max"``
    (high-water marks), or ``"mean"`` (ratios — merged as a weighted
    mean over ``n``, the sample weight passed to :meth:`set`).
    """

    __slots__ = ("name", "labels", "agg", "value", "n", "_lock")

    def __init__(self, name: str, labels: dict, agg: str,
                 lock: threading.Lock) -> None:
        if agg not in GAUGE_AGGS:
            raise ValueError(
                f"unknown gauge agg {agg!r}; expected one of {GAUGE_AGGS}")
        self.name = name
        self.labels = labels
        self.agg = agg
        self.value: float | None = None
        self.n = 0
        self._lock = lock

    def set(self, value: float, weight: int = 1) -> None:
        with self._lock:
            self.value = float(value)
            self.n = int(weight)

    def _doc(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self.value, "agg": self.agg, "n": self.n}


class Histogram:
    """Fixed-bucket latency histogram with exact count/sum/min/max.

    ``counts[i]`` counts observations ``v <= bounds[i]`` (and above
    ``bounds[i-1]``); the final slot is the overflow bucket. Buckets
    never change after creation, which is what makes histograms from
    different processes mergeable bucket-wise.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum",
                 "min", "max", "_lock")

    def __init__(self, name: str, labels: dict,
                 bounds: tuple[float, ...], lock: threading.Lock) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted, non-empty sequence")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @contextmanager
    def time(self):
        """Observe the wall-clock duration of a ``with`` block."""
        start = perf_counter()
        try:
            yield self
        finally:
            self.observe(perf_counter() - start)

    def _doc(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


def counter_entry(name: str, value: int, **labels) -> dict:
    """A collector-produced counter fragment (see
    :meth:`MetricsRegistry.register_collector`)."""
    return {"type": "counter", "name": name, "labels": _norm_labels(labels),
            "value": int(value)}


def gauge_entry(name: str, value: float, *, agg: str = "last", n: int = 1,
                **labels) -> dict:
    """A collector-produced gauge fragment."""
    if agg not in GAUGE_AGGS:
        raise ValueError(f"unknown gauge agg {agg!r}; expected one of {GAUGE_AGGS}")
    return {"type": "gauge", "name": name, "labels": _norm_labels(labels),
            "value": float(value), "agg": agg, "n": int(n)}


class MetricsRegistry:
    """One process's metric series, keyed by name + sorted labels.

    ``counter``/``gauge``/``histogram`` are get-or-create — calling
    them twice with the same name and labels returns the same object,
    so layers never coordinate metric creation. One internal lock
    guards every series (shared by design: ``observe`` under a single
    uncontended lock beats per-series locks at this grain, and a
    snapshot is internally consistent).

    Thread safety: every method is safe from any thread. Collector
    functions run outside the registry lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: (weakref-to-owner, collect(owner) -> iterable of fragments)
        self._collectors: list[tuple[weakref.ref, object]] = []

    # ------------------------------------------------------------------
    # Series handles (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        labels = _norm_labels(labels)
        key = metric_key(name, labels)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = Counter(name, labels, self._lock)
                self._counters[key] = metric
            return metric

    def gauge(self, name: str, *, agg: str = "last", **labels) -> Gauge:
        labels = _norm_labels(labels)
        key = metric_key(name, labels)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = Gauge(name, labels, agg, self._lock)
                self._gauges[key] = metric
            elif metric.agg != agg:
                raise ValueError(
                    f"gauge {key!r} already registered with agg="
                    f"{metric.agg!r}, not {agg!r}")
            return metric

    def histogram(self, name: str, *, bounds=LATENCY_BUCKETS,
                  **labels) -> Histogram:
        labels = _norm_labels(labels)
        key = metric_key(name, labels)
        bounds = tuple(float(b) for b in bounds)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = Histogram(name, labels, bounds, self._lock)
                self._histograms[key] = metric
            elif metric.bounds != bounds:
                raise ValueError(
                    f"histogram {key!r} already registered with different "
                    "bounds — buckets are fixed per series")
            return metric

    def timer(self, name: str, **labels) -> Histogram:
        """Alias of :meth:`histogram` with the default latency buckets
        — reads better at call sites that only ever ``.time()``."""
        return self.histogram(name, **labels)

    # ------------------------------------------------------------------
    # Collectors (weakly-owned counter bridges)
    # ------------------------------------------------------------------
    def register_collector(self, owner, collect) -> None:
        """On every :meth:`snapshot`, call ``collect(owner)`` and merge
        the returned :func:`counter_entry`/:func:`gauge_entry`
        fragments in. The registry keeps only a weak reference to
        ``owner`` — when it is garbage-collected (an evicted engine),
        the collector is pruned and its series leave the snapshot.
        """
        with self._lock:
            self._collectors.append((weakref.ref(owner), collect))

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-safe, point-in-time copy of every series.

        Shape: ``{"counters": {key: {...}}, "gauges": {key: {...}},
        "histograms": {key: {...}}}`` — the input of
        :func:`merge_snapshots` / :func:`summarize` /
        :func:`render_prometheus`, and exactly what the ``metrics``
        protocol request returns from a shard. Contains no non-finite
        floats (empty histograms report ``min``/``max`` as ``None``),
        so it passes the canonical-JSON wire codec unchanged.
        """
        with self._lock:
            doc = {
                "counters": {k: c._doc() for k, c in self._counters.items()},
                "gauges": {k: g._doc() for k, g in self._gauges.items()},
                "histograms": {k: h._doc() for k, h in self._histograms.items()},
            }
            collectors = list(self._collectors)
        dead = []
        fragments: list[dict] = []
        for ref, collect in collectors:
            owner = ref()
            if owner is None:
                dead.append((ref, collect))
                continue
            fragments.extend(collect(owner))
        if dead:
            with self._lock:
                self._collectors = [c for c in self._collectors if c not in dead]
        for frag in fragments:
            _merge_fragment(doc, frag)
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (f"MetricsRegistry(counters={len(self._counters)}, "
                    f"gauges={len(self._gauges)}, "
                    f"histograms={len(self._histograms)}, "
                    f"collectors={len(self._collectors)})")


# ----------------------------------------------------------------------
# Snapshot algebra (pure functions over snapshot documents)
# ----------------------------------------------------------------------
def _merge_fragment(doc: dict, frag: dict) -> None:
    kind = frag["type"]
    key = metric_key(frag["name"], frag["labels"])
    entry = {k: v for k, v in frag.items() if k != "type"}
    if kind == "counter":
        existing = doc["counters"].get(key)
        if existing is None:
            doc["counters"][key] = entry
        else:
            existing["value"] += entry["value"]
    elif kind == "gauge":
        existing = doc["gauges"].get(key)
        if existing is None:
            doc["gauges"][key] = entry
        else:
            _merge_gauge(existing, entry)
    else:  # pragma: no cover - collector contract violation
        raise ValueError(f"unknown fragment type {kind!r}")


def _merge_gauge(into: dict, other: dict) -> None:
    if other.get("value") is None:
        return
    if into.get("value") is None:
        into.update(value=other["value"], n=other.get("n", 1))
        return
    agg = into.get("agg", "last")
    if agg == "sum":
        into["value"] += other["value"]
        into["n"] = into.get("n", 1) + other.get("n", 1)
    elif agg == "max":
        into["value"] = max(into["value"], other["value"])
    elif agg == "mean":
        n1, n2 = max(into.get("n", 1), 0), max(other.get("n", 1), 0)
        if n1 + n2 > 0:
            into["value"] = (into["value"] * n1 + other["value"] * n2) / (n1 + n2)
            into["n"] = n1 + n2
    # "last": first snapshot in merge order wins — an arbitrary
    # representative is all the policy promises.


def merge_snapshots(docs) -> dict:
    """Fold any number of :meth:`MetricsRegistry.snapshot` documents
    into one: counters add, histograms add bucket-wise (same-name
    series must share bounds), gauges combine per their ``agg``
    policy. The inputs are not mutated."""
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for doc in docs:
        for key, entry in doc.get("counters", {}).items():
            existing = out["counters"].get(key)
            if existing is None:
                out["counters"][key] = dict(entry)
            else:
                existing["value"] += entry["value"]
        for key, entry in doc.get("gauges", {}).items():
            existing = out["gauges"].get(key)
            if existing is None:
                out["gauges"][key] = dict(entry)
            else:
                _merge_gauge(existing, entry)
        for key, entry in doc.get("histograms", {}).items():
            existing = out["histograms"].get(key)
            if existing is None:
                out["histograms"][key] = {
                    **entry,
                    "bounds": list(entry["bounds"]),
                    "counts": list(entry["counts"]),
                }
                continue
            if list(existing["bounds"]) != list(entry["bounds"]):
                raise ValueError(
                    f"histogram {key!r} has mismatched bucket bounds "
                    "across snapshots — series are merge-incompatible")
            existing["counts"] = [a + b for a, b in
                                  zip(existing["counts"], entry["counts"])]
            existing["count"] += entry["count"]
            existing["sum"] += entry["sum"]
            mins = [v for v in (existing["min"], entry["min"]) if v is not None]
            maxs = [v for v in (existing["max"], entry["max"]) if v is not None]
            existing["min"] = min(mins) if mins else None
            existing["max"] = max(maxs) if maxs else None
    return out


def quantile(hist: dict, q: float) -> float | None:
    """Estimate the ``q``-quantile of one histogram document.

    Linear interpolation inside the bucket holding the target rank,
    clamped to the exact observed ``[min, max]`` — so single-value and
    narrow histograms estimate exactly, and the overflow bucket (no
    upper bound) uses ``max``. ``None`` for an empty histogram.
    """
    count = hist.get("count", 0)
    if count <= 0:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    lo, hi = hist.get("min"), hist.get("max")
    target = q * count
    if target <= 0:
        return lo
    bounds = hist["bounds"]
    cum = 0.0
    lower = 0.0
    for i, c in enumerate(hist["counts"]):
        upper = bounds[i] if i < len(bounds) else (hi if hi is not None else bounds[-1])
        if c and cum + c >= target:
            est = lower + (upper - lower) * (target - cum) / c
            if lo is not None:
                est = max(est, lo)
            if hi is not None:
                est = min(est, hi)
            return est
        cum += c
        lower = upper
    return hi  # pragma: no cover - counts/count disagree


def summarize(snapshot: dict) -> dict:
    """A copy of ``snapshot`` with every histogram annotated with
    ``p50``/``p95``/``p99`` estimates (and ``mean``) — the shape
    :meth:`ClusterFrontend.metrics` returns."""
    out = {
        "counters": {k: dict(v) for k, v in snapshot.get("counters", {}).items()},
        "gauges": {k: dict(v) for k, v in snapshot.get("gauges", {}).items()},
        "histograms": {},
    }
    for key, hist in snapshot.get("histograms", {}).items():
        entry = {**hist, "bounds": list(hist["bounds"]),
                 "counts": list(hist["counts"])}
        for label, q in SUMMARY_QUANTILES:
            entry[label] = quantile(hist, q)
        entry["mean"] = (hist["sum"] / hist["count"]) if hist.get("count") else None
        out["histograms"][key] = entry
    return out


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_prom_name(k)}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot (plain or :func:`summarize`-annotated) in the
    Prometheus text exposition format: counters and gauges as single
    samples, histograms as cumulative ``_bucket{le=...}`` series plus
    ``_sum``/``_count``."""
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key in sorted(snapshot.get("counters", {})):
        entry = snapshot["counters"][key]
        name = _prom_name(entry["name"])
        type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(entry['labels'])} {entry['value']}")
    for key in sorted(snapshot.get("gauges", {})):
        entry = snapshot["gauges"][key]
        if entry.get("value") is None:
            continue
        name = _prom_name(entry["name"])
        type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(entry['labels'])} "
                     f"{_prom_value(entry['value'])}")
    for key in sorted(snapshot.get("histograms", {})):
        entry = snapshot["histograms"][key]
        name = _prom_name(entry["name"])
        labels = entry["labels"]
        type_line(name, "histogram")
        cum = 0
        for bound, c in zip(entry["bounds"], entry["counts"]):
            cum += c
            lines.append(f"{name}_bucket"
                         f"{_prom_labels(labels, {'le': repr(float(bound))})} {cum}")
        lines.append(f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})} "
                     f"{entry['count']}")
        lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_value(entry['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} {entry['count']}")
    return "\n".join(lines) + "\n"
