"""Structured slow-query log: threshold-triggered request records.

The router times every request it executes; any that take longer than
the configured threshold produce one structured record carrying the
venue, request kind, measured seconds, the request's trace document
(if the client supplied a trace id) and its
:class:`~repro.core.results.QueryStats` document — i.e. enough to
answer "which venue, which query shape, and was the time pruning or
scanning" without reproducing the request.

Records go three places:

* an in-memory ring (:meth:`SlowQueryLog.records`, bounded by
  ``capacity``) for tests and the stats endpoint,
* an append-only JSONL file when ``path`` is set (one JSON object per
  line — shard workers write
  ``<catalog>/obs/slowlog-shard<N>.jsonl``, readable from the parent
  process with :func:`read_slowlog`),
* a ``repro.obs.slowlog`` :mod:`logging` warning, for whatever logging
  setup the host application has.

Threshold comparison and record assembly happen only on the slow path;
the fast path costs the router one ``perf_counter`` pair.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import deque
from pathlib import Path

__all__ = ["SlowQueryLog", "read_slowlog"]

logger = logging.getLogger("repro.obs.slowlog")


class SlowQueryLog:
    """Collects structured records for requests slower than
    ``threshold`` seconds.

    Args:
        threshold: seconds; requests at or above it are recorded.
        path: optional JSONL file to append records to (parent
            directories are created on first write).
        capacity: size of the in-memory ring of recent records.

    Thread safety: :meth:`record` and :meth:`records` may be called
    from any thread.
    """

    def __init__(self, threshold: float, *, path: str | Path | None = None,
                 capacity: int = 256) -> None:
        if threshold <= 0:
            raise ValueError(f"slow-query threshold must be > 0, got {threshold}")
        self.threshold = float(threshold)
        self.path = Path(path) if path is not None else None
        self._records: deque[dict] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self.emitted = 0

    def record(self, *, venue: str, kind: str, seconds: float,
               trace: dict | None = None,
               stats: dict | None = None) -> dict | None:
        """Record one request if it crossed the threshold; returns the
        record document, or ``None`` when the request was fast."""
        seconds = float(seconds)
        if seconds < self.threshold:
            return None
        doc = {
            "venue": venue,
            "kind": kind,
            "seconds": seconds,
            "threshold": self.threshold,
            "ts": time.time(),
            "trace": trace,
            "stats": stats,
        }
        line = json.dumps(doc, sort_keys=True)
        with self._lock:
            self._records.append(doc)
            self.emitted += 1
            if self.path is not None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
        logger.warning("slow query: %s", line)
        return doc

    def records(self) -> list[dict]:
        """The recent records still in the in-memory ring, oldest
        first."""
        with self._lock:
            return list(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SlowQueryLog(threshold={self.threshold}, "
                f"emitted={self.emitted}, path={self.path})")


def read_slowlog(path: str | Path) -> list[dict]:
    """Parse a slow-query JSONL file into record documents, oldest
    first. A missing file is an empty log; a torn final line (crash
    mid-append) is skipped, mirroring the op log's valid-prefix
    discipline."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    records: list[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            break  # torn tail — everything before it is intact
    return records
