"""Observability CLI: ``python -m repro.obs dump``.

Fetches the merged, quantile-annotated metrics of a running
``python -m repro.serving serve`` cluster over the framed wire
protocol (the ``metrics`` request kind) and prints them as JSON or
Prometheus text::

    python -m repro.obs dump --port 7707
    python -m repro.obs dump --port 7707 --prometheus

This talks to the serving port itself, so it works whether or not the
server was started with ``--metrics-port``.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys

from .registry import render_prometheus


def _cmd_dump(args) -> int:
    # Imported here: repro.serving depends on repro.obs, not the other
    # way around — the CLI is the one place the arrow reverses.
    from ..serving.protocol import (
        Request,
        recv_doc,
        reply_from_doc,
        request_to_doc,
        send_doc,
    )

    request = Request(venue="", kind="metrics")
    with socket.create_connection((args.host, args.port), timeout=args.timeout) as sock:
        send_doc(sock, request_to_doc(request, 0))
        reply = reply_from_doc(recv_doc(sock))
    snapshot = reply.value()
    if args.prometheus:
        sys.stdout.write(render_prometheus(snapshot))
    else:
        json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="observability tools for a running serving cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dump = sub.add_parser(
        "dump", help="fetch and print a cluster's merged metrics")
    dump.add_argument("--host", default="127.0.0.1",
                      help="serving host (default: 127.0.0.1)")
    dump.add_argument("--port", type=int, required=True,
                      help="serving port of a running `repro.serving serve`")
    dump.add_argument("--timeout", type=float, default=10.0,
                      help="socket timeout in seconds (default: 10)")
    dump.add_argument("--prometheus", action="store_true",
                      help="render Prometheus text instead of JSON")
    dump.set_defaults(func=_cmd_dump)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
