"""Observability: metrics registry, tracing, slow-query log, stats schema.

The measurement substrate under the serving stack, in four stdlib-only
pieces (no imports from the rest of :mod:`repro`, so every layer can
depend on this one):

* :mod:`~repro.obs.registry` — per-process
  :class:`~repro.obs.registry.MetricsRegistry` of counters, gauges and
  fixed-bucket latency histograms; snapshots are plain JSON documents
  that :func:`~repro.obs.registry.merge_snapshots` folds across
  processes, :func:`~repro.obs.registry.summarize` annotates with
  p50/p95/p99, and :func:`~repro.obs.registry.render_prometheus`
  renders for scraping.
* :mod:`~repro.obs.tracing` — per-request
  :class:`~repro.obs.tracing.Trace` span timings, carried between
  layers by a thread-local :class:`~repro.obs.tracing.Observation`.
* :mod:`~repro.obs.slowlog` — threshold-triggered structured
  :class:`~repro.obs.slowlog.SlowQueryLog` records (in-memory ring +
  JSONL file + :mod:`logging`).
* :mod:`~repro.obs.stats` — the :class:`~repro.obs.stats.StatsDoc`
  mixin giving every stats dataclass the same ``to_doc``/``log_line``.

Front doors: the ``metrics`` protocol request returns a shard's
snapshot, ``ClusterFrontend.metrics()`` merges all live shards with
its own registry, ``python -m repro.serving serve --metrics-port``
exposes the merged view over HTTP (Prometheus text + JSON), and
``python -m repro.obs dump`` fetches it from a running server.
"""

from .registry import (
    Counter,
    Gauge,
    GAUGE_AGGS,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    counter_entry,
    gauge_entry,
    merge_snapshots,
    metric_key,
    quantile,
    render_prometheus,
    summarize,
)
from .slowlog import SlowQueryLog, read_slowlog
from .stats import StatsDoc
from .tracing import (
    Observation,
    Trace,
    current_observation,
    new_trace_id,
    observing,
)

__all__ = [
    "Counter",
    "Gauge",
    "GAUGE_AGGS",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "Observation",
    "SlowQueryLog",
    "StatsDoc",
    "Trace",
    "counter_entry",
    "current_observation",
    "gauge_entry",
    "merge_snapshots",
    "metric_key",
    "new_trace_id",
    "observing",
    "quantile",
    "read_slowlog",
    "render_prometheus",
    "summarize",
]
