"""Per-request tracing: a trace id plus named span timings.

A client that wants to see *where* a request's time went supplies a
trace id on the wire (``Request.trace``). Each layer that handles the
request opens a :meth:`Trace.span` around its part of the work —
``frontend.total`` at the TCP front door, ``shard.<kind>`` in the
worker loop, ``router.<kind>`` around venue acquisition + log sync,
``engine.<kind>`` around the index query itself — and the completed
spans ride back on the response (``Response.trace``), so one reply
tells the client how much of its latency was wire, queueing, log
replay, or actual tree traversal.

Plumbing between layers is a thread-local :class:`Observation`
(installed with :func:`observing`, read with
:func:`current_observation`): the shard worker creates one per traced
request and the router/engine below find it without any signature
changes on the hot path. The same object carries the ``include_stats``
flag and the per-query :class:`~repro.core.results.QueryStats` the
router collects for it.

Wire shape of a trace document::

    {"id": "<hex trace id>", "spans": [{"name": ..., "seconds": ...}]}

Spans are a flat list in completion order, not a tree — layers are
strictly nested here, so nesting is recoverable from the names, and a
flat list keeps the codec trivial.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from time import perf_counter

__all__ = [
    "Observation",
    "Trace",
    "current_observation",
    "new_trace_id",
    "observing",
]


def new_trace_id() -> str:
    """A fresh 64-bit random trace id (16 hex chars)."""
    return os.urandom(8).hex()


class Trace:
    """One request's trace: an id and the spans recorded so far.

    Used by one request-handling thread at a time (the serving stack
    hands each request to exactly one worker thread per process), so
    span recording is unsynchronized by design.
    """

    __slots__ = ("trace_id", "spans")

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = str(trace_id) if trace_id else new_trace_id()
        self.spans: list[dict] = []

    def add_span(self, name: str, seconds: float) -> None:
        self.spans.append({"name": str(name), "seconds": float(seconds)})

    @contextmanager
    def span(self, name: str):
        """Record the wall-clock duration of a ``with`` block as one
        span. The span is appended on exit, even when the block
        raises — a failed request still shows where its time went."""
        start = perf_counter()
        try:
            yield self
        finally:
            self.add_span(name, perf_counter() - start)

    def to_doc(self) -> dict:
        return {"id": self.trace_id, "spans": [dict(s) for s in self.spans]}

    @classmethod
    def from_doc(cls, doc: dict) -> "Trace":
        trace = cls(doc["id"])
        trace.spans = [
            {"name": str(s["name"]), "seconds": float(s["seconds"])}
            for s in doc.get("spans", [])
        ]
        return trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.trace_id}, spans={len(self.spans)})"


class Observation:
    """What the current request asked to observe, and what was seen.

    ``trace`` is the active :class:`Trace` (or ``None``); ``want_stats``
    says the client asked for per-query counters; ``stats`` is filled
    by the router with the merged
    :class:`~repro.core.results.QueryStats` of the query it executed.
    """

    __slots__ = ("trace", "want_stats", "stats")

    def __init__(self, trace: Trace | None = None,
                 want_stats: bool = False) -> None:
        self.trace = trace
        self.want_stats = bool(want_stats)
        self.stats = None


_local = threading.local()


@contextmanager
def observing(obs: Observation):
    """Install ``obs`` as the current thread's observation for the
    duration of a ``with`` block (restores the previous one on exit,
    so nested/self-test request paths stay correct)."""
    prev = getattr(_local, "obs", None)
    _local.obs = obs
    try:
        yield obs
    finally:
        _local.obs = prev


def current_observation() -> Observation | None:
    """The :class:`Observation` installed on this thread, if any.
    Layers below the transport call this instead of growing trace
    parameters on the hot path."""
    return getattr(_local, "obs", None)
