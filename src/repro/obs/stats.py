"""One schema for the stats zoo: the :class:`StatsDoc` mixin.

Every layer of the stack reports counters through a slots dataclass —
``EngineStats``, ``RouterStats``, ``FrontendStats``, ``ClusterStats``,
``ShardStats`` — and before this module each grew its own ad-hoc
serialization (``asdict`` here, a hand-rolled dict there). The mixin
gives them all the same two methods:

* :meth:`StatsDoc.to_doc` — a plain JSON-safe document: dataclass
  fields recursively converted, nested stats dataclasses inlined,
  dict keys stringified (so integer-keyed maps like ``by_shard``
  survive the canonical-JSON wire codec unchanged),
* :meth:`StatsDoc.log_line` — a one-line ``Name key=value ...``
  rendering of the scalar fields, for log output.

``stats`` protocol responses are these documents, uniform across
transports: in-process calls return the dataclass, the wire returns
``to_doc()`` of the same dataclass.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass

__all__ = ["StatsDoc"]


def _to_jsonish(value):
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _to_jsonish(getattr(value, f.name))
                for f in fields(value)}
    if isinstance(value, dict):
        return {str(k): _to_jsonish(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonish(v) for v in value]
    return value


class StatsDoc:
    """Mixin for stats dataclasses: uniform ``to_doc``/``log_line``.

    Declared with empty ``__slots__`` so ``@dataclass(slots=True)``
    subclasses stay dict-free.
    """

    __slots__ = ()

    def to_doc(self) -> dict:
        """This stats object as a plain JSON-safe document (fields
        recursively converted, dict keys stringified)."""
        return _to_jsonish(self)

    def log_line(self) -> str:
        """A one-line ``ClassName key=value ...`` rendering of the
        scalar fields (nested structures elided)."""
        bits = []
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, bool) or isinstance(value, (int, float, str)):
                bits.append(f"{f.name}={value}")
        return " ".join([type(self).__name__, *bits])
