"""A small LRU cache with hit/miss counters.

Used by :class:`~repro.engine.engine.QueryEngine` for its result caches
(door-to-door distances, kNN/range/path results) and usable as a bounded
backing store for :class:`~repro.core.context.QueryContext`. Exposes the
mapping subset those callers need: ``get``, ``__setitem__``,
``__contains__`` and ``__len__``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable


class LRUCache:
    """Bounded mapping evicting the least-recently-used entry.

    ``maxsize <= 0`` means unbounded. Three counters are exposed, all
    **monotone lifetime totals** — nothing ever resets them, including
    :meth:`clear` (and therefore including the query engine's
    update-driven cache invalidation, which is implemented as a
    ``clear``):

    * ``hits`` — ``get`` calls that found their key (each also
      refreshes the key's recency);
    * ``misses`` — ``get`` calls that did not (``peek`` touches
      neither counter nor recency);
    * ``evictions`` — entries dropped by the LRU bound in
      ``__setitem__``. Entries dropped by :meth:`clear` are *not*
      counted as evictions — eviction measures capacity pressure,
      not invalidation.

    Consequently ``hits + misses`` equals the lifetime number of
    ``get`` calls, and hit-rate computations remain meaningful across
    ``clear``/invalidation boundaries (a flushed entry simply costs one
    extra miss when next requested).
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default=None):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: Hashable, default=None):
        """Read without touching recency or counters."""
        return self._data.get(key, default)

    def __setitem__(self, key: Hashable, value) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if self.maxsize > 0:
            while len(data) > self.maxsize:
                data.popitem(last=False)
                self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        """Drop all entries; counters are preserved (they are lifetime
        totals, not occupancy)."""
        self._data.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUCache(size={len(self._data)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
