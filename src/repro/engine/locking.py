"""Locking primitives for concurrent query serving.

:class:`RWLock` is a classic readers-writer lock with **writer
preference**: any number of readers may hold the lock concurrently, a
writer waits until every reader has left, and once a writer is waiting
no *new* reader may enter (so a steady query stream cannot starve
updates). :class:`QueryEngine` uses it in ``thread_safe=True`` mode —
object-dependent queries (kNN/range) take the read side, object updates
take the write side — and :mod:`repro.serving` builds its multi-venue
serving layer on top of such engines.

:data:`NULL_RWLOCK` / :data:`NULL_LOCK` are shared no-op stand-ins with
the same context-manager surface, so single-threaded engines pay no
locking cost and no branching at the call sites.

Lock ordering (see ``docs/serving.md`` for the system-wide rules): an
``RWLock`` is always the *outermost* lock — code holding any plain
mutex must never try to acquire an ``RWLock``. The read side is **not
reentrant**: acquiring it twice from one thread can deadlock once a
writer queues between the two acquisitions.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class _NullContext:
    """A reusable no-op context manager (single-thread fast path)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class NullRWLock:
    """No-op :class:`RWLock` stand-in for single-threaded engines."""

    __slots__ = ()
    _ctx = _NullContext()

    def read(self) -> _NullContext:
        return self._ctx

    def write(self) -> _NullContext:
        return self._ctx


#: shared no-op instances — immutable, safe to share across engines
NULL_LOCK = _NullContext()
NULL_RWLOCK = NullRWLock()


class RWLock:
    """A readers-writer lock with writer preference.

    * :meth:`read` — shared access: many readers at once, blocks while
      a writer holds the lock **or is waiting** for it (writer
      preference keeps a continuous reader stream from starving
      writers).
    * :meth:`write` — exclusive access: blocks until every reader and
      writer has left; at most one writer runs at a time.

    Both return context managers::

        lock = RWLock()
        with lock.read():
            ...  # concurrent with other readers
        with lock.write():
            ...  # exclusive

    The lock is not reentrant on either side. All state lives behind a
    single :class:`threading.Condition`, so acquisition/release are
    each one condition round-trip (microseconds — far below the cost of
    the tree searches it guards).
    """

    __slots__ = ("_cond", "_readers", "_writer_active", "_writers_waiting")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read(self):
        """Shared (reader) access as a context manager."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """Exclusive (writer) access as a context manager."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RWLock(readers={self._readers}, writer={self._writer_active}, "
            f"waiting={self._writers_waiting})"
        )
