"""Leaf-tagged result caching: the data structure behind scoped
invalidation.

:class:`TaggedLRUCache` extends :class:`~repro.engine.cache.LRUCache`
with one piece of metadata per entry — the set of tree leaf ids whose
objects could have contributed to the cached answer (the conservative
bound-ball closure computed by
:func:`repro.core.query_knn.contributing_leaves` and its vectorized
kernel twin) — plus the inverted index ``leaf id -> cache keys`` that
makes :meth:`TaggedLRUCache.invalidate_leaves` proportional to the
number of entries actually affected, not the cache size.

Tag semantics:

* ``frozenset`` of leaf ids — the entry is invalidated exactly when one
  of those leaves' object population changes;
* ``None`` ("ALL") — the entry's dependency set is unknown or unbounded
  (e.g. a kNN that returned fewer than k results, whose effective bound
  is infinite), so *any* update invalidates it. Plain ``cache[key] =
  value`` writes get this conservative tag; use :meth:`put` to attach a
  real one.

Thread safety: none here — the engine guards the cache (tags and
inverted index included) with its existing cache mutex, exactly as it
does for the untagged caches.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from .cache import LRUCache

__all__ = ["TaggedLRUCache"]


class TaggedLRUCache(LRUCache):
    """An :class:`LRUCache` whose entries carry leaf-dependency tags.

    All :class:`LRUCache` semantics are preserved — LRU bound, lifetime
    ``hits``/``misses``/``evictions`` counters, ``clear`` keeping the
    counters — and the tag bookkeeping is kept exactly consistent with
    the entry population: overwrites, LRU evictions, ``clear`` and both
    ``invalidate_*`` methods untag whatever they drop, so the inverted
    index never holds keys that are no longer cached.
    """

    __slots__ = ("_tags", "_by_leaf", "_all_keys")

    def __init__(self, maxsize: int = 4096) -> None:
        super().__init__(maxsize)
        #: key -> frozenset of leaf ids, or None for ALL
        self._tags: dict[Hashable, frozenset | None] = {}
        #: inverted index: leaf id -> keys of live entries tagged with it
        self._by_leaf: dict[int, set] = {}
        #: keys of live ALL-tagged entries (dropped by every invalidation)
        self._all_keys: set = set()

    # ------------------------------------------------------------------
    def _untag(self, key: Hashable) -> None:
        if key not in self._tags:
            return
        tag = self._tags.pop(key)
        if tag is None:
            self._all_keys.discard(key)
            return
        by = self._by_leaf
        for leaf_id in tag:
            keys = by.get(leaf_id)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del by[leaf_id]

    def put(self, key: Hashable, value, leaves: frozenset | None) -> None:
        """Store ``key -> value`` tagged with ``leaves`` (``None`` =
        ALL). The LRU bound applies as in ``__setitem__``; evicted
        entries are untagged."""
        data = self._data
        if key in data:
            self._untag(key)
            data.move_to_end(key)
        data[key] = value
        if self.maxsize > 0:
            while len(data) > self.maxsize:
                old, _ = data.popitem(last=False)
                self._untag(old)
                self.evictions += 1
        self._tags[key] = leaves
        if leaves is None:
            self._all_keys.add(key)
        else:
            by = self._by_leaf
            for leaf_id in leaves:
                by.setdefault(leaf_id, set()).add(key)

    def __setitem__(self, key: Hashable, value) -> None:
        # untagged writes depend on everything until told otherwise
        self.put(key, value, None)

    def leaves_of(self, key: Hashable) -> frozenset | None:
        """The tag of a live entry (``None`` = ALL); raises ``KeyError``
        for keys not currently cached."""
        if key not in self._data:
            raise KeyError(key)
        return self._tags[key]

    # ------------------------------------------------------------------
    def invalidate_leaves(self, leaf_ids: Iterable[int]) -> int:
        """Drop every entry tagged with any of ``leaf_ids`` — plus every
        ALL-tagged entry, whose dependency set conservatively contains
        every leaf. Entries tagged only with other leaves survive.
        Returns the number of entries dropped (counters untouched, as
        with :meth:`clear`)."""
        victims = set(self._all_keys)
        by = self._by_leaf
        for leaf_id in leaf_ids:
            keys = by.get(leaf_id)
            if keys:
                victims.update(keys)
        data = self._data
        for key in victims:
            self._untag(key)
            del data[key]
        return len(victims)

    def invalidate_all(self) -> int:
        """Full flush; returns the number of entries dropped."""
        dropped = len(self._data)
        self.clear()
        return dropped

    def clear(self) -> None:
        super().clear()
        self._tags.clear()
        self._by_leaf.clear()
        self._all_keys.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaggedLRUCache(size={len(self._data)}/{self.maxsize}, "
            f"leaves={len(self._by_leaf)}, all={len(self._all_keys)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
