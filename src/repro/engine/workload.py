"""Mixed-workload replay: measure an engine's throughput (events/sec).

:func:`replay` drives a :class:`~repro.engine.engine.QueryEngine` with a
stream of :class:`~repro.datasets.workloads.MixedQuery` items — the
weighted mixes real deployments issue (e.g. 70% kNN / 20% distance /
10% range) — and reports wall-clock throughput plus the engine's cache
counters. Streams may also interleave
:class:`~repro.model.objects.UpdateOp` events (moving-object workloads,
see :func:`repro.datasets.moving.moving_objects`); updates are applied
through the engine's update endpoints **in stream order**, so queries
always see exactly the object population a sequential execution would.

Batched replay groups the stream by query kind (and k/radius) and uses
the engine's batch endpoints; updates act as barriers — only queries
between two updates are batched together (and consecutive updates
become one ``batch_update``). Results are scattered back into stream
order, so batched and sequential replay return element-wise identical
results even for dynamic streams.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..datasets.workloads import MixedQuery
from ..model.objects import UpdateOp
from .engine import EngineStats, QueryEngine


@dataclass(slots=True)
class WorkloadReport:
    """Outcome of one workload replay."""

    queries: int
    seconds: float
    by_kind: dict[str, int] = field(default_factory=dict)
    batched: bool = True
    #: update events applied during the replay (0 for static workloads)
    updates: int = 0
    #: engine counter snapshot taken right after the replay (None when
    #: the engine exposes no stats)
    stats: EngineStats | None = None

    @property
    def events(self) -> int:
        """Total stream length: queries plus updates."""
        return self.queries + self.updates

    @property
    def qps(self) -> float:
        """Query events per second (inf for a zero-length measurement).

        The denominator is the whole replay wall-clock, so for dynamic
        streams this is query throughput *while also absorbing the
        stream's updates*; use :attr:`eps` for combined event rate.
        """
        if self.seconds <= 0.0:
            return float("inf")
        return self.queries / self.seconds

    @property
    def eps(self) -> float:
        """Events (queries + updates) per second."""
        if self.seconds <= 0.0:
            return float("inf")
        return self.events / self.seconds

    def summary(self) -> str:
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(self.by_kind.items()))
        head = f"{self.queries} queries"
        if self.updates:
            head += f" + {self.updates} updates"
        return (
            f"{head} in {self.seconds:.3f}s "
            f"({self.qps:,.0f} q/s; {kinds}; "
            f"{'batched' if self.batched else 'sequential'})"
        )


def _run_one(engine: QueryEngine, q):
    if isinstance(q, UpdateOp):
        return engine.update(q)
    if q.kind == "distance":
        return engine.distance(q.source, q.target)
    if q.kind == "path":
        return engine.path(q.source, q.target)
    if q.kind == "knn":
        return engine.knn(q.source, q.k)
    if q.kind == "range":
        return engine.range_query(q.source, q.radius)
    raise ValueError(f"unknown query kind {q.kind!r}")


def _replay_query_block(engine: QueryEngine, queries, block, results) -> None:
    """Batch one contiguous update-free block of the stream.

    Groups the block's positions by (kind, parameter) so each group maps
    onto one batch call; positions scatter the batch output back to
    stream order.
    """
    groups: dict[tuple, list[int]] = {}
    for i in block:
        q = queries[i]
        if q.kind == "knn":
            gkey = ("knn", q.k)
        elif q.kind == "range":
            gkey = ("range", q.radius)
        elif q.kind in ("distance", "path"):
            gkey = (q.kind,)
        else:
            raise ValueError(f"unknown query kind {q.kind!r}")
        groups.setdefault(gkey, []).append(i)
    for gkey, positions in groups.items():
        kind = gkey[0]
        if kind == "distance":
            out = engine.batch_distance(
                [(queries[i].source, queries[i].target) for i in positions]
            )
        elif kind == "path":
            out = engine.batch_path(
                [(queries[i].source, queries[i].target) for i in positions]
            )
        elif kind == "knn":
            out = engine.batch_knn([queries[i].source for i in positions], gkey[1])
        else:
            out = engine.batch_range([queries[i].source for i in positions], gkey[1])
        for i, res in zip(positions, out):
            results[i] = res


def replay(
    engine: QueryEngine,
    queries: list,
    *,
    batched: bool = True,
) -> tuple[list, WorkloadReport]:
    """Run a (possibly dynamic) workload and time it.

    Returns ``(results, report)`` with ``results`` in stream order —
    floats for distance queries, :class:`PathResult` for path queries,
    ``list[Neighbor]`` for kNN/range queries, and the engine's update
    return value (e.g. the new id for inserts) for update events.
    """
    results: list = [None] * len(queries)
    by_kind: dict[str, int] = {}
    n_updates = 0
    for q in queries:
        kind = q.kind
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if isinstance(q, UpdateOp):
            n_updates += 1
        elif kind not in ("distance", "path", "knn", "range"):
            raise ValueError(f"unknown query kind {kind!r}")

    start = time.perf_counter()
    if not batched:
        for i, q in enumerate(queries):
            results[i] = _run_one(engine, q)
    else:
        # Updates are barriers: batch each update-free block, apply each
        # run of consecutive updates as one batch_update.
        block: list[int] = []
        update_run: list[int] = []

        def flush_queries():
            if block:
                _replay_query_block(engine, queries, block, results)
                block.clear()

        def flush_updates():
            if update_run:
                out = engine.batch_update([queries[i] for i in update_run])
                for i, res in zip(update_run, out):
                    results[i] = res
                update_run.clear()

        for i, q in enumerate(queries):
            if isinstance(q, UpdateOp):
                flush_queries()
                update_run.append(i)
            else:
                flush_updates()
                block.append(i)
        flush_queries()
        flush_updates()
    seconds = time.perf_counter() - start

    stats = engine.stats() if hasattr(engine, "stats") else None
    report = WorkloadReport(
        queries=len(queries) - n_updates,
        seconds=seconds,
        by_kind=by_kind,
        batched=batched,
        updates=n_updates,
        stats=stats,
    )
    return results, report
