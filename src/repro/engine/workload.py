"""Mixed-workload replay: measure an engine's throughput (queries/sec).

:func:`replay` drives a :class:`~repro.engine.engine.QueryEngine` with a
stream of :class:`~repro.datasets.workloads.MixedQuery` items — the
weighted mixes real deployments issue (e.g. 70% kNN / 20% distance /
10% range) — and reports wall-clock throughput plus the engine's cache
counters. Batched replay groups the stream by query kind (and k/radius)
and uses the engine's batch endpoints; results are scattered back into
stream order, so batched and sequential replay return element-wise
identical results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..datasets.workloads import MixedQuery
from .engine import EngineStats, QueryEngine


@dataclass(slots=True)
class WorkloadReport:
    """Outcome of one workload replay."""

    queries: int
    seconds: float
    by_kind: dict[str, int] = field(default_factory=dict)
    batched: bool = True
    #: engine counter snapshot taken right after the replay (None when
    #: the engine exposes no stats)
    stats: EngineStats | None = None

    @property
    def qps(self) -> float:
        """Queries per second (inf for a zero-length measurement)."""
        if self.seconds <= 0.0:
            return float("inf")
        return self.queries / self.seconds

    def summary(self) -> str:
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(self.by_kind.items()))
        return (
            f"{self.queries} queries in {self.seconds:.3f}s "
            f"({self.qps:,.0f} q/s; {kinds}; "
            f"{'batched' if self.batched else 'sequential'})"
        )


def _run_one(engine: QueryEngine, q: MixedQuery):
    if q.kind == "distance":
        return engine.distance(q.source, q.target)
    if q.kind == "path":
        return engine.path(q.source, q.target)
    if q.kind == "knn":
        return engine.knn(q.source, q.k)
    if q.kind == "range":
        return engine.range_query(q.source, q.radius)
    raise ValueError(f"unknown query kind {q.kind!r}")


def replay(
    engine: QueryEngine,
    queries: list[MixedQuery],
    *,
    batched: bool = True,
) -> tuple[list, WorkloadReport]:
    """Run a mixed workload and time it.

    Returns ``(results, report)`` with ``results`` in stream order —
    floats for distance queries, :class:`PathResult` for path queries
    and ``list[Neighbor]`` for kNN/range queries.
    """
    results: list = [None] * len(queries)
    by_kind: dict[str, int] = {}
    for q in queries:
        by_kind[q.kind] = by_kind.get(q.kind, 0) + 1

    start = time.perf_counter()
    if not batched:
        for i, q in enumerate(queries):
            results[i] = _run_one(engine, q)
    else:
        # Group by (kind, parameter) so each group maps onto one batch
        # call; positions scatter the batch output back to stream order.
        groups: dict[tuple, list[int]] = {}
        for i, q in enumerate(queries):
            if q.kind == "knn":
                gkey = ("knn", q.k)
            elif q.kind == "range":
                gkey = ("range", q.radius)
            elif q.kind in ("distance", "path"):
                gkey = (q.kind,)
            else:
                raise ValueError(f"unknown query kind {q.kind!r}")
            groups.setdefault(gkey, []).append(i)
        for gkey, positions in groups.items():
            kind = gkey[0]
            if kind == "distance":
                out = engine.batch_distance(
                    [(queries[i].source, queries[i].target) for i in positions]
                )
            elif kind == "path":
                out = engine.batch_path(
                    [(queries[i].source, queries[i].target) for i in positions]
                )
            elif kind == "knn":
                out = engine.batch_knn([queries[i].source for i in positions], gkey[1])
            else:
                out = engine.batch_range([queries[i].source for i in positions], gkey[1])
            for i, res in zip(positions, out):
                results[i] = res
    seconds = time.perf_counter() - start

    stats = engine.stats() if hasattr(engine, "stats") else None
    report = WorkloadReport(
        queries=len(queries),
        seconds=seconds,
        by_kind=by_kind,
        batched=batched,
        stats=stats,
    )
    return results, report
