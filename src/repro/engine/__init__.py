"""Batch query engine: uniform index front end with caching + workloads.

* :class:`QueryEngine` — wraps any built index (IP-Tree, VIP-Tree or a
  baseline) behind one distance/path/kNN/range API with batch
  endpoints, LRU result caches, and dynamic object updates
  (``update``/``batch_update``) with targeted kNN/range cache
  invalidation,
* :class:`LRUCache` — the bounded cache primitive,
* :class:`TaggedLRUCache` — the leaf-tagged variant behind the
  engine's scoped kNN/range invalidation (entries carry the set of
  tree leaves their answer depends on; updates drop only entries
  tagged with the touched leaves),
* :class:`RWLock` — the readers-writer lock behind
  ``QueryEngine(thread_safe=True)`` (queries share the read side,
  object updates take the write side; see :mod:`repro.serving` for the
  multi-venue serving layer built on that contract),
* :func:`replay` / :class:`WorkloadReport` — workload throughput driver
  for static query mixes
  (:func:`repro.datasets.workloads.mixed_queries`) and moving-object
  streams (:func:`repro.datasets.moving.moving_objects`).
"""

from .cache import LRUCache
from .engine import EngineStats, QueryEngine
from .invalidation import TaggedLRUCache
from .locking import RWLock
from .workload import WorkloadReport, replay

__all__ = [
    "EngineStats",
    "LRUCache",
    "QueryEngine",
    "RWLock",
    "TaggedLRUCache",
    "WorkloadReport",
    "replay",
]
