"""Batch query engine: uniform index front end with caching + workloads.

* :class:`QueryEngine` — wraps any built index (IP-Tree, VIP-Tree or a
  baseline) behind one distance/path/kNN/range API with batch endpoints
  and LRU result caches,
* :class:`LRUCache` — the bounded cache primitive,
* :func:`replay` / :class:`WorkloadReport` — mixed-workload throughput
  driver (generate the streams with
  :func:`repro.datasets.workloads.mixed_queries`).
"""

from .cache import LRUCache
from .engine import EngineStats, QueryEngine
from .workload import WorkloadReport, replay

__all__ = [
    "EngineStats",
    "LRUCache",
    "QueryEngine",
    "WorkloadReport",
    "replay",
]
