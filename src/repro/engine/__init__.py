"""Batch query engine: uniform index front end with caching + workloads.

* :class:`QueryEngine` — wraps any built index (IP-Tree, VIP-Tree or a
  baseline) behind one distance/path/kNN/range API with batch
  endpoints, LRU result caches, and dynamic object updates
  (``update``/``batch_update``) with targeted kNN/range cache
  invalidation,
* :class:`LRUCache` — the bounded cache primitive,
* :func:`replay` / :class:`WorkloadReport` — workload throughput driver
  for static query mixes
  (:func:`repro.datasets.workloads.mixed_queries`) and moving-object
  streams (:func:`repro.datasets.moving.moving_objects`).
"""

from .cache import LRUCache
from .engine import EngineStats, QueryEngine
from .workload import WorkloadReport, replay

__all__ = [
    "EngineStats",
    "LRUCache",
    "QueryEngine",
    "WorkloadReport",
    "replay",
]
