"""QueryEngine: a uniform, cache-accelerated front end for any index.

The engine wraps one built index — :class:`~repro.core.tree.IPTree`,
:class:`~repro.core.viptree.VIPTree`, or any baseline from
:mod:`repro.baselines` — behind one API:

* ``distance`` / ``path`` / ``knn`` / ``range_query`` — single queries,
* ``batch_distance`` / ``batch_path`` / ``batch_knn`` / ``batch_range``
  — request lists that amortize per-query setup (endpoint resolution,
  leaf lookup, tree climbs) across the batch,
* ``update`` / ``batch_update`` (plus ``insert_object`` /
  ``delete_object`` / ``move_object``) — dynamic object updates that
  maintain the object index incrementally and invalidate **only** the
  object-dependent result caches (kNN/range); distance/path caches and
  the query context survive, because they never depend on objects,
* ``stats()`` — a monotone snapshot of query counts, update counts and
  cache hit/miss counters.

Two cache layers (both optional via ``cache=False``):

* a :class:`~repro.core.context.QueryContext` shared with the core query
  algorithms (endpoint resolution + tree-climb reuse, tree indexes
  only), and
* engine-level :class:`~repro.engine.cache.LRUCache` result caches: an
  LRU **door-to-door / point-to-point distance cache** (symmetric keys)
  plus kNN, range and path result caches.

Caching never changes answers — batch results are element-wise identical
to the single-query APIs, which in turn match the index called directly.
Cached result objects are shared; treat them as immutable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..baselines.distmx import DistanceMatrix, DistMxObjects
from ..baselines.oracle import DijkstraOracle
from ..core.context import QueryContext, endpoint_key
from ..core.objects_index import ObjectIndex
from ..core.results import Neighbor, PathResult
from ..core.tree import IPTree
from ..exceptions import QueryError
from ..model.entities import IndoorPoint
from ..model.objects import UpdateOp
from .cache import LRUCache

_MISSING = object()


@dataclass(slots=True)
class EngineStats:
    """Monotone engine counters — a snapshot returned by
    :meth:`QueryEngine.stats`.

    Every field is a lifetime total that only ever grows over the
    engine's life: queries, updates and hit/miss counters are never
    reset — not by :meth:`QueryEngine.clear_caches` and not by update
    invalidation, both of which drop cached *entries* but preserve the
    counters. Snapshot copies are therefore safe to keep around and
    subtract across batches.

    Field-by-field:

    * ``distance_queries`` / ``path_queries`` / ``knn_queries`` /
      ``range_queries`` — queries served per kind, counted whether they
      hit or miss a cache (and also when caching is disabled).
    * ``updates`` — object-update operations applied through
      ``update``/``batch_update``/``insert_object``/``delete_object``/
      ``move_object``. Zero for engines that never mutate objects.
    * ``invalidations`` — object-cache invalidation *events* (each event
      flushes every kNN and range cache entry at once). One per single
      ``update``, one per ``batch_update`` call (that is the batch
      amortization), and one per stale-version detection when the
      object set was mutated behind the engine's back. Stays zero when
      ``cache=False`` (there is nothing to flush).
    * ``distance_hits``/``distance_misses`` … ``range_hits``/
      ``range_misses`` — hit/miss pairs of the four engine-level LRU
      result caches. Invalidation does **not** reset them; a query after
      an invalidation simply records a miss when it recomputes.
    * ``endpoint_*`` / ``climb_*`` / ``search_*`` — hit/miss pairs of
      the :class:`~repro.core.context.QueryContext` layers (tree
      indexes only; all zero for baselines and for ``cache=False``).
      These caches are object-independent, so update invalidation
      leaves both their entries and their counters untouched.
    """

    distance_queries: int = 0
    path_queries: int = 0
    knn_queries: int = 0
    range_queries: int = 0
    #: dynamic object updates
    updates: int = 0
    invalidations: int = 0
    #: engine-level LRU result caches
    distance_hits: int = 0
    distance_misses: int = 0
    path_hits: int = 0
    path_misses: int = 0
    knn_hits: int = 0
    knn_misses: int = 0
    range_hits: int = 0
    range_misses: int = 0
    #: QueryContext layers (tree indexes only)
    endpoint_hits: int = 0
    endpoint_misses: int = 0
    climb_hits: int = 0
    climb_misses: int = 0
    search_hits: int = 0
    search_misses: int = 0

    @property
    def queries(self) -> int:
        return (
            self.distance_queries
            + self.path_queries
            + self.knn_queries
            + self.range_queries
        )

    @property
    def hits(self) -> int:
        return (
            self.distance_hits
            + self.path_hits
            + self.knn_hits
            + self.range_hits
        )

    @property
    def misses(self) -> int:
        return (
            self.distance_misses
            + self.path_misses
            + self.knn_misses
            + self.range_misses
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _sym_key(ka: tuple, kb: tuple) -> tuple:
    """Order-independent pair key (indoor distance is symmetric)."""
    return (ka, kb) if ka <= kb else (kb, ka)


class QueryEngine:
    """Serve streams of spatial queries against one built index.

    The engine also serves **dynamic object updates**: see
    :meth:`update` / :meth:`batch_update` and the ``insert_object`` /
    ``delete_object`` / ``move_object`` conveniences. Updates mutate the
    wrapped object store (incrementally for tree indexes) and invalidate
    the kNN/range result caches only.

    Args:
        index: a built :class:`IPTree`/:class:`VIPTree` or any baseline
            exposing ``shortest_distance`` (and optionally
            ``shortest_path``/``knn``/``range_query``).
        objects: the points of interest for kNN/range queries — an
            :class:`ObjectSet`, or a prebuilt :class:`ObjectIndex` for a
            tree index. Omit for distance/path-only engines.
        cache: master switch. ``False`` disables the query context and
            every result cache (each call recomputes from scratch, like
            calling the index directly).
        distance_cache_size: LRU capacity of the distance result cache
            (door-to-door and point pairs share it; keys are symmetric).
        result_cache_size: LRU capacity of each of the kNN / range /
            path result caches.
        context_cache_size: LRU capacity of each of the query context's
            endpoint / climb / search-state caches, so a long-lived
            engine's memory stays bounded under endless distinct
            endpoints. ``0`` means unbounded.
    """

    def __init__(
        self,
        index,
        objects=None,
        *,
        cache: bool = True,
        distance_cache_size: int = 65536,
        result_cache_size: int = 8192,
        context_cache_size: int = 16384,
    ) -> None:
        self.index = index
        self._is_tree = isinstance(index, IPTree)
        self.cache_enabled = bool(cache)
        self._context_cache_size = context_cache_size
        self.ctx = self._new_ctx() if (self.cache_enabled and self._is_tree) else None
        if self.cache_enabled:
            self._dist_cache = LRUCache(distance_cache_size)
            self._path_cache = LRUCache(result_cache_size)
            self._knn_cache = LRUCache(result_cache_size)
            self._range_cache = LRUCache(result_cache_size)
        else:
            self._dist_cache = None
            self._path_cache = None
            self._knn_cache = None
            self._range_cache = None
        self._counts = {"distance": 0, "path": 0, "knn": 0, "range": 0}
        self._updates = 0
        self._invalidations = 0

        # Wire the object set into whatever the index understands.
        self.object_index: ObjectIndex | None = None
        self.objects = None
        self._mx_objects: DistMxObjects | None = None
        if objects is not None:
            if isinstance(objects, ObjectIndex):
                if self._is_tree and objects.tree is not index:
                    raise QueryError("object index was built for a different tree")
                self.objects = objects.objects
                if self._is_tree:
                    self.object_index = objects
            else:
                self.objects = objects
            if self._is_tree and self.object_index is None:
                self.object_index = ObjectIndex(index, self.objects)
            elif isinstance(index, DistanceMatrix):
                self._mx_objects = DistMxObjects(index, self.objects)
            elif hasattr(index, "attach_objects"):
                index.attach_objects(self.objects)
        #: object-set version the kNN/range caches were last valid for
        self._objects_version = self.objects.version if self.objects is not None else 0

    # ------------------------------------------------------------------
    # Snapshots (persistence, :mod:`repro.storage`)
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(cls, path, *, space=None, **engine_kwargs) -> "QueryEngine":
        """Warm-start an engine from a snapshot file — zero rebuild.

        The snapshot's index, object set and (for trees) the restored
        :class:`ObjectIndex` are wired straight into a new engine.
        ``space``, when given, fingerprint-checks the snapshot against
        the venue the caller intends to serve; remaining keyword
        arguments are the usual engine knobs (``cache=``,
        ``distance_cache_size=``, ...).

        Raises:
            SnapshotError: corrupted file, format-version mismatch, or
                venue-fingerprint mismatch.
        """
        from ..storage.snapshot import load_snapshot  # lazy: storage sits above core

        return load_snapshot(path, space=space).engine(engine_cls=cls, **engine_kwargs)

    def save_snapshot(self, path):
        """Persist this engine's built index + objects to ``path``.

        Serializes the wrapped index and, when present, the live
        :class:`ObjectIndex` (tree engines) or :class:`ObjectSet`
        (baseline engines) — including its ``version`` counter,
        capacity and tombstoned ids. Caches and counters are runtime
        state and are not persisted; a reloaded engine starts cold on
        caches but warm on everything expensive. Returns the written
        header (:class:`~repro.storage.snapshot.SnapshotInfo`).
        """
        from ..storage.snapshot import save_snapshot

        objects = self.object_index if self.object_index is not None else self.objects
        return save_snapshot(path, self.index, objects)

    # ------------------------------------------------------------------
    # Single-query API
    # ------------------------------------------------------------------
    def distance(self, source, target) -> float:
        """Shortest indoor distance between two endpoints."""
        return self._distance(source, target, self.ctx)

    def path(self, source, target) -> PathResult:
        """Shortest path; baselines' ``(distance, doors)`` tuples are
        normalized into :class:`PathResult`."""
        return self._path(source, target, self.ctx)

    def knn(self, query, k: int) -> list[Neighbor]:
        """The k nearest objects to ``query``."""
        return self._knn(query, k, self.ctx)

    def range_query(self, query, radius: float) -> list[Neighbor]:
        """All objects within ``radius`` of ``query``."""
        return self._range(query, radius, self.ctx)

    # ------------------------------------------------------------------
    # Batch API — amortizes endpoint resolution and tree climbs across
    # the request list (a per-batch context is used even when the
    # engine-level caches are disabled).
    # ------------------------------------------------------------------
    def batch_distance(self, pairs) -> list[float]:
        ctx = self._batch_ctx()
        return [self._distance(s, t, ctx) for s, t in pairs]

    def batch_path(self, pairs) -> list[PathResult]:
        ctx = self._batch_ctx()
        return [self._path(s, t, ctx) for s, t in pairs]

    def batch_knn(self, queries, k: int) -> list[list[Neighbor]]:
        ctx = self._batch_ctx()
        return [self._knn(q, k, ctx) for q in queries]

    def batch_range(self, queries, radius: float) -> list[list[Neighbor]]:
        ctx = self._batch_ctx()
        return [self._range(q, radius, ctx) for q in queries]

    # ------------------------------------------------------------------
    # Dynamic object updates — maintain the object store incrementally
    # and invalidate only the object-dependent caches (kNN/range). The
    # distance/path caches and the query context never depend on the
    # object set and survive every update.
    # ------------------------------------------------------------------
    def insert_object(self, location: IndoorPoint, label: str = "", category: str = "") -> int:
        """Add an object at ``location``; returns its new id."""
        return self.update(UpdateOp("insert", location=location, label=label, category=category))

    def delete_object(self, object_id: int) -> None:
        """Remove an object (its id is tombstoned, never reused)."""
        self.update(UpdateOp("delete", object_id=object_id))

    def move_object(self, object_id: int, location: IndoorPoint) -> None:
        """Relocate an object to ``location``."""
        self.update(UpdateOp("move", object_id=object_id, location=location))

    def update(self, op: UpdateOp):
        """Apply one :class:`~repro.model.objects.UpdateOp`.

        Tree engines update their :class:`ObjectIndex` in place (leaf
        lists, sorted access lists and subtree counts, paper §3.4);
        baseline engines mutate the object set and re-attach it. Either
        way the kNN/range result caches are invalidated once.
        """
        result = self._apply_update(op)
        self._updates += 1
        self._invalidate_object_caches()
        return result

    def batch_update(self, ops) -> list:
        """Apply a list of update ops with a single invalidation event.

        Results are element-wise identical to calling :meth:`update` per
        op; batching only amortizes the cache flush and (for baselines)
        the re-attachment of the object set.
        """
        results = [self._apply_update(op) for op in ops]
        self._updates += len(results)
        if results:
            self._invalidate_object_caches()
        return results

    def _apply_update(self, op: UpdateOp):
        if self.objects is None:
            raise QueryError("engine has no object set; pass objects= to QueryEngine")
        if self.object_index is not None:
            return self.object_index.apply(op)
        return self.objects.apply(op)

    def _invalidate_object_caches(self) -> None:
        """Flush kNN/range caches and re-wire baseline object structures.

        Counters are untouched — they are lifetime totals; only the
        cached entries (and the engine's notion of the current object
        version) change.
        """
        self._objects_version = self.objects.version if self.objects is not None else 0
        if self._mx_objects is not None:
            self._mx_objects = DistMxObjects(self.index, self.objects)
        elif not self._is_tree and hasattr(self.index, "attach_objects"):
            self.index.attach_objects(self.objects)
        if self._knn_cache is not None:
            self._knn_cache.clear()
            self._range_cache.clear()
            self._invalidations += 1

    def _check_object_version(self) -> None:
        """Lazily catch object mutations made behind the engine's back
        (directly on the ObjectSet/ObjectIndex) before serving a
        cached object-dependent result."""
        if self.objects is not None and self.objects.version != self._objects_version:
            self._invalidate_object_caches()

    def _new_ctx(self) -> QueryContext:
        return QueryContext(
            self.index,
            endpoint_cache=LRUCache(self._context_cache_size),
            climb_cache=LRUCache(self._context_cache_size),
            search_cache=LRUCache(self._context_cache_size),
        )

    def _batch_ctx(self) -> QueryContext | None:
        if self.ctx is not None:
            return self.ctx
        if self._is_tree:
            return QueryContext(self.index)  # per-batch amortization only
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _distance(self, source, target, ctx) -> float:
        self._counts["distance"] += 1
        cache = self._dist_cache
        if cache is None:
            return self._raw_distance(source, target, ctx)
        key = _sym_key(endpoint_key(source), endpoint_key(target))
        hit = cache.get(key, _MISSING)
        if hit is not _MISSING:
            return hit
        d = self._raw_distance(source, target, ctx)
        cache[key] = d
        return d

    def _raw_distance(self, source, target, ctx) -> float:
        if self._is_tree:
            return self.index.shortest_distance(source, target, ctx)
        return self.index.shortest_distance(source, target)

    def _path(self, source, target, ctx) -> PathResult:
        self._counts["path"] += 1
        cache = self._path_cache
        if cache is None:
            return self._raw_path(source, target, ctx)
        key = (endpoint_key(source), endpoint_key(target))
        hit = cache.get(key, _MISSING)
        if hit is not _MISSING:
            return hit
        res = self._raw_path(source, target, ctx)
        cache[key] = res
        return res

    def _raw_path(self, source, target, ctx) -> PathResult:
        index = self.index
        if self._is_tree:
            return index.shortest_path(source, target, ctx)
        if isinstance(index, DijkstraOracle):
            dist, doors = index.shortest_path_doors(source, target)
        elif hasattr(index, "shortest_path"):
            dist, doors = index.shortest_path(source, target)
        else:
            raise QueryError(f"{type(index).__name__} does not support path queries")
        return PathResult(dist, list(doors))

    def _knn(self, query, k: int, ctx) -> list[Neighbor]:
        self._counts["knn"] += 1
        self._check_object_version()
        cache = self._knn_cache
        if cache is None:
            return self._raw_knn(query, k, ctx)
        key = (endpoint_key(query), k)
        hit = cache.get(key, _MISSING)
        if hit is not _MISSING:
            return list(hit)
        res = self._raw_knn(query, k, ctx)
        cache[key] = tuple(res)
        return res

    def _raw_knn(self, query, k: int, ctx) -> list[Neighbor]:
        index = self.index
        if self._is_tree:
            if self.object_index is None:
                raise QueryError("engine has no object set; pass objects= to QueryEngine")
            return index.knn(self.object_index, query, k, ctx)
        if isinstance(index, DijkstraOracle):
            if self.objects is None:
                raise QueryError("engine has no object set; pass objects= to QueryEngine")
            ranked = index.knn(query, self.objects, k)
        elif self._mx_objects is not None:
            ranked = self._mx_objects.knn(query, k)
        elif hasattr(index, "knn"):
            ranked = index.knn(query, k)
        else:
            raise QueryError(f"{type(index).__name__} does not support kNN queries")
        return [Neighbor(object_id=oid, distance=d) for d, oid in ranked]

    def _range(self, query, radius: float, ctx) -> list[Neighbor]:
        self._counts["range"] += 1
        self._check_object_version()
        cache = self._range_cache
        if cache is None:
            return self._raw_range(query, radius, ctx)
        key = (endpoint_key(query), radius)
        hit = cache.get(key, _MISSING)
        if hit is not _MISSING:
            return list(hit)
        res = self._raw_range(query, radius, ctx)
        cache[key] = tuple(res)
        return res

    def _raw_range(self, query, radius: float, ctx) -> list[Neighbor]:
        index = self.index
        if self._is_tree:
            if self.object_index is None:
                raise QueryError("engine has no object set; pass objects= to QueryEngine")
            return index.range_query(self.object_index, query, radius, ctx)
        if isinstance(index, DijkstraOracle):
            if self.objects is None:
                raise QueryError("engine has no object set; pass objects= to QueryEngine")
            ranked = index.range_query(query, self.objects, radius)
        elif self._mx_objects is not None:
            ranked = self._mx_objects.range_query(query, radius)
        elif hasattr(index, "range_query"):
            ranked = index.range_query(query, radius)
        else:
            raise QueryError(f"{type(index).__name__} does not support range queries")
        return [Neighbor(object_id=oid, distance=d) for d, oid in ranked]

    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        """A snapshot of all engine counters.

        Returns a fresh :class:`EngineStats` (see its docstring for the
        per-field meaning and monotonicity guarantees). The snapshot is
        never mutated afterwards — safe to keep and compare against a
        later one. Every field is a lifetime total: neither
        :meth:`clear_caches` nor update invalidation resets any counter;
        they only drop cached entries.
        """
        s = EngineStats(
            distance_queries=self._counts["distance"],
            path_queries=self._counts["path"],
            knn_queries=self._counts["knn"],
            range_queries=self._counts["range"],
            updates=self._updates,
            invalidations=self._invalidations,
        )
        if self._dist_cache is not None:
            s.distance_hits = self._dist_cache.hits
            s.distance_misses = self._dist_cache.misses
            s.path_hits = self._path_cache.hits
            s.path_misses = self._path_cache.misses
            s.knn_hits = self._knn_cache.hits
            s.knn_misses = self._knn_cache.misses
            s.range_hits = self._range_cache.hits
            s.range_misses = self._range_cache.misses
        if self.ctx is not None:
            s.endpoint_hits = self.ctx.endpoint_hits
            s.endpoint_misses = self.ctx.endpoint_misses
            s.climb_hits = self.ctx.climb_hits
            s.climb_misses = self.ctx.climb_misses
            s.search_hits = self.ctx.search_hits
            s.search_misses = self.ctx.search_misses
        return s

    def clear_caches(self) -> None:
        """Drop cached state (counters keep their lifetime totals)."""
        if self.ctx is not None:
            fresh = self._new_ctx()
            fresh.endpoint_hits = self.ctx.endpoint_hits
            fresh.endpoint_misses = self.ctx.endpoint_misses
            fresh.climb_hits = self.ctx.climb_hits
            fresh.climb_misses = self.ctx.climb_misses
            fresh.search_hits = self.ctx.search_hits
            fresh.search_misses = self.ctx.search_misses
            self.ctx = fresh
        for cache in (self._dist_cache, self._path_cache, self._knn_cache, self._range_cache):
            if cache is not None:
                cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.index, "index_name", type(self.index).__name__)
        return f"QueryEngine({name}, cache={'on' if self.cache_enabled else 'off'})"
