"""QueryEngine: a uniform, cache-accelerated front end for any index.

The engine wraps one built index — :class:`~repro.core.tree.IPTree`,
:class:`~repro.core.viptree.VIPTree`, or any baseline from
:mod:`repro.baselines` — behind one API:

* ``distance`` / ``path`` / ``knn`` / ``range_query`` — single queries,
* ``batch_distance`` / ``batch_path`` / ``batch_knn`` / ``batch_range``
  — request lists that amortize per-query setup (endpoint resolution,
  leaf lookup, tree climbs) across the batch,
* ``update`` / ``batch_update`` (plus ``insert_object`` /
  ``delete_object`` / ``move_object``) — dynamic object updates that
  maintain the object index incrementally and invalidate **only** the
  object-dependent result caches (kNN/range); distance/path caches and
  the query context survive, because they never depend on objects. For
  tree indexes the kNN/range invalidation is further **leaf-scoped**:
  each cached entry is tagged with the conservative set of leaves that
  could contribute to its answer (the bound-ball closure), and an
  update drops only the entries tagged with the leaf(s) it touched —
  see :mod:`repro.engine.invalidation`,
* ``stats()`` — a monotone snapshot of query counts, update counts and
  cache hit/miss counters.

Two cache layers (both optional via ``cache=False``):

* a :class:`~repro.core.context.QueryContext` shared with the core query
  algorithms (endpoint resolution + tree-climb reuse, tree indexes
  only), and
* engine-level :class:`~repro.engine.cache.LRUCache` result caches: an
  LRU **door-to-door / point-to-point distance cache** (symmetric keys)
  plus kNN, range and path result caches.

Caching never changes answers — batch results are element-wise identical
to the single-query APIs, which in turn match the index called directly.
Cached result objects are shared; treat them as immutable.

Thread safety
-------------
By default an engine is **single-threaded** (zero locking overhead).
Constructed with ``thread_safe=True`` it becomes safe for concurrent
readers with exclusive writers — the contract :mod:`repro.serving`
builds on:

* ``distance``/``path``/``knn``/``range_query`` (and the batch
  variants) may be called from any number of threads concurrently,
* ``update``/``batch_update`` (and the insert/delete/move
  conveniences) take the **write side** of an internal
  :class:`~repro.engine.locking.RWLock`, excluding every in-flight
  kNN/range query while the leaf-attached object index mutates
  (distance/path queries never read object state and are not blocked),
* all caches and counters are guarded by one internal mutex, so
  ``stats()`` returns a **race-free, consistent snapshot** and counter
  sums are exact once threads are quiescent,
* each serving thread gets its **own** :class:`QueryContext`
  (endpoint/climb/search caches are per-thread; ``stats()`` aggregates
  their counters), so the core query algorithms never share mutable
  search state across threads.

The only operation that remains outside the contract is mutating the
:class:`ObjectSet` *behind the engine's back* while queries are in
flight — route concurrent updates through the engine's update
endpoints (the lazy version check still catches out-of-band mutation,
but only between queries, exactly as in single-threaded mode).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields
from time import perf_counter

from ..baselines.distmx import DistanceMatrix, DistMxObjects
from ..baselines.oracle import DijkstraOracle
from ..core.context import QueryContext, endpoint_key
from ..core.objects_index import ObjectIndex
from ..core.results import Neighbor, PathResult, QueryStats
from ..core.tree import IPTree
from ..exceptions import QueryError
from ..kernels import resolve_kernels
from ..model.entities import IndoorPoint
from ..model.objects import UpdateOp
from ..obs.registry import counter_entry, gauge_entry
from ..obs.stats import StatsDoc
from .cache import LRUCache
from .invalidation import TaggedLRUCache
from .locking import NULL_LOCK, NULL_RWLOCK, RWLock

_MISSING = object()


@dataclass(slots=True)
class EngineStats(StatsDoc):
    """Monotone engine counters — a snapshot returned by
    :meth:`QueryEngine.stats`.

    Every field is a lifetime total that only ever grows over the
    engine's life: queries, updates and hit/miss counters are never
    reset — not by :meth:`QueryEngine.clear_caches` and not by update
    invalidation, both of which drop cached *entries* but preserve the
    counters. Snapshot copies are therefore safe to keep around and
    subtract across batches.

    Field-by-field:

    * ``distance_queries`` / ``path_queries`` / ``knn_queries`` /
      ``range_queries`` — queries served per kind, counted whether they
      hit or miss a cache (and also when caching is disabled).
    * ``updates`` — object-update operations applied through
      ``update``/``batch_update``/``insert_object``/``delete_object``/
      ``move_object``. Zero for engines that never mutate objects.
    * ``scoped_invalidations`` / ``full_invalidations`` — object-cache
      invalidation *events*, split by scope. A **scoped** event drops
      only the kNN/range entries tagged with the leaf(s) the update
      touched (tree engines with ``invalidation="scoped"``, the
      default); a **full** event flushes both caches entirely (baseline
      engines, ``invalidation="full"``, and every out-of-band
      stale-version detection). One event per single ``update``, one
      per ``batch_update`` call (that is the batch amortization), one
      per stale-version detection. Both stay zero when ``cache=False``
      (there is nothing to flush). The legacy ``invalidations``
      property — and the ``"invalidations"`` key in :meth:`to_doc` —
      is their sum.
    * ``invalidation_entries_dropped`` — cached kNN/range *entries*
      removed by invalidation events (scoped and full alike). The gap
      between this and cache occupancy over time is exactly what
      leaf-scoped invalidation saves.
    * ``distance_hits``/``distance_misses`` … ``range_hits``/
      ``range_misses`` — hit/miss pairs of the four engine-level LRU
      result caches. Invalidation does **not** reset them; a query after
      an invalidation simply records a miss when it recomputes.
    * ``endpoint_*`` / ``climb_*`` / ``search_*`` — hit/miss pairs of
      the :class:`~repro.core.context.QueryContext` layers (tree
      indexes only; all zero for baselines and for ``cache=False``).
      These caches are object-independent, so update invalidation
      leaves both their entries and their counters untouched.
    """

    distance_queries: int = 0
    path_queries: int = 0
    knn_queries: int = 0
    range_queries: int = 0
    #: dynamic object updates
    updates: int = 0
    scoped_invalidations: int = 0
    full_invalidations: int = 0
    invalidation_entries_dropped: int = 0
    #: engine-level LRU result caches
    distance_hits: int = 0
    distance_misses: int = 0
    path_hits: int = 0
    path_misses: int = 0
    knn_hits: int = 0
    knn_misses: int = 0
    range_hits: int = 0
    range_misses: int = 0
    #: QueryContext layers (tree indexes only)
    endpoint_hits: int = 0
    endpoint_misses: int = 0
    climb_hits: int = 0
    climb_misses: int = 0
    search_hits: int = 0
    search_misses: int = 0

    @property
    def invalidations(self) -> int:
        """Total invalidation events (scoped + full) — the pre-split
        counter, kept so existing callers and dashboards keep working."""
        return self.scoped_invalidations + self.full_invalidations

    @property
    def queries(self) -> int:
        return (
            self.distance_queries
            + self.path_queries
            + self.knn_queries
            + self.range_queries
        )

    @property
    def hits(self) -> int:
        return (
            self.distance_hits
            + self.path_hits
            + self.knn_hits
            + self.range_hits
        )

    @property
    def misses(self) -> int:
        return (
            self.distance_misses
            + self.path_misses
            + self.knn_misses
            + self.range_misses
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_doc(self) -> dict:
        # explicit base call: dataclass(slots=True) recreates the class,
        # so zero-arg super() would hold a stale __class__ cell
        doc = StatsDoc.to_doc(self)
        # pre-split wire compatibility: consumers of the stats document
        # keep seeing the total event count under the old key
        doc["invalidations"] = self.invalidations
        return doc


def _sym_key(ka: tuple, kb: tuple) -> tuple:
    """Order-independent pair key (indoor distance is symmetric)."""
    return (ka, kb) if ka <= kb else (kb, ka)


def _collect_engine_stats(engine: "QueryEngine"):
    """Registry collector: export :class:`EngineStats` counters as
    registry metrics. Held weakly by the registry — an evicted engine's
    series retire when the engine is garbage-collected."""
    s = engine.stats()
    for f in fields(s):
        yield counter_entry(f"engine_{f.name}_total", getattr(s, f.name))
    # the pre-split series stays exported as the sum of the two scopes
    yield counter_entry("engine_invalidations_total", s.invalidations)
    samples = s.hits + s.misses
    yield gauge_entry("engine_cache_hit_ratio", s.hit_rate, agg="mean",
                      n=max(samples, 1))


class QueryEngine:
    """Serve streams of spatial queries against one built index.

    The engine also serves **dynamic object updates**: see
    :meth:`update` / :meth:`batch_update` and the ``insert_object`` /
    ``delete_object`` / ``move_object`` conveniences. Updates mutate the
    wrapped object store (incrementally for tree indexes) and invalidate
    the kNN/range result caches only.

    Args:
        index: a built :class:`IPTree`/:class:`VIPTree` or any baseline
            exposing ``shortest_distance`` (and optionally
            ``shortest_path``/``knn``/``range_query``).
        objects: the points of interest for kNN/range queries — an
            :class:`ObjectSet`, or a prebuilt :class:`ObjectIndex` for a
            tree index. Omit for distance/path-only engines.
        cache: master switch. ``False`` disables the query context and
            every result cache (each call recomputes from scratch, like
            calling the index directly).
        distance_cache_size: LRU capacity of the distance result cache
            (door-to-door and point pairs share it; keys are symmetric).
        result_cache_size: LRU capacity of each of the kNN / range /
            path result caches.
        context_cache_size: LRU capacity of each of the query context's
            endpoint / climb / search-state caches, so a long-lived
            engine's memory stays bounded under endless distinct
            endpoints. ``0`` means unbounded.
        thread_safe: enable the concurrent-reader contract described in
            the module docstring (an RWLock serializing updates against
            kNN/range queries, a mutex guarding caches/counters, and
            per-thread query contexts). ``False`` — the default — keeps
            the single-threaded fast path entirely lock-free.
        invalidation: update-driven kNN/range cache invalidation
            strategy. ``"scoped"`` (default) tags every cached entry
            with its conservative bound-ball leaf closure and drops
            only the entries tagged with the leaf(s) an update touches
            (tree indexes; cross-leaf moves touch two, out-of-band
            version jumps still fall back to a full flush).
            ``"full"`` restores the old behaviour — every update
            flushes both caches — and is the baseline
            ``benchmarks/bench_invalidation.py`` measures against.
            Non-tree indexes always behave as ``"full"`` (their cached
            answers carry no leaf structure). Answers are identical
            either way; only cache retention changes.
        kernels: query-kernel backend for tree indexes —
            ``"auto"`` (default: numpy when importable, else the python
            reference), ``"numpy"``, ``"python"``, or a backend
            instance (see :mod:`repro.kernels`). Answers are
            bit-identical across backends; only speed changes. Ignored
            for non-tree indexes.
        registry: optional
            :class:`~repro.obs.registry.MetricsRegistry`. When set, the
            engine records per-kind query and update latency histograms
            (``engine_query_seconds{kind=...}`` /
            ``engine_update_seconds``), counts queries by kernel
            backend (``engine_kernel_queries_total{backend=...}``) and
            registers a weakly-held collector exporting every
            :class:`EngineStats` counter plus an
            ``engine_cache_hit_ratio`` gauge. ``None`` (default) keeps
            the hot path entirely instrumentation-free.
    """

    def __init__(
        self,
        index,
        objects=None,
        *,
        cache: bool = True,
        distance_cache_size: int = 65536,
        result_cache_size: int = 8192,
        context_cache_size: int = 16384,
        thread_safe: bool = False,
        invalidation: str = "scoped",
        kernels="auto",
        registry=None,
    ) -> None:
        self.index = index
        self._is_tree = isinstance(index, IPTree)
        if invalidation not in ("scoped", "full"):
            raise QueryError(
                f"invalidation must be 'scoped' or 'full', got {invalidation!r}"
            )
        self.invalidation = invalidation
        self.kernels = resolve_kernels(kernels) if self._is_tree else None
        self.registry = registry
        if registry is not None:
            self._query_timers = {
                kind: registry.histogram("engine_query_seconds", kind=kind)
                for kind in ("distance", "path", "knn", "range")
            }
            self._update_timer = registry.histogram("engine_update_seconds")
            self._inval_timer = registry.histogram("engine_invalidation_seconds")
            if not self._is_tree:
                backend = "none"
            elif self.kernels is None:
                backend = "python"
            else:
                backend = getattr(self.kernels, "name",
                                  type(self.kernels).__name__)
            self._kernel_counter = registry.counter(
                "engine_kernel_queries_total", backend=backend)
            registry.register_collector(self, _collect_engine_stats)
        else:
            self._query_timers = None
            self._update_timer = None
            self._inval_timer = None
            self._kernel_counter = None
        self.cache_enabled = bool(cache)
        self._context_cache_size = context_cache_size
        self.thread_safe = bool(thread_safe)
        self._ctx_enabled = self.cache_enabled and self._is_tree
        if self.thread_safe:
            #: lock order (outermost first): RWLock -> mutex. The mutex
            #: is never held while acquiring the RWLock.
            self._lock = RWLock()
            self._mutex: threading.Lock = threading.Lock()
            self._ctx = None
            self._ctx_local = threading.local()
            #: thread ident -> (thread, context); dead threads' entries
            #: are pruned (counters folded) on the next registration,
            #: so thread churn cannot grow the registry without bound
            self._ctx_registry: dict[int, tuple[threading.Thread, QueryContext]] = {}
            #: counters of retired per-thread contexts (endpoint h/m,
            #: climb h/m, search h/m) — folded into stats()
            self._ctx_base = [0, 0, 0, 0, 0, 0]
            self._ctx_generation = 0
        else:
            self._lock = NULL_RWLOCK
            self._mutex = NULL_LOCK
            self._ctx = self._new_ctx() if self._ctx_enabled else None
        #: leaf-scoped invalidation needs leaf tags, which only tree
        #: answers carry; baselines always flush fully
        self._scoped_enabled = (
            self.cache_enabled and self._is_tree and invalidation == "scoped"
        )
        if self.cache_enabled:
            self._dist_cache = LRUCache(distance_cache_size)
            self._path_cache = LRUCache(result_cache_size)
            self._knn_cache = TaggedLRUCache(result_cache_size)
            self._range_cache = TaggedLRUCache(result_cache_size)
        else:
            self._dist_cache = None
            self._path_cache = None
            self._knn_cache = None
            self._range_cache = None
        self._counts = {"distance": 0, "path": 0, "knn": 0, "range": 0}
        self._updates = 0
        self._scoped_invalidations = 0
        self._full_invalidations = 0
        self._inval_dropped = 0

        # Wire the object set into whatever the index understands.
        self.object_index: ObjectIndex | None = None
        self.objects = None
        self._mx_objects: DistMxObjects | None = None
        if objects is not None:
            if isinstance(objects, ObjectIndex):
                if self._is_tree and objects.tree is not index:
                    raise QueryError("object index was built for a different tree")
                self.objects = objects.objects
                if self._is_tree:
                    self.object_index = objects
            else:
                self.objects = objects
            if self._is_tree and self.object_index is None:
                self.object_index = ObjectIndex(index, self.objects)
            elif isinstance(index, DistanceMatrix):
                self._mx_objects = DistMxObjects(index, self.objects)
            elif hasattr(index, "attach_objects"):
                index.attach_objects(self.objects)
        #: object-set version the kNN/range caches were last valid for
        self._objects_version = self.objects.version if self.objects is not None else 0

    @property
    def lock(self):
        """The engine's RWLock (a no-op stand-in when not thread-safe).

        Embedders serializing external work against updates — e.g. the
        serving router's write-back, which snapshots the live object
        index — hold ``engine.lock.read()`` around it: updates are
        excluded, queries are not. Never acquire it around calls back
        into this engine's update methods (the write side is not
        reentrant).
        """
        return self._lock

    # ------------------------------------------------------------------
    # Query context (single shared instance, or one per serving thread)
    # ------------------------------------------------------------------
    @property
    def ctx(self) -> QueryContext | None:
        """The calling thread's :class:`QueryContext` (or ``None``).

        Single-threaded engines share one long-lived context;
        ``thread_safe=True`` engines lazily create **one context per
        calling thread** (tree searches never share mutable state
        across threads). ``None`` for baselines and ``cache=False``.
        """
        if not self.thread_safe:
            return self._ctx
        if not self._ctx_enabled:
            return None
        local = self._ctx_local
        if getattr(local, "generation", -1) != self._ctx_generation:
            ctx = self._new_ctx()
            with self._mutex:
                # Read the generation under the mutex so a concurrent
                # clear_caches() either sweeps this context or leaves it
                # registered for the new generation — never both.
                local.generation = self._ctx_generation
                self._prune_dead_contexts_locked()
                self._ctx_registry[threading.get_ident()] = (
                    threading.current_thread(), ctx,
                )
            local.ctx = ctx
        return local.ctx

    def _fold_ctx_locked(self, ctx: QueryContext) -> None:
        base = self._ctx_base
        base[0] += ctx.endpoint_hits
        base[1] += ctx.endpoint_misses
        base[2] += ctx.climb_hits
        base[3] += ctx.climb_misses
        base[4] += ctx.search_hits
        base[5] += ctx.search_misses

    def _prune_dead_contexts_locked(self) -> None:
        """Retire contexts of exited threads (fold counters, free their
        caches). Runs once per *new* thread registration, so the
        registry size tracks live threads, not threads ever seen."""
        dead = [ident for ident, (thread, _) in self._ctx_registry.items()
                if not thread.is_alive()]
        for ident in dead:
            _, ctx = self._ctx_registry.pop(ident)
            self._fold_ctx_locked(ctx)

    # ------------------------------------------------------------------
    # Snapshots (persistence, :mod:`repro.storage`)
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(cls, path, *, space=None, mmap: bool = False, **engine_kwargs) -> "QueryEngine":
        """Warm-start an engine from a snapshot file — zero rebuild.

        The snapshot's index, object set and (for trees) the restored
        :class:`ObjectIndex` are wired straight into a new engine.
        ``space``, when given, fingerprint-checks the snapshot against
        the venue the caller intends to serve; ``mmap=True`` maps the
        snapshot's binary section zero-copy into numpy views instead of
        deserializing it (see :func:`repro.storage.load_snapshot`);
        remaining keyword arguments are the usual engine knobs
        (``cache=``, ``distance_cache_size=``, ...).

        Raises:
            SnapshotError: corrupted file, format-version mismatch, or
                venue-fingerprint mismatch.
        """
        from ..storage.snapshot import load_snapshot  # lazy: storage sits above core

        return load_snapshot(path, space=space, mmap=mmap).engine(engine_cls=cls, **engine_kwargs)

    def save_snapshot(self, path):
        """Persist this engine's built index + objects to ``path``.

        Serializes the wrapped index and, when present, the live
        :class:`ObjectIndex` (tree engines) or :class:`ObjectSet`
        (baseline engines) — including its ``version`` counter,
        capacity and tombstoned ids. Caches and counters are runtime
        state and are not persisted; a reloaded engine starts cold on
        caches but warm on everything expensive. Returns the written
        header (:class:`~repro.storage.snapshot.SnapshotInfo`).

        Thread safety: serialization runs under the engine's read
        lock, so the written state is point-in-time consistent —
        concurrent updates wait, concurrent queries do not.
        """
        from ..storage.snapshot import save_snapshot

        with self._lock.read():
            objects = self.object_index if self.object_index is not None else self.objects
            return save_snapshot(path, self.index, objects)

    # ------------------------------------------------------------------
    # Single-query API
    # ------------------------------------------------------------------
    def distance(self, source, target, *, stats=None) -> float:
        """Shortest indoor distance between two endpoints.

        ``stats`` is an optional :class:`~repro.core.results.QueryStats`
        out-parameter — the query's work counters are merged into it
        (``cache_hit`` set on a cache hit; other counters then stay
        zero).

        Thread safety (``thread_safe=True``): callable from any thread
        concurrently; object-independent, so it is never blocked by
        updates."""
        timers = self._query_timers
        if timers is None:
            return self._distance(source, target, self.ctx, stats)
        start = perf_counter()
        try:
            return self._distance(source, target, self.ctx, stats)
        finally:
            timers["distance"].observe(perf_counter() - start)

    def path(self, source, target, *, stats=None) -> PathResult:
        """Shortest path; baselines' ``(distance, doors)`` tuples are
        normalized into :class:`PathResult`. ``stats`` as in
        :meth:`distance`.

        Thread safety: as :meth:`distance` — concurrent-safe, never
        blocked by updates."""
        timers = self._query_timers
        if timers is None:
            return self._path(source, target, self.ctx, stats)
        start = perf_counter()
        try:
            return self._path(source, target, self.ctx, stats)
        finally:
            timers["path"].observe(perf_counter() - start)

    def knn(self, query, k: int, *, stats=None) -> list[Neighbor]:
        """The k nearest objects to ``query``. ``stats`` as in
        :meth:`distance`.

        Thread safety: concurrent-safe; takes the read lock, so it
        observes every update entirely or not at all."""
        timers = self._query_timers
        if timers is None:
            return self._knn(query, k, self.ctx, stats)
        self._kernel_counter.inc()
        start = perf_counter()
        try:
            return self._knn(query, k, self.ctx, stats)
        finally:
            timers["knn"].observe(perf_counter() - start)

    def range_query(self, query, radius: float, *, stats=None) -> list[Neighbor]:
        """All objects within ``radius`` of ``query``. ``stats`` as in
        :meth:`distance`.

        Thread safety: concurrent-safe; takes the read lock, so it
        observes every update entirely or not at all."""
        timers = self._query_timers
        if timers is None:
            return self._range(query, radius, self.ctx, stats)
        self._kernel_counter.inc()
        start = perf_counter()
        try:
            return self._range(query, radius, self.ctx, stats)
        finally:
            timers["range"].observe(perf_counter() - start)

    # ------------------------------------------------------------------
    # Batch API — amortizes endpoint resolution and tree climbs across
    # the request list (a per-batch context is used even when the
    # engine-level caches are disabled). Thread safety: each item
    # acquires the locks independently, so a concurrent update may land
    # between two items of a batch — exactly the semantics of the same
    # requests arriving back-to-back on one connection.
    # ------------------------------------------------------------------
    def batch_distance(self, pairs) -> list[float]:
        """Distances for a list of ``(source, target)`` pairs.

        Thread safety: concurrent-safe; never blocked by updates."""
        ctx = self._batch_ctx()
        return [self._distance(s, t, ctx) for s, t in pairs]

    def batch_path(self, pairs) -> list[PathResult]:
        """Paths for a list of ``(source, target)`` pairs.

        Thread safety: concurrent-safe; never blocked by updates."""
        ctx = self._batch_ctx()
        return [self._path(s, t, ctx) for s, t in pairs]

    def batch_knn(self, queries, k: int) -> list[list[Neighbor]]:
        """kNN for each query point.

        Thread safety: concurrent-safe; each item takes the read lock
        independently, so updates may land between items (never within
        one)."""
        ctx = self._batch_ctx()
        return [self._knn(q, k, ctx) for q in queries]

    def batch_range(self, queries, radius: float) -> list[list[Neighbor]]:
        """Range results for each query point.

        Thread safety: as :meth:`batch_knn`."""
        ctx = self._batch_ctx()
        return [self._range(q, radius, ctx) for q in queries]

    # ------------------------------------------------------------------
    # Dynamic object updates — maintain the object store incrementally
    # and invalidate only the object-dependent caches (kNN/range). The
    # distance/path caches and the query context never depend on the
    # object set and survive every update.
    # ------------------------------------------------------------------
    # Each convenience delegates to :meth:`update` and inherits its
    # thread-safety guarantee (exclusive write lock per op).
    def insert_object(self, location: IndoorPoint, label: str = "", category: str = "") -> int:
        """Add an object at ``location``; returns its new id."""
        return self.update(UpdateOp("insert", location=location, label=label, category=category))

    def delete_object(self, object_id: int) -> None:
        """Remove an object (its id is tombstoned, never reused)."""
        self.update(UpdateOp("delete", object_id=object_id))

    def move_object(self, object_id: int, location: IndoorPoint) -> None:
        """Relocate an object to ``location``."""
        self.update(UpdateOp("move", object_id=object_id, location=location))

    def update(self, op: UpdateOp):
        """Apply one :class:`~repro.model.objects.UpdateOp`.

        Tree engines update their :class:`ObjectIndex` in place (leaf
        lists, sorted access lists and subtree counts, paper §3.4);
        baseline engines mutate the object set and re-attach it. Either
        way the kNN/range result caches see exactly one invalidation
        event — leaf-scoped for tree engines (only the entries tagged
        with the touched leaf(s) drop; a cross-leaf move touches two),
        a full flush otherwise.

        Thread safety: takes the engine's write lock — no kNN/range
        query observes a half-applied update, and no update runs while
        such a query reads the object index.
        """
        timer = self._update_timer
        start = perf_counter() if timer is not None else 0.0
        with self._lock.write():
            if self._scoped_enabled:
                result, leaves = self._apply_update_scoped(op)
            else:
                result, leaves = self._apply_update(op), None
            with self._mutex:
                self._updates += 1
                istart = perf_counter()
                self._invalidate_object_caches_locked(leaves)
                idur = perf_counter() - istart
        self._observe_invalidation(idur)
        if timer is not None:
            timer.observe(perf_counter() - start)
        return result

    def batch_update(self, ops) -> list:
        """Apply a list of update ops with a single invalidation event.

        Results are element-wise identical to calling :meth:`update` per
        op; batching only amortizes the cache flush and (for baselines)
        the re-attachment of the object set.

        Thread safety: the whole batch runs under the write lock —
        concurrent queries see the object population either before the
        batch or after it, never in between.
        """
        timer = self._update_timer
        start = perf_counter() if timer is not None else 0.0
        idur = 0.0
        with self._lock.write():
            if self._scoped_enabled:
                # one scoped event over the union of touched leaves;
                # any op without a leaf attribution poisons to a full
                # flush (None), matching QueryStats.merge semantics
                results = []
                leaves: frozenset | None = frozenset()
                for op in ops:
                    result, op_leaves = self._apply_update_scoped(op)
                    results.append(result)
                    if leaves is not None:
                        leaves = None if op_leaves is None else leaves | op_leaves
            else:
                results = [self._apply_update(op) for op in ops]
                leaves = None
            with self._mutex:
                self._updates += len(results)
                if results:
                    istart = perf_counter()
                    self._invalidate_object_caches_locked(leaves)
                    idur = perf_counter() - istart
        if results:
            self._observe_invalidation(idur)
        if timer is not None:
            timer.observe(perf_counter() - start)
        return results

    def _apply_update(self, op: UpdateOp):
        if self.objects is None:
            raise QueryError("engine has no object set; pass objects= to QueryEngine")
        if self.object_index is not None:
            return self.object_index.apply(op)
        return self.objects.apply(op)

    def _apply_update_scoped(self, op: UpdateOp):
        """Apply ``op`` and attribute it to the leaf(s) whose object
        population changed: ``(result, leaves)`` with ``leaves`` a
        frozenset of leaf ids, or ``None`` when the op cannot be
        attributed (the caller then falls back to a full flush).

        Deletes and moves read the *pre-apply* leaf (the object may
        leave it); inserts and moves read the post-apply leaf. A
        same-leaf move therefore attributes to exactly one leaf, a
        cross-leaf move to two.
        """
        oi = self.object_index
        if oi is None:
            return self._apply_update(op), None
        before = None
        if op.kind in ("delete", "move") and op.object_id is not None:
            try:
                before = oi.leaf_of_object(op.object_id)
            except QueryError:
                before = None  # unknown id: let apply() raise its error
        result = self._apply_update(op)
        if op.kind == "insert":
            leaves = {oi.leaf_of_object(result)}
        elif op.kind == "delete":
            leaves = {before}
        elif op.kind == "move":
            leaves = {before, oi.leaf_of_object(op.object_id)}
        else:  # pragma: no cover - apply() rejects unknown kinds
            return result, None
        if None in leaves:
            return result, None
        return result, frozenset(leaves)

    def _invalidate_object_caches_locked(self, leaves: frozenset | None = None) -> None:
        """Invalidate the kNN/range caches for one update event and
        re-wire baseline object structures.

        ``leaves`` carries the update's leaf attribution: a frozenset
        drops only the entries tagged with (at least) one of those
        leaves — plus ALL-tagged entries, whose dependency set is
        unbounded — while ``None`` flushes both caches entirely (the
        baseline path, ``invalidation="full"``, and out-of-band version
        jumps).

        Caller holds the mutex (trivially true single-threaded).
        Hit/miss/eviction counters are untouched — they are lifetime
        totals; only the cached entries, the invalidation counters and
        the engine's notion of the current object version change.
        """
        self._objects_version = self.objects.version if self.objects is not None else 0
        if self._mx_objects is not None:
            self._mx_objects = DistMxObjects(self.index, self.objects)
        elif not self._is_tree and hasattr(self.index, "attach_objects"):
            self.index.attach_objects(self.objects)
        if self._knn_cache is not None:
            if leaves is not None and self._scoped_enabled:
                dropped = self._knn_cache.invalidate_leaves(leaves)
                dropped += self._range_cache.invalidate_leaves(leaves)
                self._scoped_invalidations += 1
            else:
                dropped = self._knn_cache.invalidate_all()
                dropped += self._range_cache.invalidate_all()
                self._full_invalidations += 1
            self._inval_dropped += dropped

    def _observe_invalidation(self, seconds: float) -> None:
        """Record one invalidation event's duration — outside the engine
        mutex, because the registry's collector path takes the mutex via
        :meth:`stats` while holding its own lock."""
        timer = self._inval_timer
        if timer is not None and self._knn_cache is not None:
            timer.observe(seconds)

    def _check_object_version(self) -> None:
        """Lazily catch object mutations made behind the engine's back
        (directly on the ObjectSet/ObjectIndex) before serving a
        cached object-dependent result."""
        if self.objects is None or self.objects.version == self._objects_version:
            return
        idur = None
        with self._mutex:
            # double-checked so concurrent readers racing on the same
            # stale version produce exactly one invalidation event; the
            # out-of-band mutation carries no leaf attribution, so this
            # is always a full flush
            if self.objects.version != self._objects_version:
                istart = perf_counter()
                self._invalidate_object_caches_locked()
                idur = perf_counter() - istart
        if idur is not None:
            self._observe_invalidation(idur)

    def _new_ctx(self) -> QueryContext:
        return QueryContext(
            self.index,
            endpoint_cache=LRUCache(self._context_cache_size),
            climb_cache=LRUCache(self._context_cache_size),
            search_cache=LRUCache(self._context_cache_size),
            kernels=self.kernels,
        )

    def _batch_ctx(self) -> QueryContext | None:
        if self.ctx is not None:
            return self.ctx
        if self._is_tree:
            # per-batch amortization only
            return QueryContext(self.index, kernels=self.kernels)
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _distance(self, source, target, ctx, stats=None) -> float:
        # Distance queries never read object state, so they skip the
        # RWLock entirely — only the cache/counter mutex is taken.
        cache = self._dist_cache
        if cache is None:
            with self._mutex:
                self._counts["distance"] += 1
            return self._raw_distance(source, target, ctx, stats)
        key = _sym_key(endpoint_key(source), endpoint_key(target))
        with self._mutex:
            self._counts["distance"] += 1
            hit = cache.get(key, _MISSING)
        if hit is not _MISSING:
            if stats is not None:
                stats.cache_hit = True
            return hit
        d = self._raw_distance(source, target, ctx, stats)
        with self._mutex:
            cache[key] = d
        return d

    def _raw_distance(self, source, target, ctx, stats=None) -> float:
        if self._is_tree:
            if stats is None:
                return self.index.shortest_distance(source, target, ctx, kernels=self.kernels)
            result = self.index.distance_query(source, target, ctx, kernels=self.kernels)
            stats.merge(result.stats)
            return result.distance
        return self.index.shortest_distance(source, target)

    def _path(self, source, target, ctx, stats=None) -> PathResult:
        # Like _distance: object-independent, no RWLock needed.
        cache = self._path_cache
        if cache is None:
            with self._mutex:
                self._counts["path"] += 1
            res = self._raw_path(source, target, ctx)
            if stats is not None:
                stats.merge(res.stats)
            return res
        key = (endpoint_key(source), endpoint_key(target))
        with self._mutex:
            self._counts["path"] += 1
            hit = cache.get(key, _MISSING)
        if hit is not _MISSING:
            if stats is not None:
                stats.cache_hit = True
            return hit
        res = self._raw_path(source, target, ctx)
        if stats is not None:
            stats.merge(res.stats)
        with self._mutex:
            cache[key] = res
        return res

    def _raw_path(self, source, target, ctx) -> PathResult:
        index = self.index
        if self._is_tree:
            return index.shortest_path(source, target, ctx)
        if isinstance(index, DijkstraOracle):
            dist, doors = index.shortest_path_doors(source, target)
        elif hasattr(index, "shortest_path"):
            dist, doors = index.shortest_path(source, target)
        else:
            raise QueryError(f"{type(index).__name__} does not support path queries")
        return PathResult(dist, list(doors))

    def _knn(self, query, k: int, ctx, stats=None) -> list[Neighbor]:
        # Object-dependent: the whole query (version check, cache
        # consultation, tree search over the object index) runs under
        # the read lock so no update mutates the embedding mid-search.
        with self._lock.read():
            self._check_object_version()
            cache = self._knn_cache
            if cache is None:
                with self._mutex:
                    self._counts["knn"] += 1
                return self._raw_knn(query, k, ctx, stats)
            key = (endpoint_key(query), k)
            with self._mutex:
                self._counts["knn"] += 1
                hit = cache.get(key, _MISSING)
            if hit is not _MISSING:
                if stats is not None:
                    stats.cache_hit = True
                return list(hit)
            if self._scoped_enabled:
                # private stats capture the answer's bound-ball leaf
                # closure; the entry is tagged with it so updates to
                # other leaves leave it cached (None = tag ALL)
                qstats = QueryStats()
                res = self._raw_knn(query, k, ctx, qstats, collect_leaves=True)
                if stats is not None:
                    stats.merge(qstats)
                with self._mutex:
                    cache.put(key, tuple(res), qstats.result_leaves)
            else:
                res = self._raw_knn(query, k, ctx, stats)
                with self._mutex:
                    cache[key] = tuple(res)
            return res

    def _raw_knn(self, query, k: int, ctx, stats=None,
                 collect_leaves: bool = False) -> list[Neighbor]:
        index = self.index
        if self._is_tree:
            if self.object_index is None:
                raise QueryError("engine has no object set; pass objects= to QueryEngine")
            return index.knn(self.object_index, query, k, ctx, kernels=self.kernels,
                             stats=stats, collect_leaves=collect_leaves)
        if isinstance(index, DijkstraOracle):
            if self.objects is None:
                raise QueryError("engine has no object set; pass objects= to QueryEngine")
            ranked = index.knn(query, self.objects, k)
        elif self._mx_objects is not None:
            ranked = self._mx_objects.knn(query, k)
        elif hasattr(index, "knn"):
            ranked = index.knn(query, k)
        else:
            raise QueryError(f"{type(index).__name__} does not support kNN queries")
        return [Neighbor(object_id=oid, distance=d) for d, oid in ranked]

    def _range(self, query, radius: float, ctx, stats=None) -> list[Neighbor]:
        # Object-dependent: runs under the read lock, like _knn.
        with self._lock.read():
            self._check_object_version()
            cache = self._range_cache
            if cache is None:
                with self._mutex:
                    self._counts["range"] += 1
                return self._raw_range(query, radius, ctx, stats)
            key = (endpoint_key(query), radius)
            with self._mutex:
                self._counts["range"] += 1
                hit = cache.get(key, _MISSING)
            if hit is not _MISSING:
                if stats is not None:
                    stats.cache_hit = True
                return list(hit)
            if self._scoped_enabled:
                # see _knn: tag the entry with its radius-ball closure
                qstats = QueryStats()
                res = self._raw_range(query, radius, ctx, qstats,
                                      collect_leaves=True)
                if stats is not None:
                    stats.merge(qstats)
                with self._mutex:
                    cache.put(key, tuple(res), qstats.result_leaves)
            else:
                res = self._raw_range(query, radius, ctx, stats)
                with self._mutex:
                    cache[key] = tuple(res)
            return res

    def _raw_range(self, query, radius: float, ctx, stats=None,
                   collect_leaves: bool = False) -> list[Neighbor]:
        index = self.index
        if self._is_tree:
            if self.object_index is None:
                raise QueryError("engine has no object set; pass objects= to QueryEngine")
            return index.range_query(self.object_index, query, radius, ctx, kernels=self.kernels,
                                     stats=stats, collect_leaves=collect_leaves)
        if isinstance(index, DijkstraOracle):
            if self.objects is None:
                raise QueryError("engine has no object set; pass objects= to QueryEngine")
            ranked = index.range_query(query, self.objects, radius)
        elif self._mx_objects is not None:
            ranked = self._mx_objects.range_query(query, radius)
        elif hasattr(index, "range_query"):
            ranked = index.range_query(query, radius)
        else:
            raise QueryError(f"{type(index).__name__} does not support range queries")
        return [Neighbor(object_id=oid, distance=d) for d, oid in ranked]

    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        """A snapshot of all engine counters.

        Returns a fresh :class:`EngineStats` (see its docstring for the
        per-field meaning and monotonicity guarantees). The snapshot is
        never mutated afterwards — safe to keep and compare against a
        later one. Every field is a lifetime total: neither
        :meth:`clear_caches` nor update invalidation resets any counter;
        they only drop cached entries.

        Thread safety: the snapshot is taken under the engine mutex, so
        it is internally consistent even while other threads query and
        update; once those threads are quiescent the counters sum
        exactly (per-thread context counters are aggregated).
        """
        with self._mutex:
            s = EngineStats(
                distance_queries=self._counts["distance"],
                path_queries=self._counts["path"],
                knn_queries=self._counts["knn"],
                range_queries=self._counts["range"],
                updates=self._updates,
                scoped_invalidations=self._scoped_invalidations,
                full_invalidations=self._full_invalidations,
                invalidation_entries_dropped=self._inval_dropped,
            )
            if self._dist_cache is not None:
                s.distance_hits = self._dist_cache.hits
                s.distance_misses = self._dist_cache.misses
                s.path_hits = self._path_cache.hits
                s.path_misses = self._path_cache.misses
                s.knn_hits = self._knn_cache.hits
                s.knn_misses = self._knn_cache.misses
                s.range_hits = self._range_cache.hits
                s.range_misses = self._range_cache.misses
            if self.thread_safe:
                if self._ctx_enabled:
                    totals = list(self._ctx_base)
                    for _, ctx in self._ctx_registry.values():
                        totals[0] += ctx.endpoint_hits
                        totals[1] += ctx.endpoint_misses
                        totals[2] += ctx.climb_hits
                        totals[3] += ctx.climb_misses
                        totals[4] += ctx.search_hits
                        totals[5] += ctx.search_misses
                    (s.endpoint_hits, s.endpoint_misses, s.climb_hits,
                     s.climb_misses, s.search_hits, s.search_misses) = totals
            elif self._ctx is not None:
                s.endpoint_hits = self._ctx.endpoint_hits
                s.endpoint_misses = self._ctx.endpoint_misses
                s.climb_hits = self._ctx.climb_hits
                s.climb_misses = self._ctx.climb_misses
                s.search_hits = self._ctx.search_hits
                s.search_misses = self._ctx.search_misses
        return s

    def clear_caches(self) -> None:
        """Drop cached state (counters keep their lifetime totals).

        Thread safety: safe to call concurrently with queries; a
        thread-safe engine retires every per-thread context (folding
        its counters into the aggregate) and each serving thread
        transparently gets a fresh one on its next query.
        """
        with self._mutex:
            if self.thread_safe:
                if self._ctx_enabled:
                    for _, ctx in self._ctx_registry.values():
                        self._fold_ctx_locked(ctx)
                    self._ctx_registry.clear()
                    self._ctx_generation += 1
            elif self._ctx is not None:
                fresh = self._new_ctx()
                fresh.endpoint_hits = self._ctx.endpoint_hits
                fresh.endpoint_misses = self._ctx.endpoint_misses
                fresh.climb_hits = self._ctx.climb_hits
                fresh.climb_misses = self._ctx.climb_misses
                fresh.search_hits = self._ctx.search_hits
                fresh.search_misses = self._ctx.search_misses
                self._ctx = fresh
            for cache in (self._dist_cache, self._path_cache, self._knn_cache, self._range_cache):
                if cache is not None:
                    cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.index, "index_name", type(self.index).__name__)
        return f"QueryEngine({name}, cache={'on' if self.cache_enabled else 'off'})"
