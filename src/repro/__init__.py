"""repro — a reproduction of "VIP-Tree: An Effective Index for Indoor
Spatial Queries" (Shao, Cheema, Taniar, Lu; PVLDB 10(4), 2016).

Public API highlights:

* :class:`IndoorSpaceBuilder` / :class:`IndoorSpace` — model indoor venues
  (rooms, hallways, staircases, lifts, outdoor connections).
* :class:`IPTree` / :class:`VIPTree` — the paper's indexes; build with
  ``VIPTree.build(space)`` and query shortest distances/paths, kNN and
  ranges.
* :class:`ObjectIndex` — embed points of interest for kNN/range queries.
* :mod:`repro.baselines` — DistMx, DistAw/DistAw++, G-tree and ROAD
  comparison indexes.
* :mod:`repro.storage` — snapshot store: persist built indexes to
  versioned, integrity-checked files and warm-start engines without
  rebuild (``QueryEngine.from_snapshot``, ``SnapshotCatalog``).
* :mod:`repro.serving` — concurrent multi-venue serving: thread-safe
  engines behind a ``VenueRouter`` engine pool and a worker-thread
  ``ServingFrontend`` with bounded-queue backpressure.
* :mod:`repro.datasets` — synthetic venue generators (MC/Men/CL families)
  and query workloads.

Quickstart::

    from repro import IndoorSpaceBuilder, VIPTree, IndoorPoint

    b = IndoorSpaceBuilder(name="tiny")
    hall = b.add_hallway(floor=0)
    office = b.add_room(floor=0)
    d0 = b.add_exterior_door(hall, x=0, y=0)
    d1 = b.add_door(hall, office, x=5, y=0)
    space = b.build()

    tree = VIPTree.build(space)
    dist = tree.shortest_distance(IndoorPoint(office, 6.0, 1.0), d0)
"""

from .core import (
    DEFAULT_MIN_DEGREE,
    DistanceResult,
    DistanceTable,
    IPTree,
    Neighbor,
    ObjectIndex,
    PathResult,
    QueryContext,
    QueryStats,
    TreeStats,
    VIPTree,
)
from .exceptions import (
    ConstructionError,
    DisconnectedVenueError,
    QueryError,
    ReproError,
    VenueError,
)
from .model import (
    DEFAULT_DELTA,
    IndoorObject,
    IndoorPoint,
    IndoorSpace,
    IndoorSpaceBuilder,
    ObjectSet,
    PartitionCategory,
    PartitionKind,
    Point,
    Rect,
    UpdateOp,
    build_ab_graph,
    build_d2d_graph,
    load_space,
    make_object_set,
    save_space,
)

__version__ = "1.0.0"

__all__ = [
    "ConstructionError",
    "DEFAULT_DELTA",
    "DEFAULT_MIN_DEGREE",
    "DisconnectedVenueError",
    "DistanceResult",
    "DistanceTable",
    "IPTree",
    "IndoorObject",
    "IndoorPoint",
    "IndoorSpace",
    "IndoorSpaceBuilder",
    "Neighbor",
    "ObjectIndex",
    "ObjectSet",
    "PartitionCategory",
    "PartitionKind",
    "PathResult",
    "Point",
    "QueryContext",
    "QueryError",
    "QueryStats",
    "Rect",
    "ReproError",
    "TreeStats",
    "UpdateOp",
    "VIPTree",
    "VenueError",
    "build_ab_graph",
    "build_d2d_graph",
    "load_space",
    "make_object_set",
    "save_space",
    "__version__",
]
