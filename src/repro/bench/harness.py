"""Shared experiment machinery: per-venue index/workload caches + timing.

A :class:`VenueContext` lazily builds everything an experiment may need
for one venue (D2D graph, the two trees, all baselines, object sets and
query workloads) and caches it so the Fig 8-11 experiments don't rebuild
indexes repeatedly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..baselines import (
    DijkstraOracle,
    DistAwPlusPlus,
    DistAware,
    DistanceMatrix,
    GTree,
    Road,
)
from ..core import IPTree, ObjectIndex, VIPTree
from ..datasets import load_venue, random_objects, random_pairs
from ..model.d2d import build_d2d_graph

#: doors above which DistMx / DistAw++ construction is skipped — mirrors
#: the paper, where the matrix "cannot be built on venues larger than
#: Men-2".
DISTMX_MAX_DOORS = 4_000


@dataclass(slots=True)
class TimingResult:
    """Average per-query latency over a workload."""

    mean_us: float
    total_s: float
    queries: int


def time_queries(fn, workload, repeat: int = 1) -> TimingResult:
    """Run ``fn(*args)`` over a workload and report the mean latency."""
    n = 0
    start = time.perf_counter()
    for _ in range(repeat):
        for args in workload:
            fn(*args)
            n += 1
    total = time.perf_counter() - start
    return TimingResult(mean_us=total / max(1, n) * 1e6, total_s=total, queries=n)


class VenueContext:
    """Lazily built indexes and workloads for one venue."""

    def __init__(self, name: str, profile: str = "small", t: int = 2):
        self.name = name
        self.profile = profile
        self.t = t
        self.space = load_venue(name, profile)
        self.d2d = build_d2d_graph(self.space)
        self._cache: dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get(self, key: str, builder):
        if key not in self._cache:
            self._cache[key] = builder()
        return self._cache[key]

    @property
    def iptree(self) -> IPTree:
        return self._get("iptree", lambda: IPTree.build(self.space, t=self.t, d2d=self.d2d))

    @property
    def viptree(self) -> VIPTree:
        return self._get("viptree", lambda: VIPTree.build(self.space, t=self.t, d2d=self.d2d))

    @property
    def distmx(self) -> DistanceMatrix | None:
        if self.space.num_doors > DISTMX_MAX_DOORS:
            return None
        return self._get("distmx", lambda: DistanceMatrix(self.space, self.d2d))

    @property
    def distaw(self) -> DistAware:
        return self._get("distaw", lambda: DistAware(self.space, self.d2d))

    @property
    def distawpp(self) -> DistAwPlusPlus | None:
        if self.distmx is None:
            return None
        return self._get(
            "distawpp",
            lambda: DistAwPlusPlus(self.space, self.d2d, matrix=self.distmx),
        )

    @property
    def gtree(self) -> GTree:
        return self._get("gtree", lambda: GTree(self.space, self.d2d))

    @property
    def road(self) -> Road:
        return self._get("road", lambda: Road(self.space, self.d2d))

    @property
    def oracle(self) -> DijkstraOracle:
        return self._get("oracle", lambda: DijkstraOracle(self.space, self.d2d))

    # ------------------------------------------------------------------
    def pairs(self, count: int, seed: int = 99):
        return self._get(
            f"pairs-{count}-{seed}", lambda: random_pairs(self.space, count, seed)
        )

    def objects(self, count: int, seed: int = 17):
        return self._get(
            f"objects-{count}-{seed}", lambda: random_objects(self.space, count, seed)
        )

    def object_index(self, tree_kind: str, count: int, seed: int = 17) -> ObjectIndex:
        tree = self.viptree if tree_kind == "vip" else self.iptree
        return self._get(
            f"oi-{tree_kind}-{count}-{seed}",
            lambda: ObjectIndex(tree, self.objects(count, seed)),
        )

    def queries(self, count: int, seed: int = 41):
        """Query points for kNN/range (sources of random pairs)."""
        return [s for s, _ in self.pairs(count, seed)]


def build_contexts(
    names: list[str], profile: str = "small"
) -> dict[str, VenueContext]:
    return {name: VenueContext(name, profile) for name in names}
