"""Benchmark harness: per-figure experiments and the bench CLI."""

from .experiments import EXPERIMENTS
from .harness import VenueContext, build_contexts, time_queries
from .reporting import Table

__all__ = ["EXPERIMENTS", "Table", "VenueContext", "build_contexts", "time_queries"]
