"""Plain-text table rendering for the experiment harness.

The benchmark CLI prints the same rows/series the paper's figures and
tables report, as aligned text tables (plus optional markdown for
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_value(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3f}"
    if isinstance(v, int):
        return f"{v:,}"
    return str(v)


@dataclass(slots=True)
class Table:
    """One printable experiment table."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def render(self) -> str:
        cells = [[format_value(v) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(row)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(format_value(v) for v in row) + " |")
        if self.notes:
            lines.append("")
            lines.append(f"*{self.notes}*")
        return "\n".join(lines)
