"""The paper's evaluation, experiment by experiment (§4, Tables 1-2,
Figures 7-11).

Each ``exp_*`` function regenerates the rows/series of one table or
figure and returns :class:`~repro.bench.reporting.Table` objects. The
CLI (``python -m repro.bench``) prints them; ``EXPERIMENTS.md`` records
a reference run against the paper's reported shapes.

Absolute latencies are pure-Python and therefore ~2 orders of magnitude
above the paper's C++ numbers; the comparisons (who wins, by what
factor, where trends bend) are the reproduction target (DESIGN.md §5).
"""

from __future__ import annotations

import time

from ..core import IPTree, ObjectIndex, VIPTree
from ..datasets import VENUE_NAMES, distance_bucketed_pairs, table2
from .harness import VenueContext, time_queries
from .reporting import Table

#: default workload sizes per profile (the paper uses 10,000 queries; we
#: scale with the pure-Python runtime)
QUERY_COUNTS = {"tiny": 30, "small": 120, "paper": 400}
OBJECT_COUNTS = {"tiny": 8, "small": 50, "paper": 50}


def _contexts(venues, profile):
    return {name: VenueContext(name, profile) for name in venues}


# ----------------------------------------------------------------------
# Table 1 — complexity parameters (measured)
# ----------------------------------------------------------------------
def exp_table1(profile: str = "small", venues=VENUE_NAMES) -> list[Table]:
    t = Table(
        "Table 1 (measured): tree parameters per venue",
        ["venue", "D doors", "M leaves", "height", "rho (avg AD)", "max AD",
         "f (avg fanout)", "alpha (avg sup.)", "max sup."],
        notes="paper reports rho, f < 4 on average and max superior doors ~8",
    )
    for name in venues:
        ctx = VenueContext(name, profile)
        s = ctx.viptree.stats()
        t.add_row(
            name, ctx.space.num_doors, s.num_leaves, s.height,
            s.avg_access_doors, s.max_access_doors, s.avg_fanout,
            s.avg_superior_doors, s.max_superior_doors,
        )
    return [t]


# ----------------------------------------------------------------------
# Table 2 — venue statistics
# ----------------------------------------------------------------------
def exp_table2(profile: str = "small", venues=VENUE_NAMES) -> list[Table]:
    t = Table(
        f"Table 2: venues at profile '{profile}' (paper counts alongside)",
        ["venue", "doors", "rooms", "edges", "floors", "avg out-deg",
         "paper doors", "paper rooms", "paper edges"],
        notes="'paper' profile approximates the paper's counts; others are scaled",
    )
    for row in table2(profile):
        if row["name"] not in venues:
            continue
        t.add_row(
            row["name"], row["doors"], row["rooms"], row["edges"],
            row["floors"], row["avg_out_degree"],
            row["paper_doors"], row["paper_rooms"], row["paper_edges"],
        )
    return [t]


# ----------------------------------------------------------------------
# Fig 7 — effect of the minimum degree t (on CL, as in the paper)
# ----------------------------------------------------------------------
def exp_fig7(profile: str = "small", venue: str = "CL") -> list[Table]:
    construction = Table(
        f"Fig 7(a): effect of minimum degree t on VIP-Tree construction ({venue})",
        ["t", "memory (MB)", "indexing time (s)"],
        notes="paper: memory and indexing time grow with t",
    )
    querying = Table(
        f"Fig 7(b): effect of t on VIP-Tree query time ({venue})",
        ["t", "shortest distance (us)", "kNN k=5 (us)"],
        notes="paper: distance time flat in t; kNN grows with t",
    )
    n_queries = QUERY_COUNTS[profile]
    n_objects = OBJECT_COUNTS[profile]
    for t in (2, 10, 20, 60, 100):
        ctx = VenueContext(venue, profile, t=t)
        tree = ctx.viptree
        construction.add_row(t, tree.memory_bytes() / 1e6, tree.build_seconds)
        pairs = ctx.pairs(n_queries)
        dist_t = time_queries(lambda s, q: tree.shortest_distance(s, q), pairs)
        oi = ctx.object_index("vip", n_objects)
        knn_t = time_queries(lambda q: tree.knn(oi, q, 5), [(q,) for q in ctx.queries(n_queries)])
        querying.add_row(t, dist_t.mean_us, knn_t.mean_us)
    return [construction, querying]


# ----------------------------------------------------------------------
# Fig 8 — indexing cost
# ----------------------------------------------------------------------
def exp_fig8(profile: str = "small", venues=VENUE_NAMES) -> list[Table]:
    build_t = Table(
        "Fig 8(a): index construction time (ms)",
        ["venue", "IP-Tree", "VIP-Tree", "G-Tree", "ROAD", "DistMx"],
        notes="paper: DistMx hours vs <2 min for the trees; DistMx skipped above "
        "the door cap (as the paper could not build it beyond Men-2)",
    )
    size_t = Table(
        "Fig 8(b): index size (MB)",
        ["venue", "DistAw", "IP-Tree", "VIP-Tree", "G-Tree", "ROAD", "DistMx"],
        notes="paper: DistMx largest, DistAw smallest, trees comparable to DistAw",
    )
    for name in venues:
        ctx = VenueContext(name, profile)
        ip, vip, gt, rd = ctx.iptree, ctx.viptree, ctx.gtree, ctx.road
        mx = ctx.distmx
        build_t.add_row(
            name,
            ip.build_seconds * 1e3,
            vip.build_seconds * 1e3,
            gt.build_seconds * 1e3,
            rd.build_seconds * 1e3,
            mx.build_seconds * 1e3 if mx is not None else "n/a",
        )
        size_t.add_row(
            name,
            ctx.distaw.memory_bytes() / 1e6,
            ip.memory_bytes() / 1e6,
            vip.memory_bytes() / 1e6,
            gt.memory_bytes() / 1e6,
            rd.memory_bytes() / 1e6,
            mx.memory_bytes() / 1e6 if mx is not None else "n/a",
        )
    return [build_t, size_t]


# ----------------------------------------------------------------------
# Fig 9 — shortest distance queries
# ----------------------------------------------------------------------
def exp_fig9(profile: str = "small", venues=VENUE_NAMES) -> list[Table]:
    n = QUERY_COUNTS[profile]
    pairs_t = Table(
        "Fig 9(a): avg door pairs considered per query",
        ["venue", "DistMx--", "DistMx", "VIP-Tree (superior pairs)"],
        notes="paper: the no-through optimization cuts pairs ~5x; VIP slightly fewer",
    )
    time_t = Table(
        "Fig 9(b): shortest distance query time (us)",
        ["venue", "VIP-Tree", "IP-Tree", "DistAw", "DistMx", "G-Tree", "ROAD"],
        notes="paper: VIP ~ DistMx << IP << G-Tree/ROAD/DistAw (orders of magnitude)",
    )
    for name in venues:
        ctx = VenueContext(name, profile)
        workload = ctx.pairs(n)
        mx = ctx.distmx
        if mx is not None:
            unopt = sum(mx.distance_query(s, t, optimized=False)[1] for s, t in workload)
            opt = sum(mx.distance_query(s, t, optimized=True)[1] for s, t in workload)
        vip_pairs = sum(
            ctx.viptree.distance_query(s, t).stats.superior_pairs for s, t in workload
        )
        pairs_t.add_row(
            name,
            unopt / n if mx is not None else "n/a",
            opt / n if mx is not None else "n/a",
            vip_pairs / n,
        )
        row = [name]
        for index in (ctx.viptree, ctx.iptree, ctx.distaw):
            row.append(time_queries(index.shortest_distance, workload).mean_us)
        row.append(
            time_queries(mx.shortest_distance, workload).mean_us if mx is not None else "n/a"
        )
        row.append(time_queries(ctx.gtree.shortest_distance, workload).mean_us)
        row.append(time_queries(ctx.road.shortest_distance, workload).mean_us)
        time_t.add_row(*row)
    return [pairs_t, time_t]


# ----------------------------------------------------------------------
# Fig 10 — shortest path queries
# ----------------------------------------------------------------------
def exp_fig10(profile: str = "small", venues=VENUE_NAMES, bucket_venue: str = "Men-2") -> list[Table]:
    n = QUERY_COUNTS[profile]
    time_t = Table(
        "Fig 10(a): shortest path query time (us)",
        ["venue", "VIP-Tree", "IP-Tree", "DistAw", "DistMx", "G-Tree", "ROAD"],
        notes="paper: path overhead negligible vs distance queries for all methods",
    )
    for name in venues:
        ctx = VenueContext(name, profile)
        workload = ctx.pairs(n)
        mx = ctx.distmx
        row = [name]
        row.append(time_queries(ctx.viptree.shortest_path, workload).mean_us)
        row.append(time_queries(ctx.iptree.shortest_path, workload).mean_us)
        row.append(time_queries(ctx.distaw.shortest_path, workload).mean_us)
        row.append(
            time_queries(mx.shortest_path, workload).mean_us if mx is not None else "n/a"
        )
        row.append(time_queries(ctx.gtree.shortest_path, workload).mean_us)
        row.append(time_queries(ctx.road.shortest_path, workload).mean_us)
        time_t.add_row(*row)

    per_bucket = max(10, n // 6)
    ctx = VenueContext(bucket_venue, profile)
    buckets = distance_bucketed_pairs(ctx.space, per_bucket, d2d=ctx.d2d)
    bucket_t = Table(
        f"Fig 10(b): shortest path time vs s-t distance ({bucket_venue}, us)",
        ["bucket", "pairs", "VIP-Tree", "IP-Tree", "DistAw", "DistMx", "G-Tree", "ROAD"],
        notes="paper: DistAw cost grows ~100x Q1->Q5; VIP/DistMx flat; IP grows to Q3 then flattens",
    )
    mx = ctx.distmx
    for i, bucket in enumerate(buckets):
        if not bucket:
            bucket_t.add_row(f"Q{i + 1}", 0, *["n/a"] * 6)
            continue
        row = [f"Q{i + 1}", len(bucket)]
        row.append(time_queries(ctx.viptree.shortest_path, bucket).mean_us)
        row.append(time_queries(ctx.iptree.shortest_path, bucket).mean_us)
        row.append(time_queries(ctx.distaw.shortest_path, bucket).mean_us)
        row.append(
            time_queries(mx.shortest_path, bucket).mean_us if mx is not None else "n/a"
        )
        row.append(time_queries(ctx.gtree.shortest_path, bucket).mean_us)
        row.append(time_queries(ctx.road.shortest_path, bucket).mean_us)
        bucket_t.add_row(*row)
    return [time_t, bucket_t]


# ----------------------------------------------------------------------
# Fig 11 — kNN and range queries
# ----------------------------------------------------------------------
def _knn_row(ctx: VenueContext, queries, k: int, n_objects: int) -> list:
    """One (venue, k, #objects) configuration across all algorithms."""
    objects = ctx.objects(n_objects)
    oi_ip = ctx.object_index("ip", n_objects)
    oi_vip = ctx.object_index("vip", n_objects)
    ctx.gtree.attach_objects(objects)
    ctx.road.attach_objects(objects)
    ctx.distaw.attach_objects(objects)
    row = []
    row.append(time_queries(lambda q: ctx.gtree.knn(q, k), [(q,) for q in queries]).mean_us)
    row.append(time_queries(lambda q: ctx.road.knn(q, k), [(q,) for q in queries]).mean_us)
    row.append(time_queries(lambda q: ctx.iptree.knn(oi_ip, q, k), [(q,) for q in queries]).mean_us)
    row.append(time_queries(lambda q: ctx.viptree.knn(oi_vip, q, k), [(q,) for q in queries]).mean_us)
    row.append(time_queries(lambda q: ctx.distaw.knn(q, k), [(q,) for q in queries]).mean_us)
    pp = ctx.distawpp
    if pp is not None:
        pp.attach_objects(objects)
        row.append(time_queries(lambda q: pp.knn(q, k), [(q,) for q in queries]).mean_us)
    else:
        row.append("n/a")
    return row


ALGO_HEADERS = ["G-Tree", "ROAD", "IP-Tree", "VIP-Tree", "DistAw", "DistAw++"]


def exp_fig11_knn(profile: str = "small", venues=VENUE_NAMES, knn_venue: str = "Men-2") -> list[Table]:
    n = QUERY_COUNTS[profile]
    n_objects = OBJECT_COUNTS[profile]
    ctx = VenueContext(knn_venue, profile)
    queries = ctx.queries(n)

    by_k = Table(
        f"Fig 11(a): kNN time vs k ({knn_venue}, {n_objects} objects, us)",
        ["k", *ALGO_HEADERS],
        notes="paper: IP ~ VIP, both orders of magnitude below the rest",
    )
    for k in (1, 5, 10):
        by_k.add_row(k, *_knn_row(ctx, queries, k, n_objects))

    by_objects = Table(
        f"Fig 11(b): kNN time vs #objects ({knn_venue}, k=5, us)",
        ["#objects", *ALGO_HEADERS],
        notes="paper: all algorithms get faster with more objects",
    )
    for count in (10, 50, 100, 500):
        by_objects.add_row(count, *_knn_row(ctx, queries, 5, count))

    by_venue = Table(
        f"Fig 11(c): kNN time per venue (k=5, {n_objects} objects, us)",
        ["venue", *ALGO_HEADERS],
    )
    for name in venues:
        vctx = VenueContext(name, profile)
        by_venue.add_row(name, *_knn_row(vctx, vctx.queries(n), 5, n_objects))
    return [by_k, by_objects, by_venue]


def exp_fig11_range(
    profile: str = "small", venues=VENUE_NAMES, radius: float = 100.0
) -> list[Table]:
    n = QUERY_COUNTS[profile]
    n_objects = OBJECT_COUNTS[profile]
    t = Table(
        f"Fig 11(d): range query time per venue (r={radius:g}m, {n_objects} objects, us)",
        ["venue", *ALGO_HEADERS],
        notes="paper: IP ~ VIP outperform all competitors by orders of magnitude",
    )
    for name in venues:
        ctx = VenueContext(name, profile)
        queries = ctx.queries(n)
        objects = ctx.objects(n_objects)
        oi_ip = ctx.object_index("ip", n_objects)
        oi_vip = ctx.object_index("vip", n_objects)
        ctx.gtree.attach_objects(objects)
        ctx.road.attach_objects(objects)
        ctx.distaw.attach_objects(objects)
        row = [name]
        row.append(time_queries(lambda q: ctx.gtree.range_query(q, radius), [(q,) for q in queries]).mean_us)
        row.append(time_queries(lambda q: ctx.road.range_query(q, radius), [(q,) for q in queries]).mean_us)
        row.append(time_queries(lambda q: ctx.iptree.range_query(oi_ip, q, radius), [(q,) for q in queries]).mean_us)
        row.append(time_queries(lambda q: ctx.viptree.range_query(oi_vip, q, radius), [(q,) for q in queries]).mean_us)
        row.append(time_queries(lambda q: ctx.distaw.range_query(q, radius), [(q,) for q in queries]).mean_us)
        pp = ctx.distawpp
        if pp is not None:
            pp.attach_objects(objects)
            row.append(time_queries(lambda q: pp.range_query(q, radius), [(q,) for q in queries]).mean_us)
        else:
            row.append("n/a")
        t.add_row(*row)
    return [t]


EXPERIMENTS = {
    "table1": exp_table1,
    "table2": exp_table2,
    "fig7": exp_fig7,
    "fig8": exp_fig8,
    "fig9": exp_fig9,
    "fig10": exp_fig10,
    "fig11knn": exp_fig11_knn,
    "fig11range": exp_fig11_range,
}
