"""Experiment CLI: ``python -m repro.bench [experiment ...]``.

Examples:
    python -m repro.bench table2
    python -m repro.bench fig9 --profile small
    python -m repro.bench all --profile tiny --markdown out.md
"""

from __future__ import annotations

import argparse
import sys
import time

from ..datasets.profiles import PROFILES
from .experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*EXPERIMENTS, "all"],
        help="which experiments to run",
    )
    parser.add_argument(
        "--profile",
        default="small",
        choices=PROFILES,
        help="venue size profile (default: small)",
    )
    parser.add_argument(
        "--markdown",
        metavar="FILE",
        help="also write the tables as markdown to FILE",
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    markdown_chunks: list[str] = []
    for name in names:
        start = time.perf_counter()
        tables = EXPERIMENTS[name](profile=args.profile)
        elapsed = time.perf_counter() - start
        for table in tables:
            print()
            print(table.render())
            markdown_chunks.append(table.to_markdown())
        print(f"\n[{name} completed in {elapsed:.1f}s]")
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write("\n\n".join(markdown_chunks) + "\n")
        print(f"markdown written to {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
