"""Index codec registry: one (encode, decode, build) triple per class.

Every index in the library exposes a complete serialized state through
``to_state()`` / ``from_state(space, state)`` (trees in
:mod:`repro.core`, baselines in :mod:`repro.baselines`). This module is
the registry over those hooks: it maps the canonical index kind (the
class's ``index_name``, e.g. ``"VIP-Tree"``) and its CLI-friendly
aliases (``"viptree"``) to the class and to a default cold builder, so
the snapshot layer and the ``python -m repro.storage`` CLI never
hard-code a class.
"""

from __future__ import annotations

from ..baselines.distaware import DistAware, DistAwPlusPlus
from ..baselines.distmx import DistanceMatrix
from ..baselines.gtree import GTree
from ..baselines.oracle import DijkstraOracle
from ..baselines.road import Road
from ..core.tree import IPTree
from ..core.viptree import VIPTree
from ..exceptions import SnapshotError
from ..model.indoor_space import IndoorSpace

#: canonical kind (== ``index_name``) -> index class. ``kind_of``
#: matches by exact class (not isinstance), so unregistered subclasses
#: fail loudly instead of being encoded as their base.
INDEX_CLASSES: dict[str, type] = {
    cls.index_name: cls
    for cls in (
        VIPTree,
        IPTree,
        DistanceMatrix,
        GTree,
        Road,
        DistAwPlusPlus,
        DistAware,
        DijkstraOracle,
    )
}

#: lowercase aliases accepted by :func:`resolve_kind` (CLI spellings).
_ALIASES: dict[str, str] = {
    "viptree": "VIP-Tree",
    "vip": "VIP-Tree",
    "iptree": "IP-Tree",
    "ip": "IP-Tree",
    "distmx": "DistMx",
    "matrix": "DistMx",
    "gtree": "G-Tree",
    "road": "ROAD",
    "distaw": "DistAw",
    "distaw++": "DistAw++",
    "distawpp": "DistAw++",
    "dijkstra": "Dijkstra",
    "oracle": "Dijkstra",
}
_ALIASES.update({kind.lower(): kind for kind in INDEX_CLASSES})

#: kind -> zero-config cold builder (what ``build_index`` runs when no
#: prebuilt index is supplied).
_BUILDERS = {
    "VIP-Tree": lambda space: VIPTree.build(space),
    "IP-Tree": lambda space: IPTree.build(space),
    "DistMx": lambda space: DistanceMatrix(space),
    "G-Tree": lambda space: GTree(space),
    "ROAD": lambda space: Road(space),
    "DistAw": lambda space: DistAware(space),
    "DistAw++": lambda space: DistAwPlusPlus(space),
    "Dijkstra": lambda space: DijkstraOracle(space),
}


def known_kinds() -> list[str]:
    """Canonical kinds with a registered codec, in registry order."""
    return list(INDEX_CLASSES)


def resolve_kind(name: str) -> str:
    """Normalize a kind name or CLI alias to the canonical kind.

    Raises:
        SnapshotError: unknown kind.
    """
    kind = _ALIASES.get(name.strip().lower())
    if kind is None:
        raise SnapshotError(
            f"unknown index kind {name!r}; expected one of {sorted(set(_ALIASES))}"
        )
    return kind


def kind_of(index) -> str:
    """The canonical kind of a live index instance.

    Resolved by class (not by ``index_name`` alone) so subclasses
    outside the registry still fail loudly instead of being silently
    encoded as their base class.
    """
    for kind, cls in INDEX_CLASSES.items():
        if type(index) is cls:
            return kind
    raise SnapshotError(
        f"no snapshot codec registered for {type(index).__name__}"
    )


def build_index(kind: str, space: IndoorSpace):
    """Cold-build an index of ``kind`` (alias accepted) for a venue."""
    return _BUILDERS[resolve_kind(kind)](space)


def encode_index(index) -> tuple[str, dict]:
    """``(kind, JSON-safe state)`` for any registered index."""
    return kind_of(index), index.to_state()


def decode_index(kind: str, space: IndoorSpace, state: dict):
    """Restore a ready-to-query index from its serialized state."""
    return INDEX_CLASSES[resolve_kind(kind)].from_state(space, state)
