"""Index snapshot store: persist built indexes, warm-start engines.

Index construction is the expensive side of the paper's trade-off
(partitioning, distance matrices, group tables, the VIP-Tree's per-door
materialization); queries are cheap. This subsystem amortizes the build
across process lifetimes:

* :func:`save_snapshot` / :func:`load_snapshot` — serialize a fully
  built index (tree structure, leaf partitions, distance matrices,
  group tables, access lists, plus the object set/index with its
  version counter) into a versioned, integrity-checked file and restore
  it **ready to query, with zero rebuild**,
* :func:`verify_snapshot` / :func:`read_snapshot_info` — integrity and
  header inspection (``deep=True`` cross-checks restored answers
  against the Dijkstra oracle),
* :class:`SnapshotCatalog` — a directory of snapshots keyed by venue
  fingerprint and index kind (multi-venue serving), with
  :meth:`~SnapshotCatalog.engine_for` as the load-or-build warm-start
  entry point,
* :class:`OpLog` (:mod:`repro.storage.oplog`) — a durable, checksummed
  per-venue update log next to each snapshot: warm restart = snapshot
  + log tail, replicas tail it, acknowledged updates survive crashes,
* ``python -m repro.storage`` — ``build`` / ``load`` / ``verify`` /
  ``ls`` CLI over files and catalogs,
* :func:`venue_fingerprint` — the reproducible venue hash snapshots are
  keyed and validated by.

``QueryEngine.from_snapshot(path)`` is the engine-level shortcut for
the single-venue case. Every failure mode raises
:class:`~repro.exceptions.SnapshotError`.
"""

from .catalog import SnapshotCatalog
from .codec import build_index, decode_index, encode_index, known_kinds, resolve_kind
from .oplog import (
    LogRecord,
    OPLOG_SUFFIX,
    OpLog,
    oplog_path,
    scan_oplog,
)
from .snapshot import (
    FORMAT_VERSION,
    SNAPSHOT_SUFFIX,
    Snapshot,
    SnapshotInfo,
    load_snapshot,
    read_snapshot_info,
    save_snapshot,
    venue_fingerprint,
    verify_snapshot,
)

__all__ = [
    "FORMAT_VERSION",
    "LogRecord",
    "OPLOG_SUFFIX",
    "OpLog",
    "SNAPSHOT_SUFFIX",
    "Snapshot",
    "SnapshotCatalog",
    "SnapshotInfo",
    "build_index",
    "oplog_path",
    "scan_oplog",
    "decode_index",
    "encode_index",
    "known_kinds",
    "load_snapshot",
    "read_snapshot_info",
    "resolve_kind",
    "save_snapshot",
    "venue_fingerprint",
    "verify_snapshot",
]
