"""Snapshot CLI: ``python -m repro.storage <build|load|verify|ls>``.

Examples:
    python -m repro.storage build --venue MC --profile tiny --out mc.snap
    python -m repro.storage build --venue Men-2 --profile small \\
        --index viptree --objects 40 --catalog .snapshots
    python -m repro.storage load mc.snap
    python -m repro.storage verify mc.snap --deep
    python -m repro.storage verify --catalog .snapshots
    python -m repro.storage ls --catalog .snapshots

``--venue`` accepts a generator name (MC, MC-2, Men, Men-2, CL, CL-2)
or a path to a venue JSON file written by ``repro.model.save_space``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..bench.reporting import Table
from ..core.objects_index import ObjectIndex
from ..core.tree import IPTree
from ..datasets.profiles import PROFILES
from ..datasets.venues import VENUE_NAMES, load_venue
from ..datasets.workloads import random_objects
from ..exceptions import SnapshotError
from ..model.io_json import load_space
from .catalog import SnapshotCatalog
from .codec import build_index, known_kinds, resolve_kind
from .snapshot import load_snapshot, save_snapshot, verify_snapshot


def _resolve_venue(name: str, profile: str, seed: int | None):
    if name.endswith(".json"):
        return load_space(name)
    return load_venue(name, profile, seed=seed)


def _cmd_build(args) -> int:
    space = _resolve_venue(args.venue, args.profile, args.seed)
    kind = resolve_kind(args.index)
    if args.skip_existing:
        existing = None
        if args.catalog:
            catalog = SnapshotCatalog(args.catalog)
            if catalog.has(space, kind):
                existing = catalog.path_for(space, kind)
        elif Path(args.out).is_file():
            existing = Path(args.out)
        if existing is not None:
            print(f"kept existing {kind} snapshot for {space.name!r}: {existing}")
            return 0
    start = time.perf_counter()
    index = build_index(kind, space)
    build_s = time.perf_counter() - start
    objects = None
    if args.objects > 0:
        object_set = random_objects(
            space, args.objects, seed=17 if args.seed is None else args.seed
        )
        objects = (
            ObjectIndex(index, object_set) if isinstance(index, IPTree) else object_set
        )
    start = time.perf_counter()
    if args.out:
        path = Path(args.out)
        info = save_snapshot(path, index, objects)
    else:
        info = SnapshotCatalog(args.catalog).save(index, objects)
        path = Path(info.path)
    save_s = time.perf_counter() - start
    print(
        f"built {info.kind} for {info.venue!r} in {build_s:.3f}s "
        f"({info.num_doors} doors, {info.num_partitions} partitions"
        + (f", {info.num_objects} objects" if info.num_objects is not None else "")
        + ")"
    )
    print(
        f"saved {path} in {save_s:.3f}s "
        f"({path.stat().st_size:,} bytes, fingerprint {info.fingerprint[:12]})"
    )
    return 0


def _cmd_load(args) -> int:
    space = (
        _resolve_venue(args.venue, args.profile, args.seed) if args.venue else None
    )
    start = time.perf_counter()
    snap = load_snapshot(args.path, space=space)
    load_s = time.perf_counter() - start
    info = snap.info
    print(
        f"loaded {info.kind} for {info.venue!r} in {load_s:.3f}s — ready to query "
        f"(zero rebuild; cold build took {getattr(snap.index, 'build_seconds', 0.0):.3f}s)"
    )
    print(
        f"  venue: {info.num_doors} doors, {info.num_partitions} partitions, "
        f"fingerprint {info.fingerprint[:12]}"
    )
    if snap.objects is not None:
        print(
            f"  objects: {len(snap.objects)} live / capacity {snap.objects.capacity}, "
            f"version {snap.objects.version}, "
            f"object index {'restored' if snap.object_index is not None else 'not stored'}"
        )
    # Prove "ready to query": one distance through the loaded index.
    last = snap.space.num_doors - 1
    d = snap.index.shortest_distance(0, last)
    print(f"  sample query: dist(door 0, door {last}) = {d:.3f}")
    return 0


def _cmd_verify(args) -> int:
    paths = [Path(p) for p in args.paths]
    if args.catalog:
        # glob the files directly — SnapshotCatalog.entries() skips
        # unreadable snapshots, which is exactly what verify must catch
        paths += sorted(Path(args.catalog).rglob("*.snap"))
        if not paths:
            print(f"nothing to verify (no *.snap under {args.catalog})", file=sys.stderr)
            return 2
    if not paths:
        print("nothing to verify (no paths and no --catalog)", file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        try:
            info = verify_snapshot(path, deep=args.deep)
        except SnapshotError as exc:
            failures += 1
            # SnapshotError messages already lead with the path
            print(f"FAIL {exc}", file=sys.stderr)
        else:
            print(
                f"ok   {path} — {info.kind} for {info.venue!r} "
                f"({'deep' if args.deep else 'header+hash'})"
            )
    return 1 if failures else 0


def _cmd_ls(args) -> int:
    entries = SnapshotCatalog(args.catalog).entries()
    if not entries:
        print(f"no snapshots under {args.catalog}")
        return 0
    table = Table(
        title=f"Snapshot catalog {args.catalog}",
        headers=["venue", "kind", "doors", "partitions", "objects", "bytes", "path"],
    )
    for e in entries:
        table.add_row(
            e.venue,
            e.kind,
            e.num_doors,
            e.num_partitions,
            e.num_objects if e.num_objects is not None else "-",
            Path(e.path).stat().st_size,
            str(Path(e.path).relative_to(args.catalog)),
        )
    print(table.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.storage",
        description="Build, inspect and verify index snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="cold-build an index and snapshot it")
    p_build.add_argument("--venue", required=True,
                         help=f"venue name ({', '.join(VENUE_NAMES)}) or venue .json path")
    p_build.add_argument("--profile", default="tiny", choices=PROFILES)
    p_build.add_argument("--index", default="viptree",
                         help=f"index kind (default viptree; known: {', '.join(known_kinds())})")
    p_build.add_argument("--objects", type=int, default=0,
                         help="also embed N random objects (0 = none)")
    p_build.add_argument("--seed", type=int, default=None)
    p_build.add_argument("--skip-existing", action="store_true",
                         help="keep an already-existing snapshot at the destination "
                         "instead of rebuilding (cache-friendly no-op)")
    dest = p_build.add_mutually_exclusive_group(required=True)
    dest.add_argument("--out", help="write the snapshot to this file")
    dest.add_argument("--catalog", help="save into this catalog directory")

    p_load = sub.add_parser("load", help="load a snapshot and run a sample query")
    p_load.add_argument("path")
    p_load.add_argument("--venue", default=None,
                        help="optional venue to fingerprint-check against")
    p_load.add_argument("--profile", default="tiny", choices=PROFILES)
    p_load.add_argument("--seed", type=int, default=None)

    p_verify = sub.add_parser("verify", help="integrity-check snapshot files")
    p_verify.add_argument("paths", nargs="*", help="snapshot files")
    p_verify.add_argument("--catalog", help="also verify every snapshot in this catalog")
    p_verify.add_argument("--deep", action="store_true",
                          help="restore all sections and cross-check vs the Dijkstra oracle")

    p_ls = sub.add_parser("ls", help="list a snapshot catalog")
    p_ls.add_argument("--catalog", required=True)

    args = parser.parse_args(argv)
    try:
        if args.command == "build":
            return _cmd_build(args)
        if args.command == "load":
            return _cmd_load(args)
        if args.command == "verify":
            return _cmd_verify(args)
        return _cmd_ls(args)
    except SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
