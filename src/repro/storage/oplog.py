"""Per-venue update-operation log: the snapshot's durable tail.

Snapshots persist a venue's *full* object state, so between flushes
every acknowledged update lives only in process memory — the serving
layer's documented durability window. The operation log closes it:
the venue's **primary** appends each applied
:class:`~repro.model.objects.UpdateOp` to an append-only, checksummed
file next to the snapshot *before acknowledging it*, so

* a **warm restart** is ``snapshot + log tail`` — load the snapshot,
  replay the records past its object-set version, lose nothing,
* a **replica** tails the same file and applies new records to its own
  engine, serving reads at the primary's heels,
* the durability window shrinks from "one flush interval" to "the
  last fsynced record" — zero acknowledged updates on a crash.

File format — one record per op, strictly version-ordered::

    [u32 payload length][u32 CRC-32 of payload][canonical-JSON payload]
    payload = {"op": <op_to_dict document>, "v": <object-set version
               after applying the op>}

Versions are the :attr:`~repro.model.objects.ObjectSet.version`
counter, which increments by exactly one per applied op — so records
are contiguous, replay targets are exact (`apply everything with
version > engine's current version`), and a gap proves the log was
compacted past the reader's snapshot (re-warm from the snapshot, which
is always at least as new as the compaction floor).

Torn tails are expected, not fatal: a crash mid-append leaves a short
or checksum-invalid final record. :meth:`OpLog.read` stops at the
first damaged record and returns the valid prefix — exactly the ops
that could ever have been acknowledged, since the writer fsyncs before
acking. The writer repairs (truncates) a damaged tail before its next
append so the stream stays parseable forever.

Single-writer by contract: one primary appends; any number of readers
tail concurrently (reads never take the writer's handle). Compaction
(:meth:`OpLog.compact`) is atomic — rewrite-then-rename, the same
discipline snapshots use.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

from ..exceptions import SnapshotError
from ..model.io_json import canonical_dumps, op_from_dict, op_to_dict
from ..model.objects import UpdateOp

#: suffix of a venue's operation log, next to its snapshot:
#: ``vip-tree.snap`` -> ``vip-tree.oplog``
OPLOG_SUFFIX = ".oplog"

_RECORD_HEADER = struct.Struct("!II")  # payload length, CRC-32(payload)
#: sanity ceiling on one record's payload — an op document is tiny;
#: anything larger is garbage read from a damaged region
MAX_RECORD_BYTES = 1 << 20


def oplog_path(snapshot_path: str | Path) -> Path:
    """Where the operation log for ``snapshot_path`` lives."""
    return Path(snapshot_path).with_suffix(OPLOG_SUFFIX)


@dataclass(slots=True, frozen=True)
class LogRecord:
    """One logged operation: the op plus the object-set version its
    application produced."""

    version: int
    op: UpdateOp


@dataclass(slots=True, frozen=True)
class LogScan:
    """Result of scanning a log file: the valid record prefix, how many
    bytes of the file it spans, and whether damaged bytes follow it."""

    records: list[LogRecord]
    valid_bytes: int
    damaged: bool


def _encode_record(version: int, op: UpdateOp) -> bytes:
    payload = canonical_dumps({"op": op_to_dict(op), "v": int(version)})
    raw = payload.encode("utf-8")
    return _RECORD_HEADER.pack(len(raw), zlib.crc32(raw)) + raw


def scan_oplog(path: str | Path) -> LogScan:
    """Parse a log file, tolerating a torn or corrupted tail.

    Returns every record of the longest valid prefix; ``damaged`` is
    ``True`` when bytes follow it (a crash mid-append, a truncated
    copy, or corruption). A missing file is an empty, undamaged log.
    Never raises on content — damage is data here, not an error.
    """
    try:
        blob = Path(path).read_bytes()
    except FileNotFoundError:
        return LogScan(records=[], valid_bytes=0, damaged=False)
    records: list[LogRecord] = []
    offset = 0
    while offset + _RECORD_HEADER.size <= len(blob):
        length, crc = _RECORD_HEADER.unpack_from(blob, offset)
        start = offset + _RECORD_HEADER.size
        end = start + length
        if length > MAX_RECORD_BYTES or end > len(blob):
            break  # torn tail or garbage length
        raw = blob[start:end]
        if zlib.crc32(raw) != crc:
            break  # corrupted record
        try:
            doc = json.loads(raw.decode("utf-8"))
            record = LogRecord(version=int(doc["v"]), op=op_from_dict(doc["op"]))
        except (ValueError, KeyError, TypeError, IndexError):
            break  # checksummed but unparsable — treat as damage
        if record.op is None or (records and record.version != records[-1].version + 1):
            break  # a version gap inside the file is damage, not data
        records.append(record)
        offset = end
    return LogScan(records=records, valid_bytes=offset,
                   damaged=offset < len(blob))


class OpLog:
    """Append/read/compact one venue's operation log file.

    Args:
        path: the log file (see :func:`oplog_path` for the catalog
            convention). Created on first append.
        sync: fsync after every append (default). This is the
            durability guarantee — an acked update survives power loss.
            ``False`` trades that for speed (the OS still sees every
            record immediately, so replicas on the same host keep
            tailing correctly).
        observe: optional callable receiving the wall-clock seconds of
            each append's write+flush+fsync — how the serving layer
            feeds its ``oplog_append_seconds`` latency histogram
            without this module depending on the metrics registry.

    Thread safety: one instance may be shared by the threads of one
    process (append/compact/read serialize on an internal lock). The
    single-writer contract across *processes* is the caller's — the
    cluster routes every update of a venue to its one primary.
    """

    def __init__(self, path: str | Path, *, sync: bool = True,
                 observe=None) -> None:
        self.path = Path(path)
        self.sync = bool(sync)
        self._observe = observe
        self._mutex = threading.Lock()
        self._fh = None
        #: object-set version of the last record this writer appended
        #: (0 until the first append after open/repair)
        self._last_version = 0

    # ------------------------------------------------------------------
    # Reading (any process, any time)
    # ------------------------------------------------------------------
    def read(self, after_version: int = 0) -> list[LogRecord]:
        """Records with ``version > after_version``, oldest first.

        Tolerates a torn/corrupted tail (returns the valid prefix).
        Raises :class:`~repro.exceptions.SnapshotError` when the log
        was compacted *past* ``after_version`` — the caller's snapshot
        predates the log's floor and must be re-warm-started.
        """
        records = scan_oplog(self.path).records
        if records and records[0].version > after_version + 1:
            raise SnapshotError(
                f"{self.path}: log starts at version {records[0].version}, "
                f"caller is at {after_version} — compacted past the reader; "
                "re-warm from the snapshot"
            )
        return [r for r in records if r.version > after_version]

    def tail_signature(self) -> tuple[int, int] | None:
        """A cheap change detector: ``(size, mtime_ns)`` of the file,
        ``None`` when it does not exist. Replicas stat instead of
        re-reading on every request."""
        try:
            st = os.stat(self.path)
        except FileNotFoundError:
            return None
        return (st.st_size, st.st_mtime_ns)

    # ------------------------------------------------------------------
    # Writing (the venue's single primary)
    # ------------------------------------------------------------------
    def append(self, version: int, op: UpdateOp) -> None:
        """Durably append one applied op (fsync before returning when
        ``sync``). ``version`` is the object-set version *after* the op
        was applied; appends must arrive in version order (the caller
        holds its per-venue lock around apply + append).

        Raises:
            SnapshotError: out-of-order version — the caller broke the
                single-writer contract; refusing keeps the log sound.
        """
        with self._mutex:
            fh = self._open_locked()
            if self._last_version and version != self._last_version + 1:
                raise SnapshotError(
                    f"{self.path}: append of version {version} after "
                    f"{self._last_version} — operations must be logged in "
                    "order by exactly one writer"
                )
            start = perf_counter() if self._observe is not None else 0.0
            fh.write(_encode_record(version, op))
            fh.flush()
            if self.sync:
                os.fsync(fh.fileno())
            if self._observe is not None:
                self._observe(perf_counter() - start)
            self._last_version = int(version)

    def compact(self, keep_after_version: int) -> int:
        """Drop records already captured by a snapshot at
        ``keep_after_version``; returns how many were dropped.

        Atomic: survivors are rewritten to a temp file which replaces
        the log in one rename — a reader sees either the old file or
        the new one, never a partial rewrite. Call only *after* the
        snapshot at ``keep_after_version`` is safely on disk, or the
        dropped records' durability dies with them.
        """
        with self._mutex:
            scan = scan_oplog(self.path)
            keep = [r for r in scan.records if r.version > keep_after_version]
            if len(keep) == len(scan.records) and not scan.damaged:
                return 0
            self._close_locked()
            # unique temp name: a just-demoted primary's last compact
            # must not collide with the promoted one's first
            tmp = self.path.with_name(
                f"{self.path.name}.tmp.{os.getpid()}")
            try:
                with open(tmp, "wb") as fh:
                    for record in keep:
                        fh.write(_encode_record(record.version, record.op))
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                tmp.unlink(missing_ok=True)
                raise
            self._last_version = keep[-1].version if keep else 0
            return len(scan.records) - len(keep)

    def close(self) -> None:
        """Close the append handle (idempotent; reopens on next append)."""
        with self._mutex:
            self._close_locked()

    # ------------------------------------------------------------------
    def _open_locked(self):
        if self._fh is None:
            scan = scan_oplog(self.path)
            if scan.damaged:
                # Repair before appending: bytes after the valid prefix
                # were never acknowledged (we fsync before acking), so
                # truncating them loses nothing — and appending after
                # garbage would orphan every later record.
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.path, "ab") as fh:
                    fh.truncate(scan.valid_bytes)
            else:
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
            self._last_version = (
                scan.records[-1].version if scan.records else 0
            )
        return self._fh

    def _close_locked(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"OpLog({self.path.name}, last_version={self._last_version}, "
                f"sync={self.sync})")
