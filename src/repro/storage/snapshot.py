"""Versioned, integrity-checked snapshot files for built indexes.

A snapshot file persists one fully built index — IP-Tree, VIP-Tree or
any baseline — together with the venue it was built for and (optionally)
its object set and leaf-attached :class:`~repro.core.objects_index.ObjectIndex`,
so a later process loads a **ready-to-query** index with zero rebuild.

File layout (all deterministic — saving the same build twice yields
byte-identical files, so snapshot hashes are reproducible)::

    <header JSON>\\n
    <payload: canonical JSON of the body document>
    <zero padding to an 8-byte file offset>
    <binary section: packed numeric arrays, 8-byte aligned>

The binary section (format 2) holds the bulk numerics — distance
matrices, next-hop tables, VIP stores, edge weights — written through
:func:`repro.model.packing.binary_sink`; the JSON payload stores only
compact ``@bin:`` references into it. Because every array sits at an
8-byte-aligned file offset, ``load_snapshot(mmap=True)`` maps the file
and hands the index zero-copy numpy views instead of deserializing
(format-1 files, which inline the arrays as base64, still load — just
without the zero-copy path).

The single-line header carries the magic string, the snapshot format
version, the index kind, the **venue fingerprint** (SHA-256 of the
venue's canonical JSON document) and each section's SHA-256 + byte
length. :func:`load_snapshot` refuses files whose magic/format do not
match, whose sections fail the hash check (truncation, corruption), or
— when the caller supplies the venue they intend to query — whose
fingerprint differs from that venue (a stale snapshot of an edited or
different venue must never serve answers). A snapshot loaded with
``mmap=True`` keeps reading the file after load returns, so
:meth:`Snapshot.reverify` re-hashes both sections through the live
mapping to detect on-disk modification after mapping.

The body document holds ``space`` (venue), ``index`` (the class's
``to_state()`` output, dispatched through :mod:`repro.storage.codec`),
and optional ``objects`` / ``object_index`` sections. Object sets
round-trip with their ``capacity``, tombstoned ids and ``version``
counter intact.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

from ..core.objects_index import ObjectIndex
from ..core.tree import IPTree
from ..exceptions import SnapshotError
from ..model.io_json import (
    canonical_dumps,
    objects_from_dict,
    objects_to_dict,
    space_from_dict,
    space_to_dict,
)
from ..model.indoor_space import IndoorSpace
from ..model.objects import ObjectSet
from ..model.packing import BinaryReader, BinarySink, binary_reader, binary_sink
from .codec import decode_index, encode_index

MAGIC = "repro-index-snapshot"
FORMAT_VERSION = 2
#: formats this library can read (format 1 inlined packed arrays as
#: base64; format 2 moved them to the aligned binary section)
SUPPORTED_FORMATS = (1, 2)

#: every field the parsers read; their absence (despite valid magic and
#: format) must surface as SnapshotError, never KeyError
_REQUIRED_HEADER_KEYS = (
    "kind",
    "venue",
    "fingerprint",
    "payload_sha256",
    "payload_bytes",
    "num_doors",
    "num_partitions",
    "num_objects",
    "has_object_index",
)

#: conventional file suffix (the catalog and CLI use it; not enforced)
SNAPSHOT_SUFFIX = ".snap"


def venue_fingerprint(space: IndoorSpace) -> str:
    """SHA-256 of the venue's canonical JSON document.

    Stable across runs (deterministic dumps) and sensitive to any
    structural edit — moving one door changes the fingerprint, which is
    exactly what invalidates every snapshot built for the old venue.

    The digest is cached on the instance (venues are immutable after
    validation), so the hot warm-start path — fingerprint-checking a
    snapshot against the venue about to be served — costs one attribute
    read after the first call.
    """
    cached = getattr(space, "_venue_fingerprint", None)
    if cached is None:
        cached = hashlib.sha256(
            canonical_dumps(space_to_dict(space)).encode("utf-8")
        ).hexdigest()
        space._venue_fingerprint = cached
    return cached


@dataclass(slots=True, frozen=True)
class SnapshotInfo:
    """The (verified) header of a snapshot file."""

    format: int
    kind: str
    venue: str
    fingerprint: str
    payload_sha256: str
    payload_bytes: int
    num_doors: int
    num_partitions: int
    num_objects: int | None
    has_object_index: bool
    #: wall-clock seconds the cold build took (metadata — excluded from
    #: the hashed payload so snapshot hashes stay reproducible)
    build_seconds: float | None
    library: str
    path: str = ""
    #: byte length / SHA-256 of the out-of-band binary section
    #: (format >= 2; zero/empty for format-1 files)
    binary_bytes: int = 0
    binary_sha256: str = ""

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass(slots=True)
class _SnapshotMapping:
    """The live mmap behind a ``load_snapshot(mmap=True)`` result, with
    enough section geometry to re-verify it in place."""

    mm: object
    path: str
    payload_offset: int
    payload_bytes: int
    payload_sha256: str
    binary_offset: int
    binary_bytes: int
    binary_sha256: str

    def verify(self) -> None:
        """Re-hash both sections through the mapping.

        The mapping is ``MAP_SHARED`` read-only, so writes to the file
        on disk are visible here — this is exactly how modification
        after mapping is detected, per section.
        """
        view = memoryview(self.mm)
        digest = hashlib.sha256(
            view[self.payload_offset : self.payload_offset + self.payload_bytes]
        ).hexdigest()
        if digest != self.payload_sha256:
            raise SnapshotError(
                f"{self.path}: payload section was modified on disk after "
                f"mapping (expected {self.payload_sha256[:12]}…, got {digest[:12]}…)"
            )
        if self.binary_bytes:
            digest = hashlib.sha256(
                view[self.binary_offset : self.binary_offset + self.binary_bytes]
            ).hexdigest()
            if digest != self.binary_sha256:
                raise SnapshotError(
                    f"{self.path}: binary section was modified on disk after "
                    f"mapping (expected {self.binary_sha256[:12]}…, got {digest[:12]}…)"
                )


@dataclass(slots=True)
class Snapshot:
    """A loaded snapshot: venue + ready-to-query index (+ objects)."""

    info: SnapshotInfo
    space: IndoorSpace
    index: object
    objects: ObjectSet | None = None
    object_index: ObjectIndex | None = None
    #: set only for ``mmap=True`` loads: the live mapping the index's
    #: numpy views read from
    mapping: _SnapshotMapping | None = None

    def reverify(self) -> None:
        """Re-check the snapshot's section checksums.

        For an mmap-loaded snapshot this re-hashes the **live mapping**
        — detecting a file modified on disk after mapping, which would
        otherwise silently change query answers. For a regular load it
        re-reads and re-checks the file. Raises :class:`SnapshotError`
        on any mismatch.
        """
        if self.mapping is not None:
            self.mapping.verify()
        else:
            verify_snapshot(self.info.path)

    def engine(self, engine_cls=None, **engine_kwargs):
        """Warm-start a :class:`~repro.engine.engine.QueryEngine`.

        The restored :class:`ObjectIndex` (when present) is handed to
        the engine directly, so not even the object embedding is
        rebuilt. ``engine_cls`` lets engine subclasses warm-start as
        themselves (``MyEngine.from_snapshot`` passes it through).
        """
        if engine_cls is None:
            from ..engine.engine import QueryEngine  # lazy: engine is a higher layer

            engine_cls = QueryEngine
        objects = self.object_index if self.object_index is not None else self.objects
        return engine_cls(self.index, objects, **engine_kwargs)


def _library_version() -> str:
    from .. import __version__

    return __version__


def save_snapshot(path: str | Path, index, objects=None) -> SnapshotInfo:
    """Serialize a built index (and optionally its objects) to ``path``.

    Args:
        path: destination file (parent directories are created).
        index: any registered index instance (trees or baselines).
        objects: optional :class:`ObjectSet`, or a tree's
            :class:`ObjectIndex` — the latter persists the full
            embedding (leaf lists, sorted access lists, subtree counts)
            so the loaded engine skips even the object registration.

    Returns:
        The written header as :class:`SnapshotInfo`.

    Raises:
        SnapshotError: unregistered index class, or an ``ObjectIndex``
            that was built for a different tree than ``index``.
    """
    # Divert packed arrays (distance matrices, VIP stores, edge
    # weights) into the out-of-band binary section while the body
    # document is built; the JSON keeps only @bin: references.
    sink = BinarySink()
    with binary_sink(sink):
        kind, state = encode_index(index)
        # Wall-clock build time is run metadata, not index state: hoist it
        # into the header so the hashed payload is reproducible across runs.
        build_seconds = state.pop("build_seconds", None)
        space = index.space
        body: dict = {"space": space_to_dict(space), "index": state}
        object_set: ObjectSet | None = None
        if isinstance(objects, ObjectIndex):
            if objects.tree is not index:
                raise SnapshotError(
                    "object index was built for a different tree than the "
                    "index being snapshotted"
                )
            object_set = objects.objects
            body["object_index"] = objects.to_state()
        elif isinstance(objects, ObjectSet):
            object_set = objects
        elif objects is not None:
            raise SnapshotError(
                f"objects must be an ObjectSet or ObjectIndex, got {type(objects).__name__}"
            )
        if object_set is not None:
            body["objects"] = objects_to_dict(object_set)
    binary = sink.getvalue()

    try:
        payload = canonical_dumps(body).encode("utf-8")
    except ValueError as exc:
        raise SnapshotError(
            f"{path}: snapshot body contains non-finite JSON numbers — "
            f"pack them via repro.model.packing ({exc})"
        ) from None
    header = {
        "magic": MAGIC,
        "format": FORMAT_VERSION,
        "kind": kind,
        "venue": space.name,
        "fingerprint": venue_fingerprint(space),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
        "binary_sha256": hashlib.sha256(binary).hexdigest() if binary else "",
        "binary_bytes": len(binary),
        "num_doors": space.num_doors,
        "num_partitions": space.num_partitions,
        "num_objects": len(object_set) if object_set is not None else None,
        "has_object_index": "object_index" in body,
        "build_seconds": build_seconds,
        "library": _library_version(),
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    # Atomic publish: a crash mid-write must never leave a truncated
    # file at the canonical path (the catalog treats existence as
    # "snapshot available" and would keep failing to load it). The
    # temp name is unique per writer — replicated shards cold-build
    # the same venue from separate processes, and a shared temp name
    # lets one writer publish another's half-written file.
    tmp = out.with_name(
        f"{out.name}.tmp.{os.getpid()}.{threading.get_ident()}")
    head = canonical_dumps(header).encode("utf-8")
    if binary:
        # Align the header line (newline included) to 8 bytes with JSON
        # whitespace, so the zero padding below depends only on the
        # payload — never on variable-width header fields like
        # build_seconds. Everything after the first newline is then a
        # pure function of the index content, as format-1 files were.
        head += b" " * ((-(len(head) + 1)) % 8)
    prefix = head + b"\n" + payload
    if binary:
        # pad so the binary section (whose arrays are internally
        # 8-aligned) starts at an 8-aligned file offset — page-aligned
        # mmap + aligned offset = aligned numpy views
        prefix += b"\x00" * ((-len(prefix)) % 8)
    try:
        tmp.write_bytes(prefix + binary)
        os.replace(tmp, out)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return _info_from_header(header, out)


def _info_from_header(header: dict, path: Path) -> SnapshotInfo:
    return SnapshotInfo(
        format=header["format"],
        kind=header["kind"],
        venue=header["venue"],
        fingerprint=header["fingerprint"],
        payload_sha256=header["payload_sha256"],
        payload_bytes=header["payload_bytes"],
        num_doors=header["num_doors"],
        num_partitions=header["num_partitions"],
        num_objects=header["num_objects"],
        has_object_index=header["has_object_index"],
        build_seconds=header.get("build_seconds"),
        library=header.get("library", ""),
        path=str(path),
        binary_bytes=int(header.get("binary_bytes") or 0),
        binary_sha256=header.get("binary_sha256") or "",
    )


def _parse_header(path: Path, raw: bytes) -> dict:
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path}: not a snapshot file ({exc})") from None
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise SnapshotError(f"{path}: not a snapshot file (bad magic)")
    if header.get("format") not in SUPPORTED_FORMATS:
        raise SnapshotError(
            f"{path}: unsupported snapshot format {header.get('format')!r} "
            f"(this library reads formats {SUPPORTED_FORMATS}); rebuild the snapshot"
        )
    missing = [k for k in _REQUIRED_HEADER_KEYS if k not in header]
    if missing:
        raise SnapshotError(
            f"{path}: snapshot header is missing fields {missing} — "
            "corrupted or hand-edited header"
        )
    return header


def read_snapshot_info(path: str | Path) -> SnapshotInfo:
    """Parse and validate a snapshot's header without loading the payload."""
    p = Path(path)
    try:
        with p.open("rb") as fh:
            first = fh.readline()
    except OSError as exc:
        raise SnapshotError(f"{p}: cannot read snapshot ({exc})") from None
    return _info_from_header(_parse_header(p, first.rstrip(b"\n")), p)


def _check_sections(path: Path, buf) -> tuple[dict, bytes, memoryview | None, int, int]:
    """Split + integrity-check a snapshot buffer (bytes or mmap).

    Returns ``(header, payload, binary, payload_offset, binary_offset)``
    — ``binary`` is a zero-copy view of the binary section (``None``
    when the file has none).
    """
    view = memoryview(buf)
    nl = buf.find(b"\n")
    if nl < 0:
        raise SnapshotError(f"{path}: not a snapshot file (missing header line)")
    header = _parse_header(path, bytes(view[:nl]))
    payload_offset = nl + 1
    expected = header["payload_bytes"]
    payload = bytes(view[payload_offset : payload_offset + expected])
    if len(payload) != expected:
        raise SnapshotError(
            f"{path}: payload is {len(payload)} bytes, header says "
            f"{expected} — truncated or corrupted snapshot"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["payload_sha256"]:
        raise SnapshotError(
            f"{path}: payload hash mismatch — corrupted snapshot "
            f"(expected {header['payload_sha256'][:12]}…, got {digest[:12]}…)"
        )
    payload_end = payload_offset + expected
    binary_bytes = int(header.get("binary_bytes") or 0)
    if binary_bytes:
        binary_offset = payload_end + ((-payload_end) % 8)
        if len(buf) != binary_offset + binary_bytes:
            raise SnapshotError(
                f"{path}: file is {len(buf)} bytes, header implies "
                f"{binary_offset + binary_bytes} — truncated or corrupted snapshot"
            )
        binary = view[binary_offset : binary_offset + binary_bytes]
        digest = hashlib.sha256(binary).hexdigest()
        if digest != header.get("binary_sha256"):
            raise SnapshotError(
                f"{path}: binary section hash mismatch — corrupted snapshot "
                f"(expected {str(header.get('binary_sha256'))[:12]}…, got {digest[:12]}…)"
            )
    else:
        binary_offset = payload_end
        binary = None
        if len(buf) != payload_end:
            raise SnapshotError(
                f"{path}: payload is {len(buf) - payload_offset} bytes, header says "
                f"{expected} — truncated or corrupted snapshot"
            )
    return header, payload, binary, payload_offset, binary_offset


def load_snapshot(
    path: str | Path, space: IndoorSpace | None = None, *, mmap: bool = False
) -> Snapshot:
    """Load a snapshot back into ready-to-query objects — zero rebuild.

    Args:
        path: snapshot file written by :func:`save_snapshot`.
        space: optional venue the caller intends to query. When given,
            its fingerprint must match the snapshot's (refusing stale or
            mismatched snapshots) and the returned :class:`Snapshot`
            references this exact instance; otherwise the venue embedded
            in the snapshot is restored.
        mmap: map the file read-only instead of reading it, and resolve
            the binary section into **zero-copy numpy views** of the
            mapping — bulk payloads (distance matrices, VIP stores) are
            never deserialized or copied, so warm starts on large venues
            are page-cache-speed. Requires numpy. The returned
            :class:`Snapshot` keeps the mapping alive and exposes
            :meth:`Snapshot.reverify` to detect on-disk modification
            after mapping.

    Raises:
        SnapshotError: bad magic, unsupported format version, integrity
            failure, unknown index kind, or venue-fingerprint mismatch.
    """
    p = Path(path)
    mm = None
    if mmap:
        try:
            import numpy  # noqa: F401  (views need it at query time anyway)
        except ImportError as exc:  # pragma: no cover - numpy is a test dep
            raise SnapshotError(f"{p}: mmap=True requires numpy ({exc})") from None
        import mmap as mmap_mod

        try:
            with p.open("rb") as fh:
                mm = mmap_mod.mmap(fh.fileno(), 0, access=mmap_mod.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise SnapshotError(f"{p}: cannot map snapshot ({exc})") from None
        buf = mm
    else:
        try:
            buf = p.read_bytes()
        except OSError as exc:
            raise SnapshotError(f"{p}: cannot read snapshot ({exc})") from None
    header, payload, binary, payload_offset, binary_offset = _check_sections(p, buf)
    if space is not None:
        fp = venue_fingerprint(space)
        if fp != header["fingerprint"]:
            raise SnapshotError(
                f"{p}: venue fingerprint mismatch — snapshot was built for "
                f"{header['venue']!r} ({header['fingerprint'][:12]}…), caller "
                f"supplied {space.name!r} ({fp[:12]}…); rebuild the snapshot"
            )
    body = json.loads(payload.decode("utf-8"))
    if space is None:
        space = space_from_dict(body["space"])
    reader = BinaryReader(binary, arrays=mm is not None) if binary is not None else None
    with binary_reader(reader):
        index = decode_index(header["kind"], space, body["index"])
        if header.get("build_seconds") is not None:
            # classes route this where it belongs (e.g. DistAw++ proxies it
            # to its nested matrix via a property)
            index.build_seconds = header["build_seconds"]
        objects = (
            objects_from_dict(body["objects"]) if body.get("objects") is not None else None
        )
        object_index = None
        if body.get("object_index") is not None:
            if not isinstance(index, IPTree):
                raise SnapshotError(
                    f"{p}: snapshot has an object_index section but {header['kind']} "
                    "is not a tree index"
                )
            if objects is None:
                raise SnapshotError(
                    f"{p}: snapshot has an object_index section but no objects "
                    "section — corrupted or hand-edited payload"
                )
            object_index = ObjectIndex.from_state(index, objects, body["object_index"])
    mapping = None
    if mm is not None:
        mapping = _SnapshotMapping(
            mm=mm,
            path=str(p),
            payload_offset=payload_offset,
            payload_bytes=header["payload_bytes"],
            payload_sha256=header["payload_sha256"],
            binary_offset=binary_offset,
            binary_bytes=int(header.get("binary_bytes") or 0),
            binary_sha256=header.get("binary_sha256") or "",
        )
    return Snapshot(
        info=_info_from_header(header, p),
        space=space,
        index=index,
        objects=objects,
        object_index=object_index,
        mapping=mapping,
    )


def verify_snapshot(
    path: str | Path, space: IndoorSpace | None = None, deep: bool = False
) -> SnapshotInfo:
    """Check a snapshot's integrity; raise :class:`SnapshotError` if bad.

    The shallow check validates magic, format version and each
    section's length and hash. ``deep=True`` additionally restores every section
    and cross-checks the loaded index:

    * the embedded venue re-fingerprints to the header's fingerprint,
    * restored objects validate against the venue (and the restored
      ``ObjectIndex``, when present, re-counts to the object set),
    * a handful of seeded door-to-door distances match a fresh
      :class:`~repro.baselines.oracle.DijkstraOracle` — a corrupted
      matrix cannot hide behind a correct hash of corrupted bytes.
    """
    p = Path(path)
    if not deep:
        try:
            raw = p.read_bytes()
        except OSError as exc:
            raise SnapshotError(f"{p}: cannot read snapshot ({exc})") from None
        header, _, _, _, _ = _check_sections(p, raw)
        return _info_from_header(header, p)
    snap = load_snapshot(p, space=space)
    if venue_fingerprint(snap.space) != snap.info.fingerprint:
        raise SnapshotError(f"{p}: embedded venue does not match its fingerprint")
    if snap.objects is not None:
        snap.objects.validate(snap.space)
        if (
            snap.object_index is not None
            and snap.object_index.count(snap.index.root_id) != len(snap.objects)
        ):
            raise SnapshotError(
                f"{p}: object index subtree counts disagree with the object set"
            )
    import random

    from ..baselines.oracle import DijkstraOracle

    d2d = getattr(snap.index, "d2d", None) or getattr(snap.index, "graph", None)
    oracle = DijkstraOracle(snap.space, d2d)
    rng = random.Random(0)
    doors = range(snap.space.num_doors)
    for _ in range(4):
        a, b = rng.choice(doors), rng.choice(doors)
        got = snap.index.shortest_distance(a, b)
        want = oracle.shortest_distance(a, b)
        if abs(got - want) > 1e-6:
            raise SnapshotError(
                f"{p}: loaded index answers diverge from the Dijkstra oracle "
                f"(doors {a}->{b}: {got} != {want})"
            )
    return snap.info
