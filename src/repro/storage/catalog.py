"""SnapshotCatalog: a directory of snapshots for many venues.

The seed of multi-venue serving: one catalog directory holds one
subdirectory per *venue fingerprint* (so two venues sharing a name — or
one venue across edits — never collide), each containing one snapshot
per index kind::

    <root>/
      mc-2f9a81c04d3b/
        vip-tree.snap
        distmx.snap
      men-2-77e03a129bf0/
        vip-tree.snap

Keys are ``(venue, kind)``; the venue side is always the fingerprint,
never just the name. :meth:`SnapshotCatalog.engine_for` is the
warm-start entry point a serving process calls per venue: load the
snapshot when one exists, otherwise cold-build, save, and serve.

Thread safety
-------------
A catalog may be shared by many serving threads (that is exactly what
:class:`repro.serving.VenueRouter` does):

* :meth:`load_or_build` / :meth:`engine_for` serialize per catalog
  **slot** (venue fingerprint + kind): when several threads warm-start
  the same venue concurrently, exactly one pays the cold build and
  saves the snapshot — the rest load the file it wrote. Different
  slots proceed fully in parallel.
* :meth:`load`, :meth:`has`, :meth:`entries`, :meth:`path_for` and
  :meth:`venue_dir` are read-only and safe from any thread.
* :meth:`save` is atomic at the file level (the snapshot writer
  replaces the file in one rename), but concurrent *external* writers
  to the same slot are last-writer-wins — route concurrent warm starts
  through :meth:`load_or_build` instead.
"""

from __future__ import annotations

import re
import threading
from pathlib import Path

from ..core.objects_index import ObjectIndex
from ..core.tree import IPTree
from ..exceptions import SnapshotError
from ..model.indoor_space import IndoorSpace
from .codec import build_index, resolve_kind
from .snapshot import (
    SNAPSHOT_SUFFIX,
    Snapshot,
    SnapshotInfo,
    load_snapshot,
    read_snapshot_info,
    save_snapshot,
    venue_fingerprint,
)

#: fingerprint prefix length used in directory names — 12 hex chars
#: (48 bits) is plenty against accidental collision inside one catalog.
_FP_PREFIX = 12


def _slug(name: str) -> str:
    s = re.sub(r"[^a-z0-9]+", "-", name.lower()).strip("-")
    return s or "venue"


def _kind_slug(kind: str) -> str:
    # "+" would be stripped by _slug, colliding DistAw++ with DistAw
    return _slug(kind.replace("+", "p"))


class SnapshotCatalog:
    """Manage the snapshots of many venues under one root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        # Per-slot build locks (see "Thread safety" above). The guard
        # protects the dict itself; each slot lock serializes
        # load_or_build for one (venue fingerprint, kind) pair.
        self._locks_guard = threading.Lock()
        self._slot_locks: dict[str, threading.Lock] = {}

    def _slot_lock(self, path: Path) -> threading.Lock:
        with self._locks_guard:
            return self._slot_locks.setdefault(str(path), threading.Lock())

    # ------------------------------------------------------------------
    # Paths & keys
    # ------------------------------------------------------------------
    def venue_dir(self, space: IndoorSpace) -> Path:
        """The venue's directory: ``<slug(name)>-<fingerprint[:12]>``."""
        return self.root / f"{_slug(space.name)}-{venue_fingerprint(space)[:_FP_PREFIX]}"

    def path_for(self, space: IndoorSpace, kind: str) -> Path:
        """Where ``(space, kind)``'s snapshot lives (existing or not)."""
        return self.venue_dir(space) / f"{_kind_slug(resolve_kind(kind))}{SNAPSHOT_SUFFIX}"

    def has(self, space: IndoorSpace, kind: str) -> bool:
        return self.path_for(space, kind).is_file()

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def save(self, index, objects=None) -> SnapshotInfo:
        """Snapshot a built index into its catalog slot.

        Returns the written header (its ``path`` field is the slot)."""
        from .codec import kind_of

        path = self.path_for(index.space, kind_of(index))
        return save_snapshot(path, index, objects)

    def load(self, space: IndoorSpace, kind: str, *, mmap: bool = False) -> Snapshot:
        """Load ``(space, kind)``, fingerprint-checked against ``space``.

        ``mmap=True`` maps the snapshot's binary section instead of
        copying it (see :func:`~repro.storage.snapshot.load_snapshot`).

        Raises:
            SnapshotError: no snapshot for this venue + kind (or a
                corrupted/mismatched one).
        """
        wanted = resolve_kind(kind)
        path = self.path_for(space, kind)
        if not path.is_file():
            raise SnapshotError(
                f"no {wanted} snapshot for venue {space.name!r} "
                f"in catalog {self.root}"
            )
        snapshot = load_snapshot(path, space=space, mmap=mmap)
        if snapshot.info.kind != wanted:
            raise SnapshotError(
                f"{path}: catalog slot for {wanted} holds a "
                f"{snapshot.info.kind} snapshot"
            )
        return snapshot

    def entries(self) -> list[SnapshotInfo]:
        """Headers of every readable snapshot under the root, sorted by
        path. Unreadable or foreign files are skipped silently — the
        catalog owns only its naming scheme, not the whole directory."""
        out: list[SnapshotInfo] = []
        if not self.root.is_dir():
            return out
        for path in sorted(self.root.rglob(f"*{SNAPSHOT_SUFFIX}")):
            try:
                out.append(read_snapshot_info(path))
            except SnapshotError:
                continue
        return out

    # ------------------------------------------------------------------
    # Warm start
    # ------------------------------------------------------------------
    def load_or_build(
        self,
        space: IndoorSpace,
        kind: str = "VIP-Tree",
        objects=None,
        builder=None,
        *,
        mmap: bool = False,
    ) -> tuple[Snapshot, bool]:
        """``(snapshot, loaded)`` for a venue — the warm-start primitive.

        ``mmap=True`` memory-maps the snapshot's bulk payload on the
        load path (a cold build still serves its live in-memory state).
        Loads the catalog's snapshot when present (``loaded=True``);
        otherwise cold-builds the index (``builder(space)`` when given,
        else the kind's default builder), saves it together with
        ``objects``, and serves the just-built live state directly
        (``loaded=False``) — no redundant re-parse of the file it just
        wrote. Either way the result is ready to query.

        Thread safety: concurrent calls for the same ``(space, kind)``
        slot are serialized — one caller builds and saves, the rest
        load the freshly written snapshot (each gets an independent
        in-memory copy). Distinct slots never contend.
        """
        with self._slot_lock(self.path_for(space, kind)):
            if self.has(space, kind):
                return self.load(space, kind, mmap=mmap), True
            index = builder(space) if builder is not None else build_index(kind, space)
            # An ObjectIndex argument wraps some *previous* tree —
            # re-embed its object set into the freshly built index
            # (when that index is a tree; baselines take the bare set).
            object_set = objects.objects if isinstance(objects, ObjectIndex) else objects
            object_index = (
                ObjectIndex(index, object_set)
                if object_set is not None and isinstance(index, IPTree)
                else None
            )
            info = self.save(index, object_index if object_index is not None else object_set)
            snapshot = Snapshot(
                info=info,
                space=space,
                index=index,
                objects=object_set,
                object_index=object_index,
            )
            return snapshot, False

    def engine_for(
        self,
        space: IndoorSpace,
        kind: str = "VIP-Tree",
        objects=None,
        builder=None,
        *,
        mmap: bool = False,
        **engine_kwargs,
    ):
        """A warm-started :class:`~repro.engine.engine.QueryEngine`.

        ``mmap=True`` memory-maps the snapshot's bulk payload when
        warm-starting from a file (see :meth:`load_or_build`).
        ``objects`` is only used on the cold-build path (it is saved
        into the new snapshot); a loaded snapshot serves the object set
        it was saved with. Pass ``thread_safe=True`` (forwarded to the
        engine) when the engine will be shared across threads —
        :class:`repro.serving.VenueRouter` does this for every engine
        in its pool.

        Thread safety: as :meth:`load_or_build` — concurrent calls for
        one venue build once; every caller gets an independent engine
        over an independent in-memory index copy (callers wanting one
        *shared* engine per venue should pool it, which is exactly what
        the serving router does).
        """
        snap, _ = self.load_or_build(
            space, kind, objects=objects, builder=builder, mmap=mmap
        )
        return snap.engine(**engine_kwargs)
