"""Fig 10: shortest path queries — per-algorithm latency (a) and the
distance-bucket sweep Q1..Q5 (b)."""

import pytest

from repro.datasets import distance_bucketed_pairs


def _cycle(pairs):
    state = {"i": 0}

    def nxt():
        p = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return p

    return nxt


@pytest.mark.parametrize(
    "algo", ["viptree", "iptree", "distaw", "distmx", "gtree", "road"]
)
def test_shortest_path(benchmark, ctx, algo):
    index = getattr(ctx, algo)
    if index is None:
        pytest.skip("DistMx capped for this venue size")
    pairs = ctx.pairs(48)
    nxt = _cycle(pairs)
    benchmark(lambda: index.shortest_path(*nxt()))


@pytest.fixture(scope="module")
def buckets(contexts):
    ctx = contexts["Men-2"]
    return ctx, distance_bucketed_pairs(ctx.space, per_bucket=8, d2d=ctx.d2d, seed=5)


@pytest.mark.parametrize("bucket_idx", [0, 2, 4])
def test_vip_path_by_distance_bucket(benchmark, buckets, bucket_idx):
    """Fig 10(b): VIP-Tree latency is flat across Q1..Q5."""
    ctx, bucketed = buckets
    pairs = bucketed[bucket_idx]
    if not pairs:
        pytest.skip("bucket empty at this profile")
    nxt = _cycle(pairs)
    benchmark(lambda: ctx.viptree.shortest_path(*nxt()))


@pytest.mark.parametrize("bucket_idx", [0, 2, 4])
def test_distaw_path_by_distance_bucket(benchmark, buckets, bucket_idx):
    """Fig 10(b): DistAw latency grows sharply with s-t distance."""
    ctx, bucketed = buckets
    pairs = bucketed[bucket_idx]
    if not pairs:
        pytest.skip("bucket empty at this profile")
    nxt = _cycle(pairs)
    benchmark(lambda: ctx.distaw.shortest_path(*nxt()))


def test_path_overhead_negligible(ctx):
    """The paper's observation: recovering the path costs little over
    the distance query (checked as a ratio on the same workload)."""
    import time

    pairs = ctx.pairs(48)
    t0 = time.perf_counter()
    for s, t in pairs:
        ctx.viptree.shortest_distance(s, t)
    dist_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    for s, t in pairs:
        ctx.viptree.shortest_path(s, t)
    path_time = time.perf_counter() - t0
    assert path_time < dist_time * 25  # same order of magnitude
