"""Table 2: venue statistics — benchmarks venue generation + D2D build
and asserts the generated topology matches the paper's venue class."""

import pytest

from repro.datasets import PAPER_TABLE2, load_venue, venue_row
from repro.model.d2d import build_d2d_graph

from bench_common import PROFILE


@pytest.mark.parametrize("name", ["MC", "Men", "CL"])
def test_generate_venue(benchmark, name):
    space = benchmark(load_venue, name, PROFILE)
    assert space.num_doors > 0


@pytest.mark.parametrize("name", ["MC", "Men-2"])
def test_build_d2d(benchmark, name):
    space = load_venue(name, PROFILE)
    graph = benchmark(build_d2d_graph, space)
    assert graph.is_connected()


def test_table2_shape():
    """The measured rows keep the paper's orderings: each venue family
    grows MC < Men < CL and X < X-2 (doors, rooms, edges)."""
    rows = {name: venue_row(load_venue(name, PROFILE)) for name in PAPER_TABLE2}
    for metric in ("doors", "rooms", "edges"):
        assert rows["MC"][metric] < rows["Men"][metric] or PROFILE == "tiny"
        assert rows["MC"][metric] < rows["MC-2"][metric]
        assert rows["Men"][metric] < rows["Men-2"][metric]
        assert rows["CL"][metric] < rows["CL-2"][metric]
