"""Replicated venues: read scaling across replicas, failover recovery.

The serving layer replicates each venue onto N shards — one primary
applying (and logging) updates, N-1 replicas tailing the log — so a
venue's read traffic can use N processes instead of one. This
benchmark measures exactly that trade, and what failover costs:

* **Replicated correctness** — a cache-miss kNN stream replayed
  through the cluster at replication factor 1, 2 and 3 returns
  answers element-wise identical to sequential in-process replay
  (compared in the wire normal form). Asserted on every run, any
  machine: reads rotating across log-tailing replicas must be
  indistinguishable from reads on the primary.
* **Replicated read scaling** — on a single venue (the shape
  replication exists for: one hot venue cannot be sharded, only
  copied), factor 2 sustains at least 1.5x the factor-1 cache-miss
  read throughput. Needs real parallelism: the pytest entry skips
  (and standalone runs warn) below 4 available CPUs.
* **Failover** — kill the primary mid-update-stream
  (``crash_after_n_ops``: the fatal update dies *before* apply/ack).
  Zero acknowledged updates are lost: after promotion the answers —
  and the acks themselves — equal a sequential replay of every acked
  op. The recovery row reports the measured time from the kill to the
  first successful read and to the first acknowledged update (which
  includes the promotion and log catch-up).

Results are written as a machine-readable ``BENCH_replication.json``
artifact so the trajectory is trackable across PRs (CI uploads it).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_replication.py --profile tiny

or through pytest (the CI assertions)::

    python -m pytest benchmarks/bench_replication.py
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import tempfile
import time
from pathlib import Path

from repro.bench.reporting import Table
from repro.datasets import load_venue, multi_venue_streams, random_objects, random_point
from repro.model.objects import UpdateOp
from repro.serving import (
    ClusterFrontend,
    Request,
    VenueRouter,
    concurrent_replay,
    sequential_replay,
)
from repro.serving.protocol import result_to_doc
from repro.storage import SnapshotCatalog
from repro.testing import ClusterFaultHarness, wait_until

#: one hot venue — replication (not sharding) is how its reads scale
BENCH_VENUE = "MC"
#: shard processes; every factor rung runs on the same-size cluster
SHARDS = 3
FACTOR_LADDER = (1, 2, 3)
#: factor-2 cache-miss read throughput must beat factor-1 by this
MIN_FACTOR2_SPEEDUP = 1.5
#: CPUs needed before the scaling claim is physically possible:
#: 2 busy shard processes + the submitting parent
REQUIRED_CPUS = 4


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _bench_venue(profile: str, n_objects: int, seed: int):
    space = load_venue(BENCH_VENUE, profile)
    return space, random_objects(space, n_objects, seed=seed)


def _catalog_root(base: Path, name: str, template=None) -> Path:
    """A measurement-private catalog directory, optionally warm-seeded
    with the *snapshot* files of ``template`` (never its op logs —
    each measurement writes its own update history). Snapshot builds
    are deterministic, so a seeded catalog starts in exactly the state
    a cold build would produce; CI uses this to reuse its cached
    ``.snapshots`` catalog instead of rebuilding the venue per rung."""
    root = Path(base) / name
    if template and Path(template).is_dir():
        shutil.copytree(template, root,
                        ignore=shutil.ignore_patterns("*.oplog"))
    return root


def measure_read_scaling(
    root: Path,
    profile: str = "tiny",
    n_objects: int = 20,
    count: int = 150,
    seed: int = 47,
    factors=FACTOR_LADDER,
    template=None,
) -> list[dict]:
    """Replay a cache-miss kNN stream at each replication factor.

    One venue, query-only streams drawing every endpoint fresh
    (``pool=None``) so answers come from index computation, not result
    caches — the CPU-bound regime extra replicas parallelize. Each
    rung spawns a fresh ``SHARDS``-process cluster with its own
    catalog, warms one engine per copy (untimed — snapshot loading is
    not throughput), then times a full :func:`concurrent_replay`.
    Every rung's answers are asserted element-wise identical to
    sequential in-process replay. Returns one row per factor with
    ``eps`` and ``speedup`` vs factor 1.
    """
    space, objects = _bench_venue(profile, n_objects, seed)
    stream = multi_venue_streams(
        [(space, objects)], count, update_ratio=0.0, seed=seed,
        mix={"knn": 1.0}, pool=None, k=10,
    )[0]

    router = VenueRouter(SnapshotCatalog(_catalog_root(root, "seq", template)))
    vid = router.add_venue(
        space, objects=random_objects(space, n_objects, seed=seed))
    keyed = {vid: stream}
    sequential, _ = sequential_replay(router, keyed)

    results = []
    base_eps = None
    for factor in factors:
        with ClusterFrontend(_catalog_root(root, f"factor{factor}", template),
                             shards=SHARDS,
                             replication=factor, flush_interval=0) as cluster:
            cluster.add_venue(
                space, objects=random_objects(space, n_objects, seed=seed))
            # one untimed read per copy: the rotation warms every
            # replica's engine before the clock starts
            for _ in range(factor):
                cluster.submit(
                    Request.from_event(vid, stream[0])).result(timeout=120.0)
            replicated, report = concurrent_replay(cluster, keyed)
        assert len(replicated[vid]) == len(sequential[vid]) == count
        for i, (a, b) in enumerate(zip(sequential[vid], replicated[vid])):
            assert result_to_doc(a) == result_to_doc(b), (
                f"factor {factor} event {i} diverged from sequential replay"
            )
        if base_eps is None:
            base_eps = report.eps
        results.append({
            "replication": factor,
            "shards": SHARDS,
            "events": report.events,
            "seconds": report.seconds,
            "eps": report.eps,
            "speedup": report.eps / base_eps,
        })
    return results


def measure_recovery(
    root: Path,
    profile: str = "tiny",
    n_objects: int = 20,
    n_updates: int = 12,
    seed: int = 53,
    template=None,
) -> dict:
    """Kill a 2-replicated venue's primary mid-update-stream; measure
    recovery and prove zero acknowledged updates were lost.

    The primary is armed to die *before* applying (or acking) an
    update partway through the stream; the driver retries that one op
    — safe exactly because it was never applied. Reported times: from
    the observed death to the first successful read (replica answers
    immediately) and to the first acknowledged update (includes the
    promotion and the new primary's log catch-up). The zero-loss claim
    is asserted the strong way: acks and answers equal a sequential
    replay of every acked op.
    """
    space, objects = _bench_venue(profile, n_objects, seed)
    rng = random.Random(seed)
    ops = [UpdateOp(kind="insert", location=random_point(space, rng),
                    label="cart", category="cart") for _ in range(n_updates)]
    probes = [random_point(space, random.Random(seed + i)) for i in range(3)]
    half = n_updates // 2

    with ClusterFrontend(_catalog_root(root, "failover", template),
                         shards=SHARDS,
                         replication=2, flush_interval=0) as cluster:
        vid = cluster.add_venue(
            space, objects=random_objects(space, n_objects, seed=seed))
        harness = ClusterFaultHarness(cluster)
        primary = harness.primary_of(vid)
        acked = [cluster.submit(Request(venue=vid, kind="update", op=op)
                                ).result(timeout=120.0) for op in ops[:half]]
        # warm the replica so recovery time measures failover, not a
        # cold index build
        cluster.submit(Request(venue=vid, kind="knn", source=probes[0],
                               k=2)).result(timeout=120.0)
        cluster.submit(Request(venue=vid, kind="knn", source=probes[0],
                               k=2)).result(timeout=120.0)

        doomed = cluster._shard(primary)
        harness.crash_after_updates(primary, 0)  # the next update kills it
        try:
            cluster.submit(Request(venue=vid, kind="update",
                                   op=ops[half])).result(timeout=120.0)
        except Exception:  # noqa: BLE001 - the staged death
            pass
        wait_until(lambda: not doomed.alive)
        died = time.perf_counter()

        first_read = harness.read(vid, "knn", source=probes[0], k=2)
        read_recovery_s = time.perf_counter() - died
        acked.append(harness.apply_update(vid, ops[half]))
        update_recovery_s = time.perf_counter() - died
        acked += [harness.apply_update(vid, op) for op in ops[half + 1:]]
        stats = cluster.stats()
        assert stats.promotions >= 1 and harness.primary_of(vid) != primary

        router = VenueRouter(SnapshotCatalog(
            _catalog_root(root, "failover-seq", template)))
        lvid = router.add_venue(
            space, objects=random_objects(space, n_objects, seed=seed))
        expected_acks = [
            router.execute(Request(venue=lvid, kind="update", op=op))
            for op in ops
        ]
        assert acked == expected_acks, "an acknowledged update was lost"
        assert result_to_doc(first_read) is not None
        for probe in probes:
            a = cluster.submit(Request(venue=vid, kind="knn", source=probe,
                                       k=3)).result(timeout=120.0)
            b = router.execute(Request(venue=lvid, kind="knn", source=probe,
                                       k=3))
            assert result_to_doc(a) == result_to_doc(b), \
                "post-failover answers diverged from sequential replay"

    return {
        "replication": 2,
        "shards": SHARDS,
        "acked_updates": len(acked),
        "read_recovery_s": read_recovery_s,
        "update_recovery_s": update_recovery_s,
        "promotions": stats.promotions,
    }


# ----------------------------------------------------------------------
# CI acceptance (pytest entry points)
# ----------------------------------------------------------------------
def test_replicated_reads_identical_to_sequential_at_every_factor():
    """Acceptance: cache-miss reads through factor-1/2/3 clusters are
    element-wise identical to sequential replay (asserted inside the
    measurement). Runs on any machine."""
    with tempfile.TemporaryDirectory() as tmp:
        rows = measure_read_scaling(Path(tmp), count=60)
        assert [r["replication"] for r in rows] == list(FACTOR_LADDER)


def test_factor2_reads_at_least_1p5x_factor1():
    """Acceptance: replicating a hot venue onto a second shard buys at
    least 1.5x cache-miss read throughput. Needs real parallelism:
    skipped below 4 CPUs."""
    import pytest

    cpus = available_cpus()
    if cpus < REQUIRED_CPUS:
        pytest.skip(
            f"replicated read scaling needs >= {REQUIRED_CPUS} CPUs; "
            f"this machine exposes {cpus}"
        )
    with tempfile.TemporaryDirectory() as tmp:
        rows = measure_read_scaling(Path(tmp), factors=(1, 2))
        one, two = rows[0], rows[1]
        assert two["eps"] >= MIN_FACTOR2_SPEEDUP * one["eps"], (
            f"factor 2: {two['eps']:,.0f} events/s is only "
            f"{two['eps'] / one['eps']:.2f}x the factor-1 "
            f"{one['eps']:,.0f} events/s (need >= {MIN_FACTOR2_SPEEDUP}x)"
        )


def test_failover_loses_zero_acknowledged_updates():
    """Acceptance: killing the primary mid-update-stream loses nothing
    acknowledged (asserted inside the measurement). Runs anywhere."""
    with tempfile.TemporaryDirectory() as tmp:
        row = measure_recovery(Path(tmp))
        assert row["promotions"] >= 1
        assert row["read_recovery_s"] < 60.0
        assert row["update_recovery_s"] < 60.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="tiny",
                        choices=("tiny", "small", "paper"))
    parser.add_argument("--objects", type=int, default=20)
    parser.add_argument("--count", type=int, default=150,
                        help="read events per scaling measurement")
    parser.add_argument("--updates", type=int, default=12,
                        help="updates in the failover measurement")
    parser.add_argument("--seed", type=int, default=47)
    parser.add_argument("--catalog", metavar="DIR",
                        help="snapshot catalog to warm-seed every "
                             "measurement from (built on first use; CI "
                             "points this at its cached .snapshots)")
    parser.add_argument("--json", metavar="FILE",
                        default="BENCH_replication.json",
                        help="bench-history artifact path (default: "
                             "BENCH_replication.json; CI uploads it)")
    args = parser.parse_args(argv)

    if args.catalog:
        # load-or-build the bench venue into the shared catalog once;
        # every measurement then warm-starts from a copy of it
        space, objects = _bench_venue(args.profile, args.objects, args.seed)
        SnapshotCatalog(args.catalog).engine_for(space, objects=objects)

    cpus = available_cpus()
    with tempfile.TemporaryDirectory() as tmp:
        rows = measure_read_scaling(
            Path(tmp), args.profile, args.objects, args.count,
            seed=args.seed, template=args.catalog)
        table = Table(
            title=f"Replicated read throughput — 1 venue x {args.count} "
                  f"cache-miss kNN events, profile={args.profile}, "
                  f"{SHARDS} shard processes",
            headers=["replication", "events", "seconds", "events/s",
                     "speedup vs 1"],
            notes=f"pool=None, k=10 (no result-cache hits); {cpus} CPU(s) "
                  "available; every rung asserted identical to sequential",
        )
        for r in rows:
            table.add_row(r["replication"], r["events"], f"{r['seconds']:.3f}s",
                          f"{r['eps']:,.0f}", f"{r['speedup']:.2f}x")
        print(table.render())
        if cpus < REQUIRED_CPUS:
            print(f"note: only {cpus} CPU(s) available — replica processes "
                  "share cores, so the ladder above measures rotation "
                  f"overhead, not parallelism (the >= {MIN_FACTOR2_SPEEDUP}x "
                  f"claim needs >= {REQUIRED_CPUS} CPUs)")
        print()

        recovery = measure_recovery(Path(tmp) / "recovery", args.profile,
                                    args.objects, args.updates,
                                    seed=args.seed, template=args.catalog)
        table = Table(
            title="Failover recovery — primary killed mid-update-stream, "
                  "replication=2",
            headers=["acked updates", "promotions", "first read after kill",
                     "first acked update after kill"],
            notes="zero acknowledged updates lost (asserted vs sequential "
                  "replay); update recovery includes promotion + log catch-up",
        )
        table.add_row(
            recovery["acked_updates"], recovery["promotions"],
            f"{recovery['read_recovery_s'] * 1e3:.1f}ms",
            f"{recovery['update_recovery_s'] * 1e3:.1f}ms",
        )
        print(table.render())
        print()

        if args.json:
            Path(args.json).write_text(json.dumps({
                "bench": "replication",
                "schema": 1,
                "profile": args.profile,
                "count": args.count,
                "objects": args.objects,
                "seed": args.seed,
                "cpus": cpus,
                "factors": rows,
                "recovery": recovery,
            }, indent=2))
            print(f"json written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
