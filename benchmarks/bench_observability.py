"""Observability overhead: instrumented vs bare engine, plus per-layer
latency quantiles.

The metrics registry is in every hot path of the serving stack — each
engine query is a ``perf_counter`` pair and one histogram ``observe``
(a ``bisect`` into 22 fixed buckets under one lock). This benchmark
measures what that costs where it is most visible: the **cache-miss
kNN mix** (k=25, fresh endpoints, ``cache=False`` — no result cache
amortizes anything) on the paper's workhorse venue Men-2, engine with
a registry vs the same engine without one.

One claim is asserted:

* **Overhead** — the instrumented engine sustains at least
  ``1 / (1 + OBS_BENCH_MAX_OVERHEAD)`` of the bare engine's
  throughput (default budget 10%). Answers are asserted element-wise
  identical first — instrumentation must never change results.

The report (and the ``BENCH_observability.json`` artifact CI uploads)
also drives the same workload through the instrumented in-process
serving stack (``VenueRouter`` + ``ServingFrontend``, both sharing one
registry) and prints one row per layer histogram — count, p50, p95,
p99 — the exact numbers ``ClusterFrontend.metrics()`` exposes
cluster-wide.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_observability.py --profile small

or through pytest (the CI assertion)::

    python -m pytest benchmarks/bench_observability.py
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
from pathlib import Path
from statistics import median
from time import perf_counter

from repro import VIPTree
from repro.bench.reporting import Table
from repro.datasets import load_venue, random_objects
from repro.datasets.workloads import mixed_queries
from repro.engine import QueryEngine
from repro.obs import MetricsRegistry, metric_key, summarize
from repro.serving import Request, ServingFrontend, VenueRouter
from repro.storage import SnapshotCatalog

#: the paper's workhorse venue — same fixture bench_kernels asserts on
VENUE = "Men-2"
ASSERT_PROFILE = "small"
#: instrumentation may cost at most this fraction of bare throughput
MAX_OVERHEAD = float(os.environ.get("OBS_BENCH_MAX_OVERHEAD", "0.10"))

N_OBJECTS = 50
N_QUERIES = 400
REPEATS = 7

#: the asserted workload: cache-miss kNN, the engine's hottest path
MIX, K = {"knn": 1.0}, 25

#: per-layer histograms reported from the serving pass
LAYER_SERIES = (
    ("engine", metric_key("engine_query_seconds", {"kind": "knn"})),
    ("router warm start", metric_key("router_warm_start_seconds", {})),
    ("frontend", metric_key("frontend_request_seconds", {"kind": "knn"})),
)


def _replay(engine: QueryEngine, queries) -> list:
    out = []
    for q in queries:
        out.append(engine.knn(q.source, q.k))
    return out


def measure_overhead(space, tree, *, count=N_QUERIES, n_objects=N_OBJECTS,
                     seed=47, repeats=REPEATS):
    """Cache-miss kNN on a bare vs an instrumented engine.

    Returns ``(rows, identical)``: one row per engine (best-of-
    ``repeats`` after an untimed warmup), plus whether their answers
    were element-wise identical.
    """
    queries = mixed_queries(space, count, MIX, seed=seed, pool=None, k=K)
    variants = [("bare", None), ("instrumented", MetricsRegistry())]
    engines, answers, best = {}, {}, {}
    for label, registry in variants:
        engines[label] = QueryEngine(
            tree, objects=random_objects(space, n_objects, seed=seed),
            cache=False, registry=registry,
        )
        answers[label] = _replay(engines[label], queries)  # warmup
        best[label] = float("inf")
    # interleave the timed passes so both engines see the same machine
    # conditions — a sequential A-then-B design charges frequency/cache
    # drift to whichever engine ran second — and take the median of the
    # per-round instrumented/bare ratios, which an outlier round (GC,
    # a noisy neighbor) cannot drag the way a ratio of bests can
    ratios = []
    for _ in range(repeats):
        times = {}
        for label, _registry in variants:
            t0 = perf_counter()
            _replay(engines[label], queries)
            times[label] = perf_counter() - t0
            best[label] = min(best[label], times[label])
        ratios.append(times["instrumented"] / times["bare"])
    rows = [{
        "venue": space.name,
        "engine": label,
        "mix": MIX,
        "k": K,
        "queries": count,
        "seconds": best[label],
        "qps": count / best[label],
    } for label, _registry in variants]
    rows[1]["overhead"] = median(ratios) - 1.0
    return rows, answers["bare"] == answers["instrumented"]


def measure_layers(space, *, count=N_QUERIES, n_objects=N_OBJECTS, seed=47):
    """Drive the instrumented in-process stack once; returns one row
    per layer histogram (count, p50/p95/p99 in microseconds)."""
    queries = mixed_queries(space, count, MIX, seed=seed, pool=None, k=K)
    registry = MetricsRegistry()
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-obs-") as tmp:
        router = VenueRouter(SnapshotCatalog(tmp), capacity=4,
                             registry=registry)
        vid = router.add_venue(
            space, objects=random_objects(space, n_objects, seed=seed))
        with ServingFrontend(router, workers=2, registry=registry) as fe:
            futures = [fe.submit(Request(venue=vid, kind="knn",
                                         source=q.source, k=q.k))
                       for q in queries]
            for f in futures:
                f.result(timeout=120.0)
        snapshot = summarize(registry.snapshot())
    for layer, key in LAYER_SERIES:
        hist = snapshot["histograms"].get(key)
        if hist is None or not hist["count"]:
            continue
        rows.append({
            "layer": layer,
            "series": key,
            "count": hist["count"],
            "p50": hist["p50"],
            "p95": hist["p95"],
            "p99": hist["p99"],
            "mean": hist["mean"],
        })
    return rows


# ----------------------------------------------------------------------
# CI acceptance (pytest entry point)
# ----------------------------------------------------------------------
def test_instrumentation_overhead_within_budget():
    """Acceptance: on cache-miss kNN (k=25, Men-2 small) the
    instrumented engine answers identically and costs at most
    MAX_OVERHEAD of the bare engine's throughput."""
    space = load_venue(VENUE, ASSERT_PROFILE)
    tree = VIPTree.build(space)
    rows, identical = measure_overhead(space, tree)
    assert identical, "instrumented engine answers diverged from bare"
    if rows[1]["overhead"] > MAX_OVERHEAD:  # one re-measure before failing
        retry, identical = measure_overhead(space, tree)
        assert identical, "instrumented engine answers diverged from bare"
        if retry[1]["overhead"] < rows[1]["overhead"]:
            rows = retry
    bare, inst = rows
    assert inst["overhead"] <= MAX_OVERHEAD, (
        f"instrumentation overhead {inst['overhead']:.1%} exceeds the "
        f"{MAX_OVERHEAD:.0%} budget on cache-miss kNN "
        f"({inst['qps']:,.0f} vs {bare['qps']:,.0f} q/s, "
        f"{space.name} {ASSERT_PROFILE})"
    )


def _us(value) -> str:
    return f"{value * 1e6:,.0f}" if value is not None else "-"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default=ASSERT_PROFILE,
                        choices=("tiny", "small", "paper"))
    parser.add_argument("--objects", type=int, default=N_OBJECTS)
    parser.add_argument("--count", type=int, default=N_QUERIES)
    parser.add_argument("--seed", type=int, default=47)
    parser.add_argument("--json", metavar="FILE",
                        default="BENCH_observability.json",
                        help="bench-history artifact path (CI uploads it)")
    args = parser.parse_args(argv)

    space = load_venue(VENUE, args.profile)
    tree = VIPTree.build(space)
    rows, identical = measure_overhead(
        space, tree, count=args.count, n_objects=args.objects,
        seed=args.seed)
    assert identical, "instrumented engine answers diverged from bare"
    layer_rows = measure_layers(space, count=args.count,
                                n_objects=args.objects, seed=args.seed)

    bare, inst = rows
    table = Table(
        title=f"Observability overhead — {VENUE} ({args.profile}), "
              f"cache-miss kNN k={K} ({args.count} fresh-endpoint queries)",
        headers=["engine", "q/s", "overhead"],
        notes=f"best of {REPEATS} passes after warmup; budget "
              f"{MAX_OVERHEAD:.0%}; answers asserted identical",
    )
    table.add_row("bare", f"{bare['qps']:,.0f}", "-")
    table.add_row("instrumented", f"{inst['qps']:,.0f}",
                  f"{inst['overhead']:+.1%}")
    print(table.render())
    print()

    layers = Table(
        title="Per-layer latency (instrumented in-process stack)",
        headers=["layer", "count", "p50 us", "p95 us", "p99 us"],
        notes="the same histograms ClusterFrontend.metrics() merges "
              "cluster-wide",
    )
    for r in layer_rows:
        layers.add_row(r["layer"], str(r["count"]), _us(r["p50"]),
                       _us(r["p95"]), _us(r["p99"]))
    print(layers.render())
    print()

    if args.json:
        Path(args.json).write_text(json.dumps({
            "bench": "observability",
            "schema": 1,
            "venue": VENUE,
            "profile": args.profile,
            "count": args.count,
            "objects": args.objects,
            "seed": args.seed,
            "max_overhead": MAX_OVERHEAD,
            "rows": rows,
            "layers": layer_rows,
        }, indent=2))
        print(f"json written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
