"""Fig 9: shortest distance queries — per-algorithm latency plus the
door-pair counting of Fig 9(a)."""

import pytest


def _cycle(pairs):
    state = {"i": 0}

    def nxt():
        p = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return p

    return nxt


@pytest.mark.parametrize(
    "algo", ["viptree", "iptree", "distaw", "distmx", "gtree", "road"]
)
def test_shortest_distance(benchmark, ctx, algo):
    index = getattr(ctx, algo)
    if index is None:
        pytest.skip("DistMx capped for this venue size")
    pairs = ctx.pairs(64)
    nxt = _cycle(pairs)
    benchmark(lambda: index.shortest_distance(*nxt()))


def test_fig9a_pair_counts(ctx):
    """Fig 9(a): the no-through optimization reduces the door pairs
    DistMx enumerates; VIP's superior-door pairs are in the same range."""
    mx = ctx.distmx
    pairs = ctx.pairs(64)
    unopt = sum(mx.distance_query(s, t, optimized=False)[1] for s, t in pairs)
    opt = sum(mx.distance_query(s, t, optimized=True)[1] for s, t in pairs)
    assert opt <= unopt
    vip_pairs = sum(
        ctx.viptree.distance_query(s, t).stats.superior_pairs for s, t in pairs
    )
    assert vip_pairs <= unopt


def test_fig9b_all_algorithms_agree(ctx):
    """Shape sanity behind the latency chart: every algorithm returns the
    same distances on the benchmark workload."""
    pairs = ctx.pairs(24)
    for s, t in pairs:
        reference = ctx.viptree.shortest_distance(s, t)
        assert abs(ctx.iptree.shortest_distance(s, t) - reference) < 1e-6
        assert abs(ctx.distaw.shortest_distance(s, t) - reference) < 1e-6
        assert abs(ctx.road.shortest_distance(s, t) - reference) < 1e-6
        assert ctx.gtree.shortest_distance(s, t) >= reference - 1e-6
        if ctx.distmx is not None:
            assert abs(ctx.distmx.shortest_distance(s, t) - reference) < 1e-6
