"""Fig 11(d): range queries per venue and radius."""

import pytest

RADIUS = 100.0
N_OBJECTS = 10


def _cycle(items):
    state = {"i": 0}

    def nxt():
        x = items[state["i"] % len(items)]
        state["i"] += 1
        return x

    return nxt


@pytest.mark.parametrize("algo", ["iptree", "viptree"])
def test_tree_range(benchmark, ctx, algo):
    tree = getattr(ctx, algo)
    oi = ctx.object_index("ip" if algo == "iptree" else "vip", N_OBJECTS)
    queries = ctx.queries(48)
    nxt = _cycle(queries)
    benchmark(lambda: tree.range_query(oi, nxt(), RADIUS))


@pytest.mark.parametrize("algo", ["distaw", "gtree", "road"])
def test_competitor_range(benchmark, ctx, algo):
    index = getattr(ctx, algo)
    index.attach_objects(ctx.objects(N_OBJECTS))
    queries = ctx.queries(48)
    nxt = _cycle(queries)
    benchmark(lambda: index.range_query(nxt(), RADIUS))


@pytest.mark.parametrize("radius", [50.0, 100.0, 500.0])
def test_vip_range_by_radius(benchmark, ctx, radius):
    """The paper varies the range 50..1000 m (§4.1)."""
    oi = ctx.object_index("vip", N_OBJECTS)
    queries = ctx.queries(48)
    nxt = _cycle(queries)
    benchmark(lambda: ctx.viptree.range_query(oi, nxt(), radius))


def test_range_agreement(ctx):
    """All algorithms return the same object sets on the workload."""
    objects = ctx.objects(N_OBJECTS)
    oi = ctx.object_index("vip", N_OBJECTS)
    ctx.distaw.attach_objects(objects)
    ctx.road.attach_objects(objects)
    for q in ctx.queries(12):
        ref = {n.object_id for n in ctx.viptree.range_query(oi, q, RADIUS)}
        assert {i for _, i in ctx.distaw.range_query(q, RADIUS)} == ref
        assert {i for _, i in ctx.road.range_query(q, RADIUS)} == ref
