"""Fig 11(a)-(c): kNN queries across k, object count and venues."""

import pytest

from repro import ObjectIndex


def _cycle(items):
    state = {"i": 0}

    def nxt():
        x = items[state["i"] % len(items)]
        state["i"] += 1
        return x

    return nxt


N_OBJECTS = 10


@pytest.mark.parametrize("k", [1, 5, 10])
def test_vip_knn_by_k(benchmark, ctx, k):
    """Fig 11(a): VIP-Tree kNN vs k."""
    oi = ctx.object_index("vip", N_OBJECTS)
    queries = ctx.queries(48)
    nxt = _cycle(queries)
    benchmark(lambda: ctx.viptree.knn(oi, nxt(), k))


@pytest.mark.parametrize("count", [5, 10, 25])
def test_vip_knn_by_object_count(benchmark, ctx, count):
    """Fig 11(b): VIP-Tree kNN vs number of objects."""
    oi = ctx.object_index("vip", count)
    queries = ctx.queries(48)
    nxt = _cycle(queries)
    benchmark(lambda: ctx.viptree.knn(oi, nxt(), 5))


@pytest.mark.parametrize("algo", ["iptree", "viptree"])
def test_tree_knn(benchmark, ctx, algo):
    """Fig 11(c): IP and VIP perform equally well (paper's observation)."""
    tree = getattr(ctx, algo)
    oi = ctx.object_index("ip" if algo == "iptree" else "vip", N_OBJECTS)
    queries = ctx.queries(48)
    nxt = _cycle(queries)
    benchmark(lambda: tree.knn(oi, nxt(), 5))


@pytest.mark.parametrize("algo", ["distaw", "gtree", "road"])
def test_competitor_knn(benchmark, ctx, algo):
    index = getattr(ctx, algo)
    index.attach_objects(ctx.objects(N_OBJECTS))
    queries = ctx.queries(48)
    nxt = _cycle(queries)
    benchmark(lambda: index.knn(nxt(), 5))


def test_distawpp_knn(benchmark, ctx):
    pp = ctx.distawpp
    if pp is None:
        pytest.skip("DistMx capped for this venue size")
    pp.attach_objects(ctx.objects(N_OBJECTS))
    queries = ctx.queries(48)
    nxt = _cycle(queries)
    benchmark(lambda: pp.knn(nxt(), 5))


def test_knn_agreement(ctx):
    """All algorithms return the same top-5 distances on the workload."""
    objects = ctx.objects(N_OBJECTS)
    oi = ctx.object_index("vip", N_OBJECTS)
    ctx.distaw.attach_objects(objects)
    ctx.road.attach_objects(objects)
    for q in ctx.queries(12):
        ref = [round(n.distance, 6) for n in ctx.viptree.knn(oi, q, 5)]
        assert [round(d, 6) for d, _ in ctx.distaw.knn(q, 5)] == pytest.approx(ref, abs=1e-5)
        assert [round(d, 6) for d, _ in ctx.road.knn(q, 5)] == pytest.approx(ref, abs=1e-5)
