"""Numpy query kernels vs the pure-python reference, single thread.

The paper's query algorithms are dict-loop pseudo-code; the numpy
backend (:mod:`repro.kernels`) answers whole kNN/range queries with a
handful of level-batched array ops instead (see
:meth:`~repro.kernels.NumpyKernels.knn_full`). This benchmark measures
what that buys on one thread, on cache-miss traffic (every endpoint
fresh, ``pool=None`` — no result cache can help), on the paper's
workhorse venue Men-2.

Two claims are asserted:

* **Identity** — every workload's answers are element-wise identical
  (`==` on exact floats, never a tolerance) between the python and
  numpy engines. Cross-venue identity is tier-1
  (``tests/test_kernels.py``); this re-asserts it at benchmark scale on
  a venue larger than the test fixtures.
* **Speedup** — on the cache-miss kNN workload (k=25) the numpy engine
  sustains at least ``KERNEL_BENCH_MIN_SPEEDUP`` x (default 3.0) the
  python engine's throughput. Asserted at the ``small`` profile: the
  ``tiny`` smoke-fixture venue (~8 leaves) is too small for the eager
  array path to amortize — the report's profile column shows exactly
  that, which is itself the honest claim about when kernels pay off.

The python rows are the reference the paper maps onto line by line;
the numpy rows answer the same queries eagerly (every node's distances
level by level), so the speedup *grows* with k and venue size — the
best-first reference expands more of the tree while the eager path's
cost is k-independent.

Results are also written as a machine-readable ``BENCH_kernels.json``
artifact (one row per venue/kernel/mix: q/s and speedup vs python) so
the trajectory is trackable across PRs (CI uploads it).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernels.py --profile small

or through pytest (the CI assertions)::

    python -m pytest benchmarks/bench_kernels.py
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
from time import perf_counter

from repro import VIPTree
from repro.bench.reporting import Table
from repro.datasets import load_venue, random_objects
from repro.datasets.workloads import mixed_queries
from repro.engine import QueryEngine

#: the paper's workhorse venue — largest fixture family in the repo
VENUE = "Men-2"
#: the speedup claim is asserted at this profile (see module docstring)
ASSERT_PROFILE = "small"
#: numpy must beat python by this factor on the cache-miss kNN workload
MIN_SPEEDUP = float(os.environ.get("KERNEL_BENCH_MIN_SPEEDUP", "3.0"))

N_OBJECTS = 50
N_QUERIES = 400
REPEATS = 3

#: benchmarked workloads: (label, mix, k) — the first row is the
#: asserted cache-miss kNN claim, the rest are informational
WORKLOADS = (
    ("knn k=25", {"knn": 1.0}, 25),
    ("knn k=10", {"knn": 1.0}, 10),
    ("mixed 70/20/10 k=10", {"knn": 0.7, "distance": 0.2, "range": 0.1}, 10),
    ("range", {"range": 1.0}, 5),
    ("distance", {"distance": 1.0}, 5),
)


def _replay(engine: QueryEngine, queries) -> list:
    out = []
    for q in queries:
        if q.kind == "knn":
            out.append(engine.knn(q.source, q.k))
        elif q.kind == "distance":
            out.append(engine.distance(q.source, q.target))
        else:
            out.append(engine.range_query(q.source, q.radius))
    return out


def measure_workload(space, tree, mix, k, *, count=N_QUERIES,
                     n_objects=N_OBJECTS, seed=47, repeats=REPEATS):
    """One workload on both engines: ``(rows, python_answers_equal)``.

    Each engine gets its own (identically seeded) object set, a full
    untimed warmup pass (kernel caches — per-leaf programs, packed
    access lists — are steady-state serving behavior, not throughput),
    then ``repeats`` timed passes; the best pass counts. Answers from
    the warmup passes are compared element-wise.
    """
    queries = mixed_queries(space, count, mix, seed=seed, pool=None, k=k)
    rows, answers = [], {}
    for kernel in ("python", "numpy"):
        engine = QueryEngine(
            tree, objects=random_objects(space, n_objects, seed=seed),
            kernels=kernel, cache=False,
        )
        answers[kernel] = _replay(engine, queries)  # warmup + identity data
        best = float("inf")
        for _ in range(repeats):
            t0 = perf_counter()
            _replay(engine, queries)
            best = min(best, perf_counter() - t0)
        rows.append({
            "timed": bool(repeats),
            "venue": space.name,
            "kernel": kernel,
            "mix": mix,
            "k": k,
            "queries": count,
            "seconds": best,
            "qps": count / best,
        })
    if repeats:
        rows[1]["speedup"] = rows[1]["qps"] / rows[0]["qps"]
    identical = answers["python"] == answers["numpy"]
    return rows, identical


def run_bench(profile: str, *, count=N_QUERIES, n_objects=N_OBJECTS, seed=47):
    """All workloads on ``VENUE`` at ``profile``; asserts identity."""
    space = load_venue(VENUE, profile)
    tree = VIPTree.build(space)
    all_rows = []
    for label, mix, k in WORKLOADS:
        rows, identical = measure_workload(
            space, tree, mix, k, count=count, n_objects=n_objects, seed=seed,
        )
        assert identical, (
            f"{label}: numpy answers diverged from python on {space.name} "
            f"({profile}) — kernels must be bit-identical"
        )
        for r in rows:
            r["label"] = label
            r["profile"] = profile
        all_rows.extend(rows)
    return all_rows


# ----------------------------------------------------------------------
# CI acceptance (pytest entry points)
# ----------------------------------------------------------------------
def test_numpy_answers_identical_to_python_at_bench_scale():
    """Acceptance: on Men-2 (small) every benchmark workload answers
    element-wise identically across kernels."""
    space = load_venue(VENUE, ASSERT_PROFILE)
    tree = VIPTree.build(space)
    for label, mix, k in WORKLOADS:
        _, identical = measure_workload(
            space, tree, mix, k, count=150, repeats=0,
        )
        assert identical, f"{label}: numpy != python on {space.name}"


def test_numpy_at_least_3x_python_on_cache_miss_knn():
    """Acceptance: cache-miss kNN (k=25, fresh endpoints) on Men-2
    (small) — the numpy engine sustains >= MIN_SPEEDUP x the python
    reference, answers identical."""
    space = load_venue(VENUE, ASSERT_PROFILE)
    tree = VIPTree.build(space)
    label, mix, k = WORKLOADS[0]
    rows, identical = measure_workload(space, tree, mix, k)
    assert identical, f"{label}: numpy != python on {space.name}"
    python_row, numpy_row = rows
    assert numpy_row["speedup"] >= MIN_SPEEDUP, (
        f"numpy kernels: {numpy_row['qps']:,.0f} q/s is only "
        f"{numpy_row['speedup']:.2f}x the python reference's "
        f"{python_row['qps']:,.0f} q/s on cache-miss {label} "
        f"({space.name}, {ASSERT_PROFILE}; need >= {MIN_SPEEDUP}x)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default=ASSERT_PROFILE,
                        choices=("tiny", "small", "paper"),
                        help="venue scale (default small: tiny is too "
                             "small for array ops to amortize)")
    parser.add_argument("--objects", type=int, default=N_OBJECTS)
    parser.add_argument("--count", type=int, default=N_QUERIES,
                        help="queries per workload and engine")
    parser.add_argument("--seed", type=int, default=47)
    parser.add_argument("--json", metavar="FILE", default="BENCH_kernels.json",
                        help="bench-history artifact path (default: "
                             "BENCH_kernels.json; CI uploads it)")
    args = parser.parse_args(argv)

    rows = run_bench(args.profile, count=args.count,
                     n_objects=args.objects, seed=args.seed)

    table = Table(
        title=f"Query kernels — {VENUE} ({args.profile}), single thread, "
              f"cache-miss ({args.count} fresh-endpoint queries, "
              f"{args.objects} objects)",
        headers=["workload", "kernel", "q/s", "speedup vs python"],
        notes="best of "
              f"{REPEATS} passes after warmup; answers asserted "
              "element-wise identical across kernels",
    )
    for r in rows:
        table.add_row(
            r["label"], r["kernel"], f"{r['qps']:,.0f}",
            f"{r['speedup']:.2f}x" if "speedup" in r else "-",
        )
    print(table.render())
    print()

    if args.json:
        Path(args.json).write_text(json.dumps({
            "bench": "kernels",
            "schema": 1,
            "venue": VENUE,
            "profile": args.profile,
            "count": args.count,
            "objects": args.objects,
            "seed": args.seed,
            "min_speedup": MIN_SPEEDUP,
            "rows": rows,
        }, indent=2))
        print(f"json written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
