"""Async front door: batched vs unbatched tail latency + admission isolation.

The front door rewrite makes two claims this benchmark measures and
CI-asserts (hardware permitting):

* **Batching pays** — at ``N_CLIENTS`` (16) concurrent TCP clients,
  batch frames of ``BATCH_SIZE`` requests sustain at least
  ``MIN_BATCH_SPEEDUP``x (2x) the events/s of strict request/response
  single frames: one frame each way per batch amortizes the per-event
  wire cost (frame encode/decode + a loopback round trip) that
  dominates small queries. p50/p95/p99 are reported for both modes —
  batched per-request latency is the full batch round trip (a request
  waits for its frame), which is the honest client-visible number.
  Asserted only where parallelism is physically possible: skipped
  below ``MIN_CPUS`` (4) CPUs, like the cluster-scaling claim in
  ``bench_serving.py``.
* **Admission isolates** — with per-venue token buckets, a
  pathological venue flooding the front door in a tight loop receives
  typed :class:`~repro.exceptions.OverloadedError` replies (carrying
  retry-after hints) while every *other* venue's p99 stays within
  ``P99_ISOLATION_FACTOR``x (3x) of its uncontended p99 (floored at
  ``P99_FLOOR_S`` to keep the ratio meaningful when the uncontended
  p99 is microseconds). Also CPU-gated: on a single core the flood
  steals cycles from the victims' measurement itself.

Correctness rides along unconditionally: batched answers over the
wire — mixed update+query streams included — are element-wise
identical to sequential in-process replay, compared in the wire
normal form (:func:`~repro.serving.protocol.result_to_doc`).

Results are written as a machine-readable
``BENCH_async_frontdoor.json`` artifact (CI uploads it).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_async_frontdoor.py

or through pytest (the CI assertions)::

    python -m pytest benchmarks/bench_async_frontdoor.py
"""

from __future__ import annotations

import argparse
import json
import math
import os
import tempfile
import threading
import time
from pathlib import Path

from repro.bench.reporting import Table
from repro.datasets import load_venue, multi_venue_streams, random_objects, random_point
from repro.exceptions import OverloadedError
from repro.serving import (
    AdmissionController,
    AsyncFrontDoor,
    ClusterFrontend,
    FrontDoorClient,
    Request,
    VenueRouter,
    sequential_replay,
)
from repro.serving.protocol import result_to_doc
from repro.storage import SnapshotCatalog

import random

#: venues served together — different generator families
SUITE_VENUES = ("MC", "Men-2", "CL-2", "MC-2")
#: concurrent TCP clients in the throughput comparison
N_CLIENTS = 16
#: requests per batch frame in batched mode
BATCH_SIZE = 32
#: batched events/s must beat unbatched by this factor
MIN_BATCH_SPEEDUP = 2.0
#: CPUs below which the scaling/isolation assertions honestly skip
MIN_CPUS = 4
#: victims' contended p99 must stay within this factor of uncontended
P99_ISOLATION_FACTOR = 3.0
#: uncontended-p99 floor for the isolation ratio (de-noises µs bases)
P99_FLOOR_S = 0.001


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def percentile(samples, q: float):
    """The q-quantile of ``samples`` by rank (no interpolation)."""
    if not samples:
        return None
    ordered = sorted(samples)
    return ordered[max(0, math.ceil(q * len(ordered)) - 1)]


def _suite(profile: str, n_objects: int, seed: int):
    venues = []
    for i, name in enumerate(SUITE_VENUES):
        space = load_venue(name, profile)
        venues.append((space, random_objects(space, n_objects, seed=seed + i)))
    return venues


# ----------------------------------------------------------------------
# Correctness: batched wire answers == sequential in-process replay
# ----------------------------------------------------------------------
def check_frontdoor_equivalence(
    root: Path,
    profile: str = "tiny",
    n_objects: int = 20,
    count: int = 150,
    batch: int = 64,
    seed: int = 31,
) -> int:
    """Mixed update+query streams replayed once sequentially in-process
    and once through the front door in batch frames must answer
    element-wise identically (wire normal form). Separate catalogs and
    separately generated (deterministic, identical) object sets, for
    the same reason as ``bench_serving.check_cluster_equivalence``:
    engines mutate the object sets they are registered with.
    """
    def make_venues():
        return _suite(profile, n_objects, seed)[:3]

    venues = make_venues()
    streams = multi_venue_streams(
        venues, count, update_ratio=0.5, churn=0.2, seed=seed,
        mix={"knn": 0.4, "distance": 0.2, "range": 0.2, "path": 0.2},
    )
    router = VenueRouter(SnapshotCatalog(Path(root) / "seq"),
                         capacity=len(venues) + 1)
    for space, objects in venues:
        router.add_venue(space, objects=objects)
    ids = router.venue_ids()
    keyed = dict(zip(ids, streams))
    sequential, _ = sequential_replay(router, keyed)

    compared = 0
    with ClusterFrontend(Path(root) / "door", shards=2) as cluster:
        for space, objects in make_venues():
            cluster.add_venue(space, objects=objects)
        with AsyncFrontDoor(cluster) as door, \
                FrontDoorClient(door.address) as client:
            for vid in ids:
                requests = [Request.from_event(vid, e) for e in keyed[vid]]
                answers = []
                # batches on one connection submit in order, so the
                # per-venue update/query ordering matches sequential
                for at in range(0, len(requests), batch):
                    answers.extend(client.call_batch(requests[at:at + batch]))
                assert len(answers) == len(sequential[vid]) == count
                for i, (a, b) in enumerate(zip(sequential[vid], answers)):
                    assert not isinstance(b, Exception), \
                        f"venue {vid[:8]} event {i} failed over the wire: {b}"
                    assert result_to_doc(a) == result_to_doc(b), \
                        f"venue {vid[:8]} event {i} diverged between " \
                        "sequential and batched front door"
                    compared += 1
    return compared


# ----------------------------------------------------------------------
# Throughput + tail latency: batched vs unbatched at N clients
# ----------------------------------------------------------------------
def measure_frontdoor(
    root: Path,
    profile: str = "tiny",
    n_objects: int = 20,
    count: int = 200,
    clients: int = N_CLIENTS,
    batch: int = BATCH_SIZE,
    shards: int = 2,
    seed: int = 47,
) -> list[dict]:
    """Drive ``clients`` concurrent TCP clients through the front door
    twice — strict request/response single frames, then ``batch``-sized
    batch frames — and return one row per mode with events/s and
    p50/p95/p99 request latency.

    Every client runs ``count`` kNN queries against its assigned venue
    (clients round-robin over the suite). Per-request latency is what
    the client experiences: the call round trip unbatched, the full
    batch round trip batched. A shared barrier lines all clients up so
    the wall-clock window measures steady concurrent load.
    """
    venues = _suite(profile, n_objects, seed)
    rows = []
    with ClusterFrontend(root, shards=shards, flush_interval=0) as cluster:
        ids = [cluster.add_venue(s, objects=o) for s, o in venues]
        rng = random.Random(seed)
        for (space, _), vid in zip(venues, ids):  # warm engines, untimed
            cluster.submit(Request(venue=vid, kind="knn",
                                   source=random_point(space, rng),
                                   k=3)).result(timeout=60.0)
        with AsyncFrontDoor(cluster) as door:
            for mode in ("unbatched", "batched"):
                latencies: list[float] = []
                failures: list = []
                lock = threading.Lock()
                barrier = threading.Barrier(clients + 1)

                def worker(idx: int, mode=mode) -> None:
                    space = venues[idx % len(venues)][0]
                    vid = ids[idx % len(venues)]
                    wrng = random.Random(seed * 1000 + idx)
                    requests = [
                        Request(venue=vid, kind="knn",
                                source=random_point(space, wrng), k=3)
                        for _ in range(count)
                    ]
                    own: list[float] = []
                    try:
                        with FrontDoorClient(door.address) as client:
                            barrier.wait(timeout=60.0)
                            if mode == "batched":
                                for at in range(0, count, batch):
                                    chunk = requests[at:at + batch]
                                    t0 = time.perf_counter()
                                    values = client.call_batch(chunk)
                                    dt = time.perf_counter() - t0
                                    own.extend([dt] * len(chunk))
                                    bad = [v for v in values
                                           if isinstance(v, Exception)]
                                    if bad:
                                        raise bad[0]
                            else:
                                for request in requests:
                                    t0 = time.perf_counter()
                                    client.call(request)
                                    own.append(time.perf_counter() - t0)
                    except Exception as exc:  # noqa: BLE001 - the assert
                        with lock:
                            failures.append(exc)
                        return
                    with lock:
                        latencies.extend(own)

                threads = [threading.Thread(target=worker, args=(i,))
                           for i in range(clients)]
                for t in threads:
                    t.start()
                barrier.wait(timeout=60.0)
                started = time.perf_counter()
                for t in threads:
                    t.join(timeout=300.0)
                seconds = time.perf_counter() - started
                if failures:
                    raise failures[0]
                events = clients * count
                rows.append({
                    "mode": mode,
                    "clients": clients,
                    "batch": batch if mode == "batched" else 1,
                    "events": events,
                    "seconds": seconds,
                    "eps": events / seconds,
                    "p50_ms": percentile(latencies, 0.50) * 1e3,
                    "p95_ms": percentile(latencies, 0.95) * 1e3,
                    "p99_ms": percentile(latencies, 0.99) * 1e3,
                })
    rows[1]["speedup"] = rows[1]["eps"] / rows[0]["eps"]
    rows[0]["speedup"] = 1.0
    return rows


# ----------------------------------------------------------------------
# Isolation: one flooding venue vs everyone else's p99
# ----------------------------------------------------------------------
def measure_pathological(
    root: Path,
    profile: str = "tiny",
    n_objects: int = 20,
    count: int = 150,
    rate: float = 300.0,
    burst: float = 50.0,
    pace_s: float = 0.005,
    seed: int = 47,
) -> dict:
    """One venue floods in a tight loop; polite venues keep their paced
    query streams running. Returns per-victim uncontended/contended
    p99s plus the flooder's shed accounting.

    The admission controller gives every venue the same ``rate``/s
    bucket. Victims pace themselves under it (one request per
    ``pace_s``); the flooder does not and gets shed. ``shards=1``
    maximizes contention: without admission control the flooder's
    requests would queue ahead of the victims' inside the one shard.
    """
    venues = _suite(profile, n_objects, seed)
    flooder_space, _ = venues[0]
    victims = venues[1:]
    admission = AdmissionController(rate=rate, burst=burst)
    result = {"rate": rate, "burst": burst, "victims": []}
    with ClusterFrontend(root, shards=1, flush_interval=0,
                         admission=admission) as cluster:
        ids = [cluster.add_venue(s, objects=o) for s, o in venues]
        flood_vid, victim_ids = ids[0], ids[1:]
        rng = random.Random(seed)
        for (space, _), vid in zip(venues, ids):  # warm engines, untimed
            cluster.submit(Request(venue=vid, kind="knn",
                                   source=random_point(space, rng),
                                   k=3)).result(timeout=60.0)
        with AsyncFrontDoor(cluster) as door:

            def victim_pass(space, vid) -> list[float]:
                wrng = random.Random(seed + 1)
                own = []
                with FrontDoorClient(door.address) as client:
                    for _ in range(count):
                        request = Request(venue=vid, kind="knn",
                                          source=random_point(space, wrng),
                                          k=3)
                        t0 = time.perf_counter()
                        client.call(request)
                        own.append(time.perf_counter() - t0)
                        time.sleep(pace_s)
                return own

            def run_victims() -> dict[str, list[float]]:
                collected: dict[str, list[float]] = {}
                lock = threading.Lock()

                def one(space, vid):
                    samples = victim_pass(space, vid)
                    with lock:
                        collected[vid] = samples

                threads = [threading.Thread(target=one, args=(s, v))
                           for (s, _), v in zip(victims, victim_ids)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=300.0)
                return collected

            baseline = run_victims()  # uncontended

            stop = threading.Event()
            flood_stats = {"sent": 0, "shed": 0, "answered": 0,
                           "untyped": 0, "hinted": 0}

            def flooder() -> None:
                wrng = random.Random(seed + 2)
                with FrontDoorClient(door.address) as client:
                    while not stop.is_set():
                        request = Request(
                            venue=flood_vid, kind="knn",
                            source=random_point(flooder_space, wrng), k=3)
                        flood_stats["sent"] += 1
                        try:
                            client.call(request)
                            flood_stats["answered"] += 1
                        except OverloadedError as exc:
                            flood_stats["shed"] += 1
                            if exc.retry_after is not None:
                                flood_stats["hinted"] += 1
                        except Exception:  # noqa: BLE001 - accounted
                            flood_stats["untyped"] += 1

            thread = threading.Thread(target=flooder)
            thread.start()
            try:
                contended = run_victims()  # mid-flood
            finally:
                stop.set()
                thread.join(timeout=60.0)

    for (space, _), vid in zip(victims, victim_ids):
        base = percentile(baseline[vid], 0.99)
        flood = percentile(contended[vid], 0.99)
        result["victims"].append({
            "venue": vid[:12],
            "name": space.name,
            "uncontended_p99_ms": base * 1e3,
            "contended_p99_ms": flood * 1e3,
            "ratio_vs_floor": flood / max(base, P99_FLOOR_S),
        })
    result["flooder"] = dict(flood_stats, venue=flood_vid[:12])
    return result


# ----------------------------------------------------------------------
# CI acceptance (pytest entry points)
# ----------------------------------------------------------------------
def test_batched_frontdoor_identical_to_sequential():
    """Acceptance: mixed update+query streams answered through batch
    frames are element-wise identical to sequential in-process replay
    (wire normal form). Runs on any machine."""
    with tempfile.TemporaryDirectory() as tmp:
        compared = check_frontdoor_equivalence(Path(tmp))
        assert compared == 3 * 150


def test_batched_at_least_2x_unbatched_at_16_clients():
    """Acceptance: at 16 concurrent clients, batch frames sustain
    >= 2x the events/s of request/response single frames. Needs real
    parallelism between clients and server: skipped below 4 CPUs."""
    import pytest

    cpus = available_cpus()
    if cpus < MIN_CPUS:
        pytest.skip(
            f"batched-vs-unbatched throughput needs >= {MIN_CPUS} CPUs for "
            f"{N_CLIENTS} concurrent clients; this machine exposes {cpus}"
        )
    with tempfile.TemporaryDirectory() as tmp:
        rows = measure_frontdoor(Path(tmp))
        unbatched, batched = rows
        assert batched["eps"] >= MIN_BATCH_SPEEDUP * unbatched["eps"], (
            f"batched: {batched['eps']:,.0f} events/s is only "
            f"{batched['eps'] / unbatched['eps']:.2f}x the unbatched "
            f"{unbatched['eps']:,.0f} events/s (need >= {MIN_BATCH_SPEEDUP}x)"
        )


def test_flooded_venue_shed_while_others_p99_holds():
    """Acceptance: the flooding venue receives typed Overloaded replies
    (with retry-after hints) while every other venue's p99 stays within
    3x its uncontended p99. Skipped below 4 CPUs — on a shared core the
    flood steals the victims' measurement cycles, which is CPU
    contention, not queueing."""
    import pytest

    cpus = available_cpus()
    if cpus < MIN_CPUS:
        pytest.skip(
            f"p99 isolation needs >= {MIN_CPUS} CPUs so the flood does not "
            f"starve the victims' own clients; this machine exposes {cpus}"
        )
    with tempfile.TemporaryDirectory() as tmp:
        report = measure_pathological(Path(tmp))
    flooder = report["flooder"]
    assert flooder["shed"] > 0, "the flood was never shed"
    assert flooder["untyped"] == 0, "sheds must be typed OverloadedError"
    assert flooder["hinted"] == flooder["shed"], \
        "rate sheds must carry a retry-after hint"
    for victim in report["victims"]:
        assert victim["ratio_vs_floor"] <= P99_ISOLATION_FACTOR, (
            f"venue {victim['name']}: contended p99 "
            f"{victim['contended_p99_ms']:.2f}ms is "
            f"{victim['ratio_vs_floor']:.2f}x its uncontended "
            f"{victim['uncontended_p99_ms']:.2f}ms "
            f"(need <= {P99_ISOLATION_FACTOR}x, floor {P99_FLOOR_S * 1e3}ms)"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="tiny",
                        choices=("tiny", "small", "paper"))
    parser.add_argument("--objects", type=int, default=20)
    parser.add_argument("--count", type=int, default=200,
                        help="events per client and measurement")
    parser.add_argument("--clients", type=int, default=N_CLIENTS)
    parser.add_argument("--batch", type=int, default=BATCH_SIZE)
    parser.add_argument("--seed", type=int, default=47)
    parser.add_argument("--json", metavar="FILE",
                        default="BENCH_async_frontdoor.json",
                        help="bench-history artifact path (default: "
                             "BENCH_async_frontdoor.json; CI uploads it)")
    args = parser.parse_args(argv)

    cpus = available_cpus()
    with tempfile.TemporaryDirectory() as tmp:
        compared = check_frontdoor_equivalence(
            Path(tmp) / "equiv", args.profile, args.objects, seed=31)
        print(f"equivalence: {compared} batched wire events identical to "
              "sequential\n")

        rows = measure_frontdoor(
            Path(tmp) / "throughput", args.profile, args.objects,
            args.count, clients=args.clients, batch=args.batch,
            seed=args.seed,
        )
        table = Table(
            title=f"Front door throughput — {args.clients} clients x "
                  f"{args.count} kNN events, profile={args.profile}",
            headers=["mode", "batch", "events", "seconds", "events/s",
                     "p50", "p95", "p99", "speedup"],
            notes=f"{cpus} CPU(s) available; per-request latency is the "
                  "client-visible round trip (full frame for batches)",
        )
        for r in rows:
            table.add_row(
                r["mode"], r["batch"], r["events"], f"{r['seconds']:.3f}s",
                f"{r['eps']:,.0f}", f"{r['p50_ms']:.2f}ms",
                f"{r['p95_ms']:.2f}ms", f"{r['p99_ms']:.2f}ms",
                f"{r['speedup']:.2f}x",
            )
        print(table.render())
        if cpus < MIN_CPUS:
            print(f"note: only {cpus} CPU(s) available — clients and the "
                  "event loop share cores, so the comparison above "
                  f"understates batching (the >= {MIN_BATCH_SPEEDUP}x claim "
                  f"needs >= {MIN_CPUS} CPUs)")
        print()

        pathological = measure_pathological(
            Path(tmp) / "pathological", args.profile, args.objects,
            seed=args.seed,
        )
        flooder = pathological["flooder"]
        table = Table(
            title="Admission isolation — one venue floods, victims paced "
                  f"under a {pathological['rate']:g}/s bucket",
            headers=["victim", "uncontended p99", "contended p99",
                     "ratio (floored)"],
            notes=f"flooder {flooder['venue']}: {flooder['sent']} sent, "
                  f"{flooder['shed']} shed ({flooder['hinted']} with "
                  f"retry-after), {flooder['answered']} answered",
        )
        for v in pathological["victims"]:
            table.add_row(
                v["name"], f"{v['uncontended_p99_ms']:.2f}ms",
                f"{v['contended_p99_ms']:.2f}ms",
                f"{v['ratio_vs_floor']:.2f}x",
            )
        print(table.render())
        print()

        if args.json:
            Path(args.json).write_text(json.dumps({
                "bench": "async_frontdoor",
                "schema": 1,
                "profile": args.profile,
                "count": args.count,
                "objects": args.objects,
                "seed": args.seed,
                "cpus": cpus,
                "equivalence_events": compared,
                "throughput": rows,
                "pathological": pathological,
            }, indent=2))
            print(f"json written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
