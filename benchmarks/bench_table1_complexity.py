"""Table 1: complexity parameters — benchmarks the O(ρ²) distance lookup
against the O(hρ²) IP-Tree climb, the measurable consequence of the
complexity table."""


def test_vip_distance_lookup(benchmark, ctx):
    """VIP-Tree shortest distance: O(ρ²) per query."""
    tree = ctx.viptree
    pairs = ctx.pairs(64)
    state = {"i": 0}

    def run():
        s, t = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return tree.shortest_distance(s, t)

    benchmark(run)


def test_ip_distance_climb(benchmark, ctx):
    """IP-Tree shortest distance: O(hρ²) per query (climbs the tree)."""
    tree = ctx.iptree
    pairs = ctx.pairs(64)
    state = {"i": 0}

    def run():
        s, t = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return tree.shortest_distance(s, t)

    benchmark(run)


def test_table1_parameters_reported(ctx):
    """Not a timing benchmark: assert the measured parameters stay in the
    paper's regime (ρ and f small)."""
    s = ctx.viptree.stats()
    assert s.avg_access_doors < 16
    assert s.avg_fanout <= 8
    assert s.num_leaves <= ctx.space.num_doors
