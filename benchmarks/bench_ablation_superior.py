"""Ablation: the superior-door optimization (paper §3.1.1, Definition 2).

DESIGN.md calls out superior doors as a load-bearing design choice: the
entry step of every tree query enumerates only the superior doors of
the query's partition instead of all of them. This suite benchmarks the
same queries with the optimization on and off (answers are identical;
see tests/test_validate.py)."""

import pytest

from repro import VIPTree


@pytest.fixture(scope="module", params=[True, False], ids=["superior", "all-doors"])
def tree_pair(request, contexts):
    ctx = contexts["Men-2"]
    tree = VIPTree.build(ctx.space, d2d=ctx.d2d, use_superior_doors=request.param)
    return ctx, tree, request.param


def test_distance_with_without_superior(benchmark, tree_pair):
    ctx, tree, _enabled = tree_pair
    pairs = ctx.pairs(48)
    state = {"i": 0}

    def run():
        s, t = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return tree.shortest_distance(s, t)

    benchmark(run)


def test_entry_door_counts(contexts):
    """The optimization's mechanism: fewer entry doors per partition."""
    ctx = contexts["Men-2"]
    full = VIPTree.build(ctx.space, d2d=ctx.d2d, use_superior_doors=True)
    ablated = VIPTree.build(ctx.space, d2d=ctx.d2d, use_superior_doors=False)
    avg_full = sum(len(s) for s in full.superior_doors) / len(full.superior_doors)
    avg_ablated = sum(len(s) for s in ablated.superior_doors) / len(ablated.superior_doors)
    assert avg_full < avg_ablated
