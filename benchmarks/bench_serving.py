"""Concurrent multi-venue serving: correctness and worker scaling.

"An Experimental Analysis of Indoor Spatial Queries" argues that what
separates indoor indexes in practice is throughput under concurrent
mixed workloads, not single-query latency. This benchmark drives the
serving layer (:mod:`repro.serving`) exactly that way: several venues
behind one :class:`VenueRouter`, a :class:`ServingFrontend` worker
pool, and per-venue mixed update+query streams replayed at 1/2/4/8
workers.

Four claims are asserted (the scaling ones hardware permitting):

* **Thread correctness** — concurrent replay through the in-thread
  :class:`ServingFrontend` returns answers element-wise identical to
  sequential replay of the same streams (updates act as per-venue
  barriers; venues share no state).
* **Thread scaling** — with a simulated per-request downstream service
  time (``--service-ms``, default 2ms — the blocking I/O share of a
  real request: response serialization, socket writes, downstream
  calls), 4 workers sustain at least 2x the single-worker throughput
  on a read-heavy mix. This is the honest thread-scaling claim for
  CPython: ``time.sleep`` releases the GIL like real I/O does, while
  the pure-Python index math does not — the ``service=0ms`` rows in
  the report show exactly that, and are *not* asserted for threads.
* **Cluster correctness** — replaying mixed update+query streams
  through a 4-shard :class:`ClusterFrontend` (4 worker *processes*
  behind the wire protocol) is element-wise identical to sequential
  replay, compared in the wire normal form
  (:func:`~repro.serving.protocol.result_to_doc` — floats cross the
  socket bit-exactly). Runs on any machine: 4 processes on 1 core are
  still correct, just not faster.
* **Cluster scaling** — on the ``service_ms=0`` CPU-bound mix threads
  cannot scale, 4 shard processes sustain at least 2x one shard
  process. Asserted only where it is physically possible: the pytest
  entry skips (and standalone runs warn) below 4 available CPUs,
  because shard processes on a single core share it. The scaling mix
  draws every query endpoint fresh (``pool=None``) so answers come
  from index computation, not from the engines' result caches —
  cache-miss traffic is the CPU-bound case the cluster exists for.

The cluster scaling measurement picks its venue suite greedily so the
consistent-hash ring lands exactly ``per_shard`` venues on each of the
4 shards — and balances the 2-shard rung too, whose ring places
independently — so the ladder measures process parallelism, not
placement luck.

Results (thread + cluster sections) are also written as a
machine-readable ``BENCH_serving.json`` artifact so the throughput
trajectory is trackable across PRs (CI uploads it).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py --profile tiny

or through pytest (the CI assertions)::

    python -m pytest benchmarks/bench_serving.py
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro.bench.reporting import Table
from repro.datasets import load_venue, multi_venue_streams, random_objects
from repro.datasets.venues import VENUE_NAMES
from repro.serving import (
    ClusterFrontend,
    HashRing,
    Request,
    ServingFrontend,
    VenueRouter,
    concurrent_replay,
    sequential_replay,
)
from repro.serving.protocol import result_to_doc
from repro.storage import SnapshotCatalog
from repro.storage.snapshot import venue_fingerprint

#: venues served together — three different generator families
SUITE_VENUES = ("MC", "Men-2", "CL-2")
#: read-heavy mix for the scaling measurement (the deployed shape)
READ_HEAVY_MIX = {"knn": 0.6, "distance": 0.3, "range": 0.1}
MIN_SPEEDUP_AT_4 = 2.0
WORKER_LADDER = (1, 2, 4, 8)

#: shard-process count of the cluster claims
CLUSTER_SHARDS = 4
#: cluster throughput at 4 shards must beat one shard process by this
MIN_CLUSTER_SPEEDUP_AT_4 = 2.0
SHARD_LADDER = (1, 2, 4)
#: venues per shard in the balanced cluster scaling suite
VENUES_PER_SHARD = 2


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class LatencyRouter:
    """Router wrapper adding a fixed per-request service time.

    Models the blocking, GIL-releasing share of a real request
    (serializing the response, writing the socket, calling a
    downstream service) so worker scaling measures what threads
    actually buy on CPython. ``service_s=0`` is a transparent
    pass-through.
    """

    def __init__(self, inner: VenueRouter, service_s: float = 0.0) -> None:
        self.inner = inner
        self.service_s = service_s

    def execute(self, request):
        result = self.inner.execute(request)
        if self.service_s > 0.0:
            time.sleep(self.service_s)
        return result


def build_suite(catalog: SnapshotCatalog, profile: str, n_objects: int, seed: int):
    """``(venues, make_router)`` — venue/object pairs plus a factory
    returning a fresh router (independent engines, pristine object
    state) over the shared catalog."""
    venues = []
    for i, name in enumerate(SUITE_VENUES):
        space = load_venue(name, profile)
        venues.append((space, random_objects(space, n_objects, seed=seed + i)))

    def make_router() -> VenueRouter:
        router = VenueRouter(catalog, capacity=len(venues) + 1)
        for space, objects in venues:
            router.add_venue(space, objects=objects)
        return router

    return venues, make_router


def _normalize(value):
    if isinstance(value, list):
        return [(round(n.distance, 10), n.object_id) for n in value]
    if hasattr(value, "doors"):
        return (round(value.distance, 10), tuple(value.doors))
    return value


def check_equivalence(
    catalog: SnapshotCatalog,
    profile: str = "tiny",
    n_objects: int = 20,
    count: int = 150,
    workers: int = 4,
    seed: int = 31,
) -> int:
    """Concurrent replay must equal sequential replay element-wise.

    Mixed update+query streams (1 update per 2 queries, with churn) on
    every suite venue at once. Returns the number of compared events.
    """
    venues, make_router = build_suite(catalog, profile, n_objects, seed)
    streams = multi_venue_streams(
        venues, count, update_ratio=0.5, churn=0.2, seed=seed,
        mix={"knn": 0.4, "distance": 0.2, "range": 0.2, "path": 0.2},
    )
    router_seq = make_router()
    ids = router_seq.venue_ids()
    keyed = dict(zip(ids, streams))
    sequential, _ = sequential_replay(router_seq, keyed)

    router_conc = make_router()
    with ServingFrontend(router_conc, workers=workers, queue_size=128) as frontend:
        concurrent, _ = concurrent_replay(frontend, keyed)

    compared = 0
    for vid in ids:
        assert len(sequential[vid]) == len(concurrent[vid]) == count
        for i, (a, b) in enumerate(zip(sequential[vid], concurrent[vid])):
            assert _normalize(a) == _normalize(b), \
                f"venue {vid[:8]} event {i} diverged between sequential and concurrent"
            compared += 1
    return compared


def measure_scaling(
    catalog: SnapshotCatalog,
    profile: str = "tiny",
    n_objects: int = 20,
    count: int = 150,
    service_ms: float = 2.0,
    update_ratio: float = 0.1,
    seed: int = 47,
    workers_ladder=WORKER_LADDER,
) -> list[dict]:
    """Replay a read-heavy multi-venue mix at each worker count.

    Every measurement uses a fresh router (pristine engines loaded from
    the shared catalog) and the same streams. Returns one result dict
    per worker count with ``eps`` (events/s) and ``speedup`` vs the
    single-worker row.
    """
    venues, make_router = build_suite(catalog, profile, n_objects, seed)
    streams = multi_venue_streams(
        venues, count, update_ratio=update_ratio, seed=seed, mix=READ_HEAVY_MIX,
    )
    results = []
    base_eps = None
    for workers in workers_ladder:
        router = LatencyRouter(make_router(), service_s=service_ms / 1e3)
        keyed = dict(zip(router.inner.venue_ids(), streams))
        with ServingFrontend(router, workers=workers, queue_size=256) as frontend:
            _, report = concurrent_replay(frontend, keyed)
        if base_eps is None:
            base_eps = report.eps
        results.append({
            "workers": workers,
            "venues": len(venues),
            "events": report.events,
            "updates": report.updates,
            "seconds": report.seconds,
            "eps": report.eps,
            "service_ms": service_ms,
            "speedup": report.eps / base_eps,
        })
    return results


# ----------------------------------------------------------------------
# Cluster section: multi-process scaling + wire-exact equivalence
# ----------------------------------------------------------------------
def pick_balanced_venues(
    profile: str, n_objects: int, seed: int,
    shards: int = CLUSTER_SHARDS, per_shard: int = VENUES_PER_SHARD,
):
    """A venue suite whose ring placements spread evenly across every
    rung of the shard ladder.

    Walks the generator families over increasing seed offsets, keeping
    a venue only while its primary shard on the consistent-hash ring
    (:meth:`ClusterFrontend.shard_for`) still has room — at ``shards``
    nodes *and* at each smaller ladder rung, since the rungs' rings
    place independently. Deterministic per profile, so the scaling
    ladder measures parallelism rather than placement luck.
    """
    total = shards * per_shard
    rungs = [s for s in SHARD_LADDER if 1 < s <= shards] or [shards]
    rings = {s: HashRing(range(s)) for s in rungs}
    quotas = {s: total // s for s in rungs}
    buckets = {s: dict.fromkeys(range(s), 0) for s in rungs}
    venues = []
    offset = 0
    while len(venues) < total:
        for name in VENUE_NAMES:
            space = load_venue(name, profile,
                               seed=None if offset == 0 else seed + offset)
            fp = venue_fingerprint(space)
            homes = {s: rings[s].node_for(fp) for s in rungs}
            if any(buckets[s][homes[s]] >= quotas[s] for s in rungs):
                continue
            for s in rungs:
                buckets[s][homes[s]] += 1
            venues.append(
                (space, random_objects(space, n_objects, seed=seed + len(venues)))
            )
            if len(venues) == total:
                break
        offset += 1
    return venues


def check_cluster_equivalence(
    root: Path,
    profile: str = "tiny",
    n_objects: int = 20,
    count: int = 150,
    shards: int = CLUSTER_SHARDS,
    seed: int = 31,
) -> int:
    """Cluster replay must equal sequential replay, wire-exactly.

    The same mixed update+query streams as the thread equivalence
    check, replayed once sequentially in-process and once through a
    ``shards``-process :class:`ClusterFrontend`; every answer is
    compared in the wire normal form (:func:`result_to_doc`), so the
    check also proves the codec round-trips results bit-exactly.
    Sequential and cluster runs get separate catalog directories and
    separately generated (deterministic, identical) object sets:
    engines take ownership of the object set they are registered with
    and mutate it in place, so replaying through one transport would
    otherwise corrupt the other's starting state — and a cluster drain
    writes its updated state back to its catalog.
    """
    def make_venues():
        out = []
        for i, name in enumerate(SUITE_VENUES):
            space = load_venue(name, profile)
            out.append((space, random_objects(space, n_objects, seed=seed + i)))
        return out

    venues = make_venues()
    streams = multi_venue_streams(
        venues, count, update_ratio=0.5, churn=0.2, seed=seed,
        mix={"knn": 0.4, "distance": 0.2, "range": 0.2, "path": 0.2},
    )
    router = VenueRouter(SnapshotCatalog(Path(root) / "seq"),
                         capacity=len(venues) + 1)
    for space, objects in venues:
        router.add_venue(space, objects=objects)
    ids = router.venue_ids()
    keyed = dict(zip(ids, streams))
    sequential, _ = sequential_replay(router, keyed)

    with ClusterFrontend(Path(root) / "cluster", shards=shards) as cluster:
        for space, objects in make_venues():
            cluster.add_venue(space, objects=objects)
        clustered, report = concurrent_replay(cluster, keyed)
        alive = cluster.stats().alive

    assert report.workers == shards and alive >= 1
    compared = 0
    for vid in ids:
        assert len(sequential[vid]) == len(clustered[vid]) == count
        for i, (a, b) in enumerate(zip(sequential[vid], clustered[vid])):
            assert result_to_doc(a) == result_to_doc(b), \
                f"venue {vid[:8]} event {i} diverged between sequential and cluster"
            compared += 1
    return compared


def measure_cluster_scaling(
    root: Path,
    profile: str = "tiny",
    n_objects: int = 20,
    count: int = 150,
    seed: int = 47,
    shard_ladder=SHARD_LADDER,
) -> list[dict]:
    """Replay a CPU-bound query mix at each shard-process count.

    Query-only streams (no updates — no catalog drift, so every rung
    warm-starts from the same snapshots) drawing every endpoint fresh
    (``pool=None``): all work is index computation, the regime the GIL
    serializes for threads and processes parallelize. Each rung spawns
    a fresh cluster, warms every venue's engine (one untimed request
    per venue — snapshot loading is not throughput), then times a full
    :func:`concurrent_replay`. Returns one row per rung with ``eps``
    and ``speedup`` vs the single-process rung.
    """
    venues = pick_balanced_venues(profile, n_objects, seed)
    streams = multi_venue_streams(
        venues, count, update_ratio=0.0, seed=seed, mix=READ_HEAVY_MIX,
        pool=None, k=10,
    )
    # Warm the shared catalog once: shards then load instead of building.
    catalog = SnapshotCatalog(root)
    warm = VenueRouter(catalog, capacity=len(venues) + 1)
    ids = [warm.add_venue(space, objects=objects) for space, objects in venues]
    for vid, stream in zip(ids, streams):
        warm.execute(Request.from_event(vid, stream[0]))
    warm.flush()
    keyed = dict(zip(ids, streams))

    results = []
    base_eps = None
    for shards in shard_ladder:
        with ClusterFrontend(root, shards=shards, flush_interval=0) as cluster:
            for space, objects in venues:
                cluster.add_venue(space, objects=objects)
            for vid, stream in keyed.items():
                cluster.submit(Request.from_event(vid, stream[0])).result()
            _, report = concurrent_replay(cluster, keyed)
            by_shard = cluster.stats().by_shard
        if base_eps is None:
            base_eps = report.eps
        results.append({
            "shards": shards,
            "venues": len(venues),
            "events": report.events,
            "seconds": report.seconds,
            "eps": report.eps,
            "service_ms": 0.0,
            "speedup": report.eps / base_eps,
            "venues_by_shard": {str(k): v for k, v in sorted(by_shard.items())},
        })
    return results


# ----------------------------------------------------------------------
# CI acceptance (pytest entry points)
# ----------------------------------------------------------------------
def test_concurrent_replay_identical_to_sequential():
    """Acceptance: concurrent multi-venue replay (4 workers) answers a
    mixed update+query stream element-wise identically to sequential
    replay."""
    with tempfile.TemporaryDirectory() as tmp:
        compared = check_equivalence(SnapshotCatalog(Path(tmp) / "catalog"))
        assert compared == len(SUITE_VENUES) * 150


def test_four_workers_at_least_2x_one_worker():
    """Acceptance: on a read-heavy mix with per-request service time,
    4 workers sustain >= 2x single-worker throughput."""
    with tempfile.TemporaryDirectory() as tmp:
        results = measure_scaling(
            SnapshotCatalog(Path(tmp) / "catalog"), workers_ladder=(1, 4),
        )
        one, four = results[0], results[1]
        assert four["eps"] >= MIN_SPEEDUP_AT_4 * one["eps"], (
            f"4 workers: {four['eps']:,.0f} events/s is only "
            f"{four['eps'] / one['eps']:.2f}x the single-worker "
            f"{one['eps']:,.0f} events/s (need >= {MIN_SPEEDUP_AT_4}x)"
        )


def test_cluster_replay_identical_to_sequential():
    """Acceptance: 4 shard processes answer a mixed update+query
    stream over 3 venues element-wise identically to sequential
    in-process replay (compared in the wire normal form)."""
    with tempfile.TemporaryDirectory() as tmp:
        compared = check_cluster_equivalence(Path(tmp))
        assert compared == len(SUITE_VENUES) * 150


def test_cluster_4_shards_at_least_2x_one_process():
    """Acceptance: on the service_ms=0 CPU-bound mix — the one threads
    cannot scale under the GIL — 4 shard processes sustain >= 2x one
    shard process. Needs real parallelism: skipped below 4 CPUs."""
    import pytest

    cpus = available_cpus()
    if cpus < CLUSTER_SHARDS:
        pytest.skip(
            f"cluster scaling needs >= {CLUSTER_SHARDS} CPUs for "
            f"{CLUSTER_SHARDS} shard processes; this machine exposes {cpus}"
        )
    with tempfile.TemporaryDirectory() as tmp:
        results = measure_cluster_scaling(Path(tmp), shard_ladder=(1, CLUSTER_SHARDS))
        one, four = results[0], results[1]
        assert four["eps"] >= MIN_CLUSTER_SPEEDUP_AT_4 * one["eps"], (
            f"{CLUSTER_SHARDS} shards: {four['eps']:,.0f} events/s is only "
            f"{four['eps'] / one['eps']:.2f}x the single-process "
            f"{one['eps']:,.0f} events/s (need >= {MIN_CLUSTER_SPEEDUP_AT_4}x)"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="tiny", choices=("tiny", "small", "paper"))
    parser.add_argument("--objects", type=int, default=20)
    parser.add_argument("--count", type=int, default=150,
                        help="events per venue and measurement")
    parser.add_argument("--service-ms", type=float, default=2.0,
                        help="simulated per-request downstream service time")
    parser.add_argument("--update-ratio", type=float, default=0.1,
                        help="updates per query in the scaling mix")
    parser.add_argument("--seed", type=int, default=47)
    parser.add_argument("--catalog", metavar="DIR",
                        help="snapshot catalog to warm-start from (default: temp dir)")
    parser.add_argument("--json", metavar="FILE", default="BENCH_serving.json",
                        help="bench-history artifact path (default: "
                             "BENCH_serving.json; CI uploads it)")
    parser.add_argument("--no-cluster", action="store_true",
                        help="skip the multi-process cluster section")
    args = parser.parse_args(argv)

    if args.catalog:
        catalog = SnapshotCatalog(args.catalog)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory()
        catalog = SnapshotCatalog(Path(cleanup.name) / "catalog")

    cpus = available_cpus()
    try:
        compared = check_equivalence(catalog, args.profile, args.objects,
                                     min(args.count, 150), seed=args.seed)
        print(f"equivalence: {compared} concurrent events identical to sequential\n")

        thread_rows = []
        for service_ms in (args.service_ms, 0.0):
            rows = measure_scaling(
                catalog, args.profile, args.objects, args.count,
                service_ms=service_ms, update_ratio=args.update_ratio,
                seed=args.seed,
            )
            thread_rows.extend(rows)
            label = (f"{service_ms:g}ms simulated service time"
                     if service_ms else "no service time (GIL-bound: CPU only)")
            table = Table(
                title=f"Serving throughput — {len(SUITE_VENUES)} venues x "
                      f"{args.count} events, profile={args.profile}, {label}",
                headers=["workers", "events", "seconds", "events/s", "speedup vs 1"],
                notes="read-heavy mix "
                      f"{READ_HEAVY_MIX}, update_ratio={args.update_ratio}",
            )
            for r in rows:
                table.add_row(r["workers"], r["events"], f"{r['seconds']:.3f}s",
                              f"{r['eps']:,.0f}", f"{r['speedup']:.2f}x")
            print(table.render())
            print()

        cluster_rows: list[dict] = []
        cluster_compared = 0
        if not args.no_cluster:
            with tempfile.TemporaryDirectory() as tmp:
                cluster_compared = check_cluster_equivalence(
                    Path(tmp), args.profile, args.objects,
                    min(args.count, 150), seed=args.seed,
                )
                print(f"cluster equivalence: {cluster_compared} events over "
                      f"{CLUSTER_SHARDS} shard processes wire-identical to "
                      "sequential\n")
                cluster_rows = measure_cluster_scaling(
                    Path(tmp) / "scaling", args.profile, args.objects,
                    args.count, seed=args.seed,
                )
            table = Table(
                title=f"Cluster throughput — {cluster_rows[0]['venues']} venues"
                      f" x {args.count} events, profile={args.profile}, "
                      "service_ms=0 (CPU-bound)",
                headers=["shards", "events", "seconds", "events/s",
                         "speedup vs 1", "venues/shard"],
                notes=f"cache-miss mix {READ_HEAVY_MIX} (pool=None, k=10); "
                      f"{cpus} CPU(s) available",
            )
            for r in cluster_rows:
                table.add_row(
                    r["shards"], r["events"], f"{r['seconds']:.3f}s",
                    f"{r['eps']:,.0f}", f"{r['speedup']:.2f}x",
                    "/".join(str(v) for v in r["venues_by_shard"].values()),
                )
            print(table.render())
            if cpus < CLUSTER_SHARDS:
                print(f"note: only {cpus} CPU(s) available — shard processes "
                      "share cores, so the ladder above measures wire "
                      f"overhead, not parallelism (the >= "
                      f"{MIN_CLUSTER_SPEEDUP_AT_4}x claim needs "
                      f">= {CLUSTER_SHARDS} CPUs)")
            print()

        if args.json:
            Path(args.json).write_text(json.dumps({
                "bench": "serving",
                "schema": 2,
                "profile": args.profile,
                "count": args.count,
                "objects": args.objects,
                "seed": args.seed,
                "cpus": cpus,
                "equivalence_events": compared,
                "cluster_equivalence_events": cluster_compared,
                "threads": thread_rows,
                "cluster": cluster_rows,
            }, indent=2))
            print(f"json written to {args.json}")
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
