"""Concurrent multi-venue serving: correctness and worker scaling.

"An Experimental Analysis of Indoor Spatial Queries" argues that what
separates indoor indexes in practice is throughput under concurrent
mixed workloads, not single-query latency. This benchmark drives the
serving layer (:mod:`repro.serving`) exactly that way: several venues
behind one :class:`VenueRouter`, a :class:`ServingFrontend` worker
pool, and per-venue mixed update+query streams replayed at 1/2/4/8
workers.

Two claims are asserted on every run:

* **Correctness** — concurrent replay returns answers element-wise
  identical to sequential replay of the same streams (updates act as
  per-venue barriers; venues share no state).
* **Scaling** — with a simulated per-request downstream service time
  (``--service-ms``, default 2ms — the blocking I/O share of a real
  request: response serialization, socket writes, downstream calls),
  4 workers sustain at least 2x the single-worker throughput on a
  read-heavy mix. This is the honest thread-scaling claim for CPython:
  ``time.sleep`` releases the GIL like real I/O does, while the
  pure-Python index math does not — the ``service=0ms`` rows in the
  report show exactly that, and are *not* asserted.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py --profile tiny

or through pytest (the two CI assertions)::

    python -m pytest benchmarks/bench_serving.py
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.bench.reporting import Table
from repro.datasets import load_venue, multi_venue_streams, random_objects
from repro.serving import (
    ServingFrontend,
    VenueRouter,
    concurrent_replay,
    sequential_replay,
)
from repro.storage import SnapshotCatalog

#: venues served together — three different generator families
SUITE_VENUES = ("MC", "Men-2", "CL-2")
#: read-heavy mix for the scaling measurement (the deployed shape)
READ_HEAVY_MIX = {"knn": 0.6, "distance": 0.3, "range": 0.1}
MIN_SPEEDUP_AT_4 = 2.0
WORKER_LADDER = (1, 2, 4, 8)


class LatencyRouter:
    """Router wrapper adding a fixed per-request service time.

    Models the blocking, GIL-releasing share of a real request
    (serializing the response, writing the socket, calling a
    downstream service) so worker scaling measures what threads
    actually buy on CPython. ``service_s=0`` is a transparent
    pass-through.
    """

    def __init__(self, inner: VenueRouter, service_s: float = 0.0) -> None:
        self.inner = inner
        self.service_s = service_s

    def execute(self, request):
        result = self.inner.execute(request)
        if self.service_s > 0.0:
            time.sleep(self.service_s)
        return result


def build_suite(catalog: SnapshotCatalog, profile: str, n_objects: int, seed: int):
    """``(venues, make_router)`` — venue/object pairs plus a factory
    returning a fresh router (independent engines, pristine object
    state) over the shared catalog."""
    venues = []
    for i, name in enumerate(SUITE_VENUES):
        space = load_venue(name, profile)
        venues.append((space, random_objects(space, n_objects, seed=seed + i)))

    def make_router() -> VenueRouter:
        router = VenueRouter(catalog, capacity=len(venues) + 1)
        for space, objects in venues:
            router.add_venue(space, objects=objects)
        return router

    return venues, make_router


def _normalize(value):
    if isinstance(value, list):
        return [(round(n.distance, 10), n.object_id) for n in value]
    if hasattr(value, "doors"):
        return (round(value.distance, 10), tuple(value.doors))
    return value


def check_equivalence(
    catalog: SnapshotCatalog,
    profile: str = "tiny",
    n_objects: int = 20,
    count: int = 150,
    workers: int = 4,
    seed: int = 31,
) -> int:
    """Concurrent replay must equal sequential replay element-wise.

    Mixed update+query streams (1 update per 2 queries, with churn) on
    every suite venue at once. Returns the number of compared events.
    """
    venues, make_router = build_suite(catalog, profile, n_objects, seed)
    streams = multi_venue_streams(
        venues, count, update_ratio=0.5, churn=0.2, seed=seed,
        mix={"knn": 0.4, "distance": 0.2, "range": 0.2, "path": 0.2},
    )
    router_seq = make_router()
    ids = router_seq.venue_ids()
    keyed = dict(zip(ids, streams))
    sequential, _ = sequential_replay(router_seq, keyed)

    router_conc = make_router()
    with ServingFrontend(router_conc, workers=workers, queue_size=128) as frontend:
        concurrent, _ = concurrent_replay(frontend, keyed)

    compared = 0
    for vid in ids:
        assert len(sequential[vid]) == len(concurrent[vid]) == count
        for i, (a, b) in enumerate(zip(sequential[vid], concurrent[vid])):
            assert _normalize(a) == _normalize(b), \
                f"venue {vid[:8]} event {i} diverged between sequential and concurrent"
            compared += 1
    return compared


def measure_scaling(
    catalog: SnapshotCatalog,
    profile: str = "tiny",
    n_objects: int = 20,
    count: int = 150,
    service_ms: float = 2.0,
    update_ratio: float = 0.1,
    seed: int = 47,
    workers_ladder=WORKER_LADDER,
) -> list[dict]:
    """Replay a read-heavy multi-venue mix at each worker count.

    Every measurement uses a fresh router (pristine engines loaded from
    the shared catalog) and the same streams. Returns one result dict
    per worker count with ``eps`` (events/s) and ``speedup`` vs the
    single-worker row.
    """
    venues, make_router = build_suite(catalog, profile, n_objects, seed)
    streams = multi_venue_streams(
        venues, count, update_ratio=update_ratio, seed=seed, mix=READ_HEAVY_MIX,
    )
    results = []
    base_eps = None
    for workers in workers_ladder:
        router = LatencyRouter(make_router(), service_s=service_ms / 1e3)
        keyed = dict(zip(router.inner.venue_ids(), streams))
        with ServingFrontend(router, workers=workers, queue_size=256) as frontend:
            _, report = concurrent_replay(frontend, keyed)
        if base_eps is None:
            base_eps = report.eps
        results.append({
            "workers": workers,
            "venues": len(venues),
            "events": report.events,
            "updates": report.updates,
            "seconds": report.seconds,
            "eps": report.eps,
            "service_ms": service_ms,
            "speedup": report.eps / base_eps,
        })
    return results


# ----------------------------------------------------------------------
# CI acceptance (pytest entry points)
# ----------------------------------------------------------------------
def test_concurrent_replay_identical_to_sequential():
    """Acceptance: concurrent multi-venue replay (4 workers) answers a
    mixed update+query stream element-wise identically to sequential
    replay."""
    with tempfile.TemporaryDirectory() as tmp:
        compared = check_equivalence(SnapshotCatalog(Path(tmp) / "catalog"))
        assert compared == len(SUITE_VENUES) * 150


def test_four_workers_at_least_2x_one_worker():
    """Acceptance: on a read-heavy mix with per-request service time,
    4 workers sustain >= 2x single-worker throughput."""
    with tempfile.TemporaryDirectory() as tmp:
        results = measure_scaling(
            SnapshotCatalog(Path(tmp) / "catalog"), workers_ladder=(1, 4),
        )
        one, four = results[0], results[1]
        assert four["eps"] >= MIN_SPEEDUP_AT_4 * one["eps"], (
            f"4 workers: {four['eps']:,.0f} events/s is only "
            f"{four['eps'] / one['eps']:.2f}x the single-worker "
            f"{one['eps']:,.0f} events/s (need >= {MIN_SPEEDUP_AT_4}x)"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="tiny", choices=("tiny", "small", "paper"))
    parser.add_argument("--objects", type=int, default=20)
    parser.add_argument("--count", type=int, default=150,
                        help="events per venue and measurement")
    parser.add_argument("--service-ms", type=float, default=2.0,
                        help="simulated per-request downstream service time")
    parser.add_argument("--update-ratio", type=float, default=0.1,
                        help="updates per query in the scaling mix")
    parser.add_argument("--seed", type=int, default=47)
    parser.add_argument("--catalog", metavar="DIR",
                        help="snapshot catalog to warm-start from (default: temp dir)")
    parser.add_argument("--json", metavar="FILE", help="also write results as JSON")
    args = parser.parse_args(argv)

    if args.catalog:
        catalog = SnapshotCatalog(args.catalog)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory()
        catalog = SnapshotCatalog(Path(cleanup.name) / "catalog")

    try:
        compared = check_equivalence(catalog, args.profile, args.objects,
                                     min(args.count, 150), seed=args.seed)
        print(f"equivalence: {compared} concurrent events identical to sequential\n")

        all_results = []
        for service_ms in (args.service_ms, 0.0):
            rows = measure_scaling(
                catalog, args.profile, args.objects, args.count,
                service_ms=service_ms, update_ratio=args.update_ratio,
                seed=args.seed,
            )
            all_results.extend(rows)
            label = (f"{service_ms:g}ms simulated service time"
                     if service_ms else "no service time (GIL-bound: CPU only)")
            table = Table(
                title=f"Serving throughput — {len(SUITE_VENUES)} venues x "
                      f"{args.count} events, profile={args.profile}, {label}",
                headers=["workers", "events", "seconds", "events/s", "speedup vs 1"],
                notes="read-heavy mix "
                      f"{READ_HEAVY_MIX}, update_ratio={args.update_ratio}",
            )
            for r in rows:
                table.add_row(r["workers"], r["events"], f"{r['seconds']:.3f}s",
                              f"{r['eps']:,.0f}", f"{r['speedup']:.2f}x")
            print(table.render())
            print()

        if args.json:
            Path(args.json).write_text(json.dumps(all_results, indent=2))
            print(f"json written to {args.json}")
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
